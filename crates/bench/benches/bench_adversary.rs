//! Benches for the lower-bound adversary machinery: the dependency-order
//! constructions dominate the harness cost, so their scaling matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use session_adversary::naive::{naive_sm_system, NaiveMpPort};
use session_adversary::reorder::afl_reorder_attack;
use session_adversary::rescale::{k_period, rescaling_attack};
use session_adversary::retime::retiming_attack;
use session_mpm::{MpEngine, MpProcess};
use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_types::{Dur, PortId, ProcessId, SessionSpec};
use std::time::Duration;

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn bench_retiming(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary/retiming");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        let spec = SessionSpec::new(3, n, 2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| {
                retiming_attack(
                    || naive_sm_system(spec, spec.s()),
                    spec,
                    d(1),
                    d(8),
                    RunLimits::default(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_afl_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary/afl-reorder");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [8usize, 16, 32, 64] {
        let spec = SessionSpec::new(3, n, 2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| {
                afl_reorder_attack(
                    || naive_sm_system(spec, spec.s()),
                    spec,
                    RunLimits::default(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_rescaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary/rescaling");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [3usize, 6, 12] {
        let spec = SessionSpec::new(4, n, 2).unwrap();
        let c1 = d(1);
        let d1 = d(0);
        let d2 = d(16);
        let k = k_period(c1, d1, d2).unwrap();
        // Record once outside the measured loop; the attack is the subject.
        let processes: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..n)
            .map(|_| Box::new(NaiveMpPort::new(4)) as Box<_>)
            .collect();
        let ports = (0..n)
            .map(|i| (ProcessId::new(i), PortId::new(i)))
            .collect();
        let mut engine = MpEngine::new(processes, ports).unwrap();
        let mut sched = FixedPeriods::uniform(n, k).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default())
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &outcome, |b, outcome| {
            b.iter(|| rescaling_attack(&outcome.trace, &spec, c1, d1, d2).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_retiming, bench_afl_reorder, bench_rescaling);
criterion_main!(benches);
