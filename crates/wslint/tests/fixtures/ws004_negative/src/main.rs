//! Negative: justified panics, test panics, and out-of-scope crates.

fn main() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap(); // wslint: allow(ws004): literal Some one line up
    let _ = v.expect("set one line up"); // wslint: allow(ws004): literal Some one line up
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_the_failure_report() {
        let v: Option<u32> = None;
        let _ = v.unwrap();
        panic!("this is fine in a test");
    }
}
