//! FIG-A: the semi-synchronous strategy crossover.
//!
//! Sweeps `c2/c1` and measures both arms of the semi-synchronous algorithm
//! (step counting vs tree communication). The paper's §1 discussion
//! predicts: "if the time for one communication is less than that for one
//! step multiplied by the ratio of c2 and c1, the model behaves like the
//! asynchronous; otherwise it behaves like the synchronous".
//!
//! ```text
//! cargo run -p session-bench --bin crossover
//! cargo run -p session-bench --bin crossover -- --json   # BENCH_crossover.json
//! ```

use session_bench::format::{section, Row};
use session_bench::json_report::{json_flag, JsonReport};
use session_bench::sweeps::semisync_crossover;
use session_types::{Dur, SessionSpec};

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_crossover.json");
    let ratios = [2, 4, 8, 12, 16, 24, 32, 48, 64];
    let headers = [
        "c2/c1",
        "step-counting time",
        "communication time",
        "predicted winner",
        "measured winner",
        "agree",
    ];
    let mut report = JsonReport::new("FIG-A — Semi-synchronous strategy crossover");
    println!("# FIG-A — Semi-synchronous strategy crossover\n");
    for (n, b) in [(8usize, 2usize), (16, 2), (16, 3)] {
        let spec = SessionSpec::new(4, n, b).expect("valid spec");
        match semisync_crossover(&spec, Dur::from_int(1), &ratios) {
            Ok(points) => {
                let rows: Vec<Row> = points
                    .iter()
                    .map(|p| {
                        Row::new([
                            format!("{}", p.ratio),
                            p.silent_time.to_string(),
                            p.talking_time.to_string(),
                            format!("{:?}", p.predicted),
                            format!("{:?}", p.measured_winner),
                            if p.predicted == p.measured_winner {
                                "✓".to_owned()
                            } else {
                                "✗".to_owned()
                            },
                        ])
                    })
                    .collect();
                let title = format!("n = {n}, b = {b}, s = 4, c1 = 1");
                report.section(&title, &headers, &rows);
                print!("{}", section(&title, &headers, &rows));
            }
            Err(err) => {
                eprintln!("crossover sweep failed for n={n}, b={b}: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
