//! Degenerate problem instances: `s = 1` (a single session), `n = 1` (a
//! single port), and both at once, across every model and substrate. These
//! are where off-by-one errors in "broadcast at the (s−1)-th step" style
//! logic live.

use session_core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_core::verify::check_admissible;
use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, SessionSpec, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn bounds_for(model: TimingModel, c1: Dur, c2: Dur, d2: Dur) -> KnownBounds {
    match model {
        TimingModel::Synchronous => KnownBounds::synchronous(c2, d2).unwrap(),
        TimingModel::Periodic => KnownBounds::periodic(d2).unwrap(),
        TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d2).unwrap(),
        TimingModel::Sporadic => KnownBounds::sporadic(c1, Dur::ZERO, d2).unwrap(),
        TimingModel::Asynchronous => KnownBounds::asynchronous(),
    }
}

#[test]
fn every_model_solves_every_degenerate_instance() {
    let c1 = d(1);
    let c2 = d(2);
    let d2 = d(3);
    for (s, n) in [(1u64, 1usize), (1, 4), (4, 1), (1, 2), (2, 1)] {
        let spec = SessionSpec::new(s, n, 2).unwrap();
        for model in TimingModel::ALL {
            let bounds = bounds_for(model, c1, c2, d2);
            // Shared memory.
            let tree = TreeSpec::build(n, 2);
            let mut sched = FixedPeriods::uniform(n + tree.num_relays(), c2).unwrap();
            let sm = run_sm(
                SmConfig {
                    model,
                    spec,
                    bounds,
                },
                &mut sched,
                RunLimits::default(),
            )
            .unwrap();
            assert!(
                sm.solves(&spec),
                "{model} SM failed at s={s}, n={n}: {} sessions, terminated={}",
                sm.sessions,
                sm.terminated
            );
            check_admissible(&sm.trace, &bounds).unwrap();

            // Message passing.
            let mut sched = FixedPeriods::uniform(n, c2).unwrap();
            let mut delays = ConstantDelay::new(d2).unwrap();
            let mp = run_mp(
                MpConfig {
                    model,
                    spec,
                    bounds,
                },
                &mut sched,
                &mut delays,
                RunLimits::default(),
            )
            .unwrap();
            assert!(
                mp.solves(&spec),
                "{model} MP failed at s={s}, n={n}: {} sessions, terminated={}",
                mp.sessions,
                mp.terminated
            );
            check_admissible(&mp.trace, &bounds).unwrap();
        }
    }
}

#[test]
fn single_port_needs_no_real_communication() {
    // n = 1: the only port process must still take s port steps, but no
    // other process exists to wait for. Running time ~ s steps.
    let spec = SessionSpec::new(5, 1, 2).unwrap();
    let bounds = KnownBounds::periodic(d(100)).unwrap();
    let mut sched = FixedPeriods::uniform(1, d(2)).unwrap();
    let mut delays = ConstantDelay::new(d(100)).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Periodic,
            spec,
            bounds,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
    // A(p) for n = 1 still waits to *hear* its own announcement (delivered
    // through the network at delay <= d2), so the time is s·c + d2-ish,
    // never the d2-free synchronous time — check it terminated well within
    // the bound rather than pinning the exact constant.
    let rt = report.running_time.unwrap() - session_types::Time::ZERO;
    assert!(rt <= d(2) * 5 + d(100) + d(2) * 2, "{rt}");
}

#[test]
fn minimal_synchronous_instance_is_exact() {
    // s = 1, n = 1, synchronous: exactly one step at c2.
    let spec = SessionSpec::new(1, 1, 2).unwrap();
    let c2 = d(7);
    let bounds = KnownBounds::synchronous(c2, d(1)).unwrap();
    let mut sched = FixedPeriods::uniform(1, c2).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::Synchronous,
            spec,
            bounds,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert_eq!(report.sessions, 1);
    assert_eq!(report.running_time, Some(session_types::Time::from_int(7)));
    assert_eq!(report.steps, 1);
}
