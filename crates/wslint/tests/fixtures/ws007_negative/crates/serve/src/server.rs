//! Emits exactly the registered names, including the digit-bearing one.

pub fn report(rec: &mut dyn FnMut(&str, u64)) {
    rec("serve.sessions_shed", 1);
    rec("serve.close_lag_p99_ms", 7);
}
