//! The derived figures: parameter sweeps whose *shape* the paper's §1
//! discussion predicts.

use session_core::algorithms::{SemiSyncSmPort, SmStrategy};
use session_core::analysis::analyze;
use session_core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_core::system::port_of;
use session_core::{bounds, verify::count_sessions};
use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_smm::{Knowledge, PortBinding, SmEngine, SmProcess, TreeSpec};
use session_types::{Dur, KnownBounds, PortId, ProcessId, Result, SessionSpec, Time, TimingModel};

/// One point of the semi-synchronous strategy crossover (FIG-A).
#[derive(Clone, Debug)]
pub struct CrossoverPoint {
    /// The ratio `c2 / c1`.
    pub ratio: i128,
    /// Running time of the step-counting arm.
    pub silent_time: Dur,
    /// Running time of the communicating arm.
    pub talking_time: Dur,
    /// Which arm the known-constants chooser would pick.
    pub predicted: SmStrategy,
    /// Which arm actually measured faster.
    pub measured_winner: SmStrategy,
}

fn semisync_engine_with_strategy(
    spec: &SessionSpec,
    c1: Dur,
    c2: Dur,
    strategy: SmStrategy,
) -> Result<SmEngine<Knowledge>> {
    let tree = TreeSpec::build(spec.n(), spec.b());
    let mut processes: Vec<Box<dyn SmProcess<Knowledge>>> = Vec::new();
    for i in 0..spec.n() {
        processes.push(Box::new(SemiSyncSmPort::with_strategy(
            ProcessId::new(i),
            tree.leaf_var(i),
            spec.s(),
            spec.n(),
            c1,
            c2,
            strategy,
        )?));
    }
    for relay in tree.relay_processes() {
        processes.push(Box::new(relay));
    }
    let bindings = (0..spec.n())
        .map(|i| PortBinding {
            port: PortId::new(i),
            var: tree.leaf_var(i),
            process: ProcessId::new(i),
        })
        .collect();
    SmEngine::new(
        vec![Knowledge::new(); tree.num_nodes()],
        processes,
        spec.b(),
        bindings,
    )
}

fn measure_strategy(spec: &SessionSpec, c1: Dur, c2: Dur, strategy: SmStrategy) -> Result<Dur> {
    let mut engine = semisync_engine_with_strategy(spec, c1, c2, strategy)?;
    let num = engine.num_processes();
    let mut sched = FixedPeriods::uniform(num, c2)?; // worst-case speeds
    let outcome = engine.run(&mut sched, RunLimits::default())?;
    let sessions = count_sessions(&outcome.trace, spec.n(), |_| None);
    assert!(
        outcome.terminated && sessions >= spec.s(),
        "strategy {strategy:?} failed: terminated={}, sessions={sessions}",
        outcome.terminated
    );
    let end = outcome
        .trace
        .all_idle_time((0..spec.n()).map(ProcessId::new))
        .expect("terminated");
    Ok(end - Time::ZERO)
}

/// FIG-A: sweep `c2/c1` and measure both semi-synchronous arms. The §1
/// prediction: step counting wins while `⌊c2/c1⌋ + 1` is below the
/// communication cost (`O(log_b n)` rounds), communication wins beyond.
///
/// # Errors
///
/// Propagates engine errors.
pub fn semisync_crossover(
    spec: &SessionSpec,
    c1: Dur,
    ratios: &[i128],
) -> Result<Vec<CrossoverPoint>> {
    let tree = TreeSpec::build(spec.n(), spec.b());
    let mut points = Vec::with_capacity(ratios.len());
    for &ratio in ratios {
        let c2 = c1 * ratio;
        let silent_time = measure_strategy(spec, c1, c2, SmStrategy::StepCounting)?;
        let talking_time = measure_strategy(spec, c1, c2, SmStrategy::Communicating)?;
        let chooser = SemiSyncSmPort::new(
            ProcessId::new(0),
            session_types::VarId::new(0),
            spec.s(),
            spec.n(),
            c1,
            c2,
            tree.flood_rounds_bound(),
        )?;
        points.push(CrossoverPoint {
            ratio,
            silent_time,
            talking_time,
            predicted: chooser.strategy(),
            measured_winner: if silent_time <= talking_time {
                SmStrategy::StepCounting
            } else {
                SmStrategy::Communicating
            },
        });
    }
    Ok(points)
}

/// One point of the sporadic interpolation (FIG-B).
#[derive(Clone, Debug)]
pub struct SporadicPoint {
    /// The delay lower bound `d1` (with `d2` fixed).
    pub d1: Dur,
    /// The delay uncertainty `u = d2 − d1`.
    pub u: Dur,
    /// Measured running time of `A(sp)`.
    pub measured: Dur,
    /// The largest measured *per-session* time — the quantity the paper's
    /// §6 bounds are stated per `(s − 1)` of.
    pub max_session_gap: Dur,
    /// The paper's lower bound at these constants.
    pub lower: Dur,
    /// The paper's upper bound at these constants (using the measured `γ`).
    pub upper: Dur,
}

/// FIG-B: fix `d2` and sweep `d1` from 0 to `d2`. The §1 prediction: as
/// `d1 → d2` the per-session cost collapses toward the synchronous
/// behaviour; as `d1 → 0` it approaches the asynchronous `d2`-per-session
/// behaviour.
///
/// # Errors
///
/// Propagates engine errors.
pub fn sporadic_interpolation(
    spec: &SessionSpec,
    c1: Dur,
    d2: Dur,
    d1_values: &[i128],
) -> Result<Vec<SporadicPoint>> {
    let mut points = Vec::with_capacity(d1_values.len());
    for &d1_raw in d1_values {
        let d1 = Dur::from_int(d1_raw);
        let kb = KnownBounds::sporadic(c1, d1, d2)?;
        let mut sched = FixedPeriods::uniform(spec.n(), c1 * 2)?;
        let mut delays = ConstantDelay::new(d2)?;
        let report = run_mp(
            MpConfig {
                model: TimingModel::Sporadic,
                spec: *spec,
                bounds: kb,
            },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )?;
        assert!(report.solves(spec), "A(sp) failed at d1={d1}");
        let measured = report.running_time.expect("terminated") - Time::ZERO;
        let analysis = analyze(&report.trace, spec.n(), port_of(spec));
        points.push(SporadicPoint {
            d1,
            u: d2 - d1,
            measured,
            max_session_gap: analysis.max_session_gap().unwrap_or(Dur::ZERO),
            lower: bounds::sporadic_mp_lower(spec.s(), c1, d1, d2),
            upper: bounds::sporadic_mp_upper(spec.s(), c1, d1, d2, report.gamma)
                + d2
                + report.gamma * 2,
        });
    }
    Ok(points)
}

/// One point of the periodic-vs-semi-synchronous comparison (FIG-C).
#[derive(Clone, Debug)]
pub struct DominancePoint {
    /// The step-time upper bound `c2` (= the periodic `c_max`).
    pub c2: Dur,
    /// Measured running time of `A(p)` in the periodic model.
    pub periodic_time: Dur,
    /// Measured running time of the semi-synchronous algorithm.
    pub semisync_time: Dur,
    /// The periodic upper bound.
    pub periodic_bound: Dur,
    /// The semi-synchronous upper bound.
    pub semisync_bound: Dur,
}

/// FIG-C: the §1 claim that the periodic model is *more efficient* than the
/// semi-synchronous one when `c_max = c2`, `2c1 < c2` and `n` is constant
/// relative to `s`: sweep `c2` with both systems driven at speed `c2`.
///
/// # Errors
///
/// Propagates engine errors.
pub fn periodic_vs_semisync(
    spec: &SessionSpec,
    c1: Dur,
    c2_values: &[i128],
) -> Result<Vec<DominancePoint>> {
    let tree = TreeSpec::build(spec.n(), spec.b());
    let num = spec.n() + tree.num_relays();
    let mut points = Vec::with_capacity(c2_values.len());
    for &c2_raw in c2_values {
        let c2 = Dur::from_int(c2_raw);
        // Periodic: hidden constant periods all equal to c2.
        let mut sched = FixedPeriods::uniform(num, c2)?;
        let periodic = run_sm(
            SmConfig {
                model: TimingModel::Periodic,
                spec: *spec,
                bounds: KnownBounds::periodic(Dur::from_int(1))?,
            },
            &mut sched,
            RunLimits::default(),
        )?;
        assert!(periodic.solves(spec));
        // Semi-synchronous: the same speeds, but the algorithm only knows
        // [c1, c2].
        let mut sched = FixedPeriods::uniform(num, c2)?;
        let semisync = run_sm(
            SmConfig {
                model: TimingModel::SemiSynchronous,
                spec: *spec,
                bounds: KnownBounds::semi_synchronous(c1, c2, Dur::from_int(1))?,
            },
            &mut sched,
            RunLimits::default(),
        )?;
        assert!(semisync.solves(spec));
        points.push(DominancePoint {
            c2,
            periodic_time: periodic.running_time.expect("terminated") - Time::ZERO,
            semisync_time: semisync.running_time.expect("terminated") - Time::ZERO,
            periodic_bound: bounds::periodic_sm_upper(spec, c2, tree.flood_rounds_bound()),
            semisync_bound: bounds::semisync_sm_upper(spec.s(), c1, c2, tree.flood_rounds_bound()),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_prediction_matches_measurement_at_the_extremes() {
        let spec = SessionSpec::new(3, 8, 2).unwrap();
        let points = semisync_crossover(&spec, Dur::from_int(1), &[2, 64]).unwrap();
        // Tiny ratio: counting wins; huge ratio: communication wins.
        assert_eq!(points[0].measured_winner, SmStrategy::StepCounting);
        assert_eq!(points[1].measured_winner, SmStrategy::Communicating);
        assert_eq!(points[0].predicted, points[0].measured_winner);
        assert_eq!(points[1].predicted, points[1].measured_winner);
    }

    #[test]
    fn sporadic_interpolation_is_monotone_in_shape() {
        let spec = SessionSpec::new(4, 3, 2).unwrap();
        let points =
            sporadic_interpolation(&spec, Dur::from_int(1), Dur::from_int(16), &[0, 8, 16])
                .unwrap();
        // Measured time within bounds and non-increasing as d1 grows
        // (the algorithm waits less when the delay window narrows).
        for p in &points {
            assert!(p.measured <= p.upper, "{p:?}");
        }
        assert!(points[0].measured >= points[2].measured, "{points:?}");
        // Lower bound shape: ~d2 at u = d2, ~c1 at u = 0.
        assert!(points[0].lower > points[2].lower);
    }

    #[test]
    fn periodic_dominates_semisync_for_large_c2_over_c1() {
        let spec = SessionSpec::new(4, 4, 2).unwrap();
        let points = periodic_vs_semisync(&spec, Dur::from_int(1), &[4, 32]).unwrap();
        // With 2c1 < c2, A(p) should beat the semi-synchronous algorithm
        // (which must either count many steps or communicate per session).
        let big = &points[1];
        assert!(
            big.periodic_time < big.semisync_time,
            "periodic {} vs semisync {}",
            big.periodic_time,
            big.semisync_time
        );
    }
}
