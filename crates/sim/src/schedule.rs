//! Step schedules: the adversary's choice of *when* each process steps.
//!
//! A schedule realizes the hidden timing information of a model run. The
//! paper assumes all processes start at time 0 and that every step —
//! including the first — obeys the model's constraint measured from time 0
//! (see the conversion note under Table 1); every implementation here
//! honours that by treating time 0 as the "previous step" of the first step.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::RngExt;

use session_types::{Dur, Error, ProcessId, Result, Time};

use crate::rng::{ratio_in_range, seeded_rng};

/// Chooses the real times of process steps.
///
/// Engines call [`first_step`](StepSchedule::first_step) once per process and
/// then [`next_step`](StepSchedule::next_step) after each executed step.
/// Implementations must return nondecreasing times per process with
/// `next_step(p, last) > last`.
pub trait StepSchedule {
    /// The time of process `p`'s first step.
    fn first_step(&mut self, p: ProcessId) -> Time;

    /// The time of process `p`'s next step, given its previous step was at
    /// `last`.
    fn next_step(&mut self, p: ProcessId, last: Time) -> Time;
}

/// Every process steps at its own constant period: the **periodic** model's
/// hidden `c_i` constants (§2.2), and — with all periods equal — the
/// **synchronous** model and the round-robin computations used by the
/// lower-bound proofs.
///
/// # Examples
///
/// ```
/// use session_sim::{FixedPeriods, StepSchedule};
/// use session_types::{Dur, ProcessId, Time};
///
/// # fn main() -> Result<(), session_types::Error> {
/// let mut s = FixedPeriods::new(vec![Dur::from_int(2), Dur::from_int(3)])?;
/// let p1 = ProcessId::new(1);
/// assert_eq!(s.first_step(p1), Time::from_int(3));
/// assert_eq!(s.next_step(p1, Time::from_int(3)), Time::from_int(6));
/// assert_eq!(s.c_max(), Dur::from_int(3));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FixedPeriods {
    periods: Vec<Dur>,
}

impl FixedPeriods {
    /// Creates a schedule from one period per process.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `periods` is empty or any period
    /// is not strictly positive.
    pub fn new(periods: Vec<Dur>) -> Result<FixedPeriods> {
        if periods.is_empty() {
            return Err(Error::invalid_params("FixedPeriods requires >= 1 period"));
        }
        if periods.iter().any(|p| !p.is_positive()) {
            return Err(Error::invalid_params(
                "FixedPeriods requires strictly positive periods",
            ));
        }
        Ok(FixedPeriods { periods })
    }

    /// Creates a schedule where all `n` processes share the period `c` —
    /// the synchronous model, and the round-robin computations of the
    /// lower-bound proofs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `n == 0` or `c <= 0`.
    pub fn uniform(n: usize, c: Dur) -> Result<FixedPeriods> {
        FixedPeriods::new(vec![c; n])
            .map_err(|_| Error::invalid_params("FixedPeriods::uniform requires n >= 1 and c > 0"))
    }

    /// The period of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn period(&self, p: ProcessId) -> Dur {
        self.periods[p.index()]
    }

    /// The largest period: the paper's `c_max`.
    pub fn c_max(&self) -> Dur {
        self.periods.iter().copied().fold(Dur::ZERO, Dur::max)
    }

    /// The smallest period: the paper's `c_min`.
    pub fn c_min(&self) -> Dur {
        self.periods
            .iter()
            .copied()
            .reduce(Dur::min)
            .expect("FixedPeriods is never empty")
    }
}

impl StepSchedule for FixedPeriods {
    fn first_step(&mut self, p: ProcessId) -> Time {
        Time::ZERO + self.periods[p.index()]
    }

    fn next_step(&mut self, p: ProcessId, last: Time) -> Time {
        last + self.periods[p.index()]
    }
}

/// Step gaps drawn uniformly (over a rational grid) from `[c1, c2]`: the
/// **semi-synchronous** model's hidden nondeterminism.
#[derive(Debug)]
pub struct JitterSchedule {
    c1: Dur,
    c2: Dur,
    granularity: u32,
    rng: StdRng,
}

impl JitterSchedule {
    /// Creates a schedule drawing each gap from `[c1, c2]`, deterministically
    /// from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0` or `c1 > c2`.
    pub fn new(c1: Dur, c2: Dur, seed: u64) -> Result<JitterSchedule> {
        if !c1.is_positive() {
            return Err(Error::invalid_params("JitterSchedule requires c1 > 0"));
        }
        if c1 > c2 {
            return Err(Error::invalid_params("JitterSchedule requires c1 <= c2"));
        }
        Ok(JitterSchedule {
            c1,
            c2,
            granularity: 16,
            rng: seeded_rng(seed),
        })
    }

    /// Sets how many grid points subdivide `[c1, c2]` (default 16).
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0`.
    pub fn with_granularity(mut self, granularity: u32) -> JitterSchedule {
        assert!(granularity > 0, "granularity must be positive");
        self.granularity = granularity;
        self
    }

    fn gap(&mut self) -> Dur {
        Dur::from_ratio(ratio_in_range(
            &mut self.rng,
            self.c1.as_ratio(),
            self.c2.as_ratio(),
            self.granularity,
        ))
    }
}

impl StepSchedule for JitterSchedule {
    fn first_step(&mut self, _p: ProcessId) -> Time {
        Time::ZERO + self.gap()
    }

    fn next_step(&mut self, _p: ProcessId, last: Time) -> Time {
        last + self.gap()
    }
}

/// Step gaps of at least `c1` with occasional long pauses: the **sporadic**
/// model's event-driven behaviour (§1: "the time interval between
/// consecutive occurrences varies and can be arbitrarily large").
#[derive(Debug)]
pub struct SporadicBursts {
    c1: Dur,
    max_pause_factor: u32,
    pause_percent: u8,
    rng: StdRng,
}

impl SporadicBursts {
    /// Creates a schedule where each gap is `c1` with probability
    /// `(100 - pause_percent)%`, and otherwise `c1 * k` for a uniformly
    /// random integer `k ∈ [2, max_pause_factor]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `c1 <= 0`, `pause_percent > 100`
    /// or `max_pause_factor < 2`.
    pub fn new(
        c1: Dur,
        max_pause_factor: u32,
        pause_percent: u8,
        seed: u64,
    ) -> Result<SporadicBursts> {
        if !c1.is_positive() {
            return Err(Error::invalid_params("SporadicBursts requires c1 > 0"));
        }
        if pause_percent > 100 {
            return Err(Error::invalid_params(
                "SporadicBursts requires pause_percent <= 100",
            ));
        }
        if max_pause_factor < 2 {
            return Err(Error::invalid_params(
                "SporadicBursts requires max_pause_factor >= 2",
            ));
        }
        Ok(SporadicBursts {
            c1,
            max_pause_factor,
            pause_percent,
            rng: seeded_rng(seed),
        })
    }

    fn gap(&mut self) -> Dur {
        if self.rng.random_range(0..100u8) < self.pause_percent {
            let k = self.rng.random_range(2..=self.max_pause_factor);
            self.c1 * k as i128
        } else {
            self.c1
        }
    }
}

impl StepSchedule for SporadicBursts {
    fn first_step(&mut self, _p: ProcessId) -> Time {
        Time::ZERO + self.gap()
    }

    fn next_step(&mut self, _p: ProcessId, last: Time) -> Time {
        last + self.gap()
    }
}

/// All processes step at `normal_period` except one, which steps at
/// `slow_period`: the adversary of Theorem 4.3, which slows a single port
/// process to defeat algorithms that idle without communicating.
#[derive(Clone, Debug)]
pub struct SlowProcess {
    normal_period: Dur,
    slow: ProcessId,
    slow_period: Dur,
}

impl SlowProcess {
    /// Creates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if either period is not strictly
    /// positive.
    pub fn new(normal_period: Dur, slow: ProcessId, slow_period: Dur) -> Result<SlowProcess> {
        if !normal_period.is_positive() || !slow_period.is_positive() {
            return Err(Error::invalid_params(
                "SlowProcess requires strictly positive periods",
            ));
        }
        Ok(SlowProcess {
            normal_period,
            slow,
            slow_period,
        })
    }

    fn period(&self, p: ProcessId) -> Dur {
        if p == self.slow {
            self.slow_period
        } else {
            self.normal_period
        }
    }
}

impl StepSchedule for SlowProcess {
    fn first_step(&mut self, p: ProcessId) -> Time {
        Time::ZERO + self.period(p)
    }

    fn next_step(&mut self, p: ProcessId, last: Time) -> Time {
        last + self.period(p)
    }
}

/// Fully scripted step times with a periodic tail: used by the lower-bound
/// adversaries to replay the retimed computations their constructions
/// produce, and by tests to pin exact interleavings.
#[derive(Clone, Debug)]
pub struct ExplicitSchedule {
    scripted: BTreeMap<ProcessId, VecDeque<Time>>,
    tail_period: Dur,
}

impl ExplicitSchedule {
    /// Creates a schedule that replays `scripted` times per process and then
    /// continues at `tail_period`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `tail_period <= 0` or any
    /// process's scripted times are not strictly increasing and positive.
    pub fn new(
        scripted: BTreeMap<ProcessId, Vec<Time>>,
        tail_period: Dur,
    ) -> Result<ExplicitSchedule> {
        if !tail_period.is_positive() {
            return Err(Error::invalid_params(
                "ExplicitSchedule requires tail_period > 0",
            ));
        }
        let mut map = BTreeMap::new();
        for (p, times) in scripted {
            let mut prev = Time::ZERO;
            for (i, &t) in times.iter().enumerate() {
                let strictly_after_prev = t > prev || (i == 0 && t >= prev);
                if !strictly_after_prev || t <= Time::ZERO {
                    return Err(Error::invalid_params(format!(
                        "ExplicitSchedule times for {p} must be positive and strictly increasing"
                    )));
                }
                prev = t;
            }
            map.insert(p, times.into_iter().collect());
        }
        Ok(ExplicitSchedule {
            scripted: map,
            tail_period,
        })
    }

    fn pop_or_tail(&mut self, p: ProcessId, last: Time) -> Time {
        if let Some(queue) = self.scripted.get_mut(&p) {
            if let Some(t) = queue.pop_front() {
                return t;
            }
        }
        last + self.tail_period
    }
}

impl StepSchedule for ExplicitSchedule {
    fn first_step(&mut self, p: ProcessId) -> Time {
        self.pop_or_tail(p, Time::ZERO)
    }

    fn next_step(&mut self, p: ProcessId, last: Time) -> Time {
        self.pop_or_tail(p, last)
    }
}

/// Composes different schedules per process: process `i` follows
/// `schedules[i]` (the last schedule serves any overflow ids). This is the
/// general adversary combinator — e.g. one process on [`SporadicBursts`]
/// while the rest run a [`JitterSchedule`] drumbeat.
///
/// The process id is passed through unchanged, so inner schedules must
/// tolerate every id routed to them (the randomized schedules ignore ids;
/// a [`FixedPeriods`] inner schedule must be built wide enough).
///
/// # Examples
///
/// ```
/// use session_sim::{JitterSchedule, PerProcess, SporadicBursts, StepSchedule};
/// use session_types::{Dur, ProcessId, Time};
///
/// # fn main() -> Result<(), session_types::Error> {
/// let mut sched = PerProcess::new(vec![
///     Box::new(JitterSchedule::new(Dur::from_int(2), Dur::from_int(2), 0)?),
///     Box::new(SporadicBursts::new(Dur::from_int(1), 8, 50, 7)?),
/// ])?;
/// assert_eq!(sched.first_step(ProcessId::new(0)), Time::from_int(2));
/// assert!(sched.first_step(ProcessId::new(1)) >= Time::from_int(1));
/// # Ok(())
/// # }
/// ```
pub struct PerProcess {
    schedules: Vec<Box<dyn StepSchedule>>,
}

impl std::fmt::Debug for PerProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerProcess")
            .field("schedules", &self.schedules.len())
            .finish()
    }
}

impl PerProcess {
    /// Creates the combinator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `schedules` is empty.
    pub fn new(schedules: Vec<Box<dyn StepSchedule>>) -> Result<PerProcess> {
        if schedules.is_empty() {
            return Err(Error::invalid_params("PerProcess requires >= 1 schedule"));
        }
        Ok(PerProcess { schedules })
    }

    fn pick(&mut self, p: ProcessId) -> &mut Box<dyn StepSchedule> {
        let idx = p.index().min(self.schedules.len() - 1);
        &mut self.schedules[idx]
    }
}

impl StepSchedule for PerProcess {
    fn first_step(&mut self, p: ProcessId) -> Time {
        self.pick(p).first_step(p)
    }

    fn next_step(&mut self, p: ProcessId, last: Time) -> Time {
        self.pick(p).next_step(p, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_periods_validation() {
        assert!(FixedPeriods::new(vec![]).is_err());
        assert!(FixedPeriods::new(vec![Dur::ZERO]).is_err());
        assert!(FixedPeriods::new(vec![Dur::from_int(-1)]).is_err());
        assert!(FixedPeriods::uniform(0, Dur::from_int(1)).is_err());
        assert!(FixedPeriods::uniform(3, Dur::from_int(1)).is_ok());
    }

    #[test]
    fn fixed_periods_steps() {
        let mut s = FixedPeriods::new(vec![Dur::from_int(2), Dur::from_int(5)]).unwrap();
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        assert_eq!(s.first_step(p0), Time::from_int(2));
        assert_eq!(s.first_step(p1), Time::from_int(5));
        assert_eq!(s.next_step(p0, Time::from_int(2)), Time::from_int(4));
        assert_eq!(s.c_min(), Dur::from_int(2));
        assert_eq!(s.c_max(), Dur::from_int(5));
        assert_eq!(s.period(p1), Dur::from_int(5));
    }

    #[test]
    fn jitter_respects_bounds() {
        let c1 = Dur::from_int(2);
        let c2 = Dur::from_int(7);
        let mut s = JitterSchedule::new(c1, c2, 11).unwrap();
        let p = ProcessId::new(0);
        let mut last = Time::ZERO;
        for _ in 0..200 {
            let next = if last == Time::ZERO {
                s.first_step(p)
            } else {
                s.next_step(p, last)
            };
            let gap = next - last;
            assert!(gap >= c1 && gap <= c2, "gap {gap} outside [{c1}, {c2}]");
            last = next;
        }
    }

    #[test]
    fn jitter_validation() {
        assert!(JitterSchedule::new(Dur::ZERO, Dur::from_int(2), 0).is_err());
        assert!(JitterSchedule::new(Dur::from_int(3), Dur::from_int(2), 0).is_err());
        assert!(JitterSchedule::new(Dur::from_int(2), Dur::from_int(2), 0).is_ok());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = || JitterSchedule::new(Dur::from_int(1), Dur::from_int(4), 5).unwrap();
        let mut a = mk();
        let mut b = mk();
        let p = ProcessId::new(0);
        let mut ta = a.first_step(p);
        let mut tb = b.first_step(p);
        for _ in 0..50 {
            assert_eq!(ta, tb);
            ta = a.next_step(p, ta);
            tb = b.next_step(p, tb);
        }
    }

    #[test]
    fn sporadic_gaps_at_least_c1() {
        let c1 = Dur::from_int(3);
        let mut s = SporadicBursts::new(c1, 10, 30, 17).unwrap();
        let p = ProcessId::new(0);
        let mut last = s.first_step(p);
        assert!(last - Time::ZERO >= c1);
        let mut saw_pause = false;
        for _ in 0..300 {
            let next = s.next_step(p, last);
            let gap = next - last;
            assert!(gap >= c1);
            saw_pause |= gap > c1;
            last = next;
        }
        assert!(saw_pause, "expected at least one long pause in 300 gaps");
    }

    #[test]
    fn sporadic_validation() {
        assert!(SporadicBursts::new(Dur::ZERO, 4, 10, 0).is_err());
        assert!(SporadicBursts::new(Dur::ONE, 1, 10, 0).is_err());
        assert!(SporadicBursts::new(Dur::ONE, 4, 101, 0).is_err());
        assert!(SporadicBursts::new(Dur::ONE, 4, 100, 0).is_ok());
    }

    #[test]
    fn slow_process_slows_only_target() {
        let mut s =
            SlowProcess::new(Dur::from_int(1), ProcessId::new(2), Dur::from_int(10)).unwrap();
        assert_eq!(s.first_step(ProcessId::new(0)), Time::from_int(1));
        assert_eq!(s.first_step(ProcessId::new(2)), Time::from_int(10));
        assert_eq!(
            s.next_step(ProcessId::new(2), Time::from_int(10)),
            Time::from_int(20)
        );
        assert!(SlowProcess::new(Dur::ZERO, ProcessId::new(0), Dur::ONE).is_err());
    }

    #[test]
    fn explicit_schedule_replays_then_tails() {
        let mut scripted = BTreeMap::new();
        scripted.insert(
            ProcessId::new(0),
            vec![Time::from_int(1), Time::from_int(4)],
        );
        let mut s = ExplicitSchedule::new(scripted, Dur::from_int(5)).unwrap();
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        assert_eq!(s.first_step(p0), Time::from_int(1));
        assert_eq!(s.next_step(p0, Time::from_int(1)), Time::from_int(4));
        // Script exhausted: falls back to the tail period.
        assert_eq!(s.next_step(p0, Time::from_int(4)), Time::from_int(9));
        // Unscripted process uses the tail period from the start.
        assert_eq!(s.first_step(p1), Time::from_int(5));
    }

    #[test]
    fn per_process_routes_by_id() {
        let mut sched = PerProcess::new(vec![
            Box::new(FixedPeriods::uniform(10, Dur::from_int(3)).unwrap()),
            Box::new(FixedPeriods::uniform(10, Dur::from_int(5)).unwrap()),
        ])
        .unwrap();
        assert_eq!(sched.first_step(ProcessId::new(0)), Time::from_int(3));
        assert_eq!(sched.first_step(ProcessId::new(1)), Time::from_int(5));
        // Overflow ids use the last schedule.
        assert_eq!(sched.first_step(ProcessId::new(9)), Time::from_int(5));
        assert_eq!(
            sched.next_step(ProcessId::new(0), Time::from_int(3)),
            Time::from_int(6)
        );
    }

    #[test]
    fn per_process_requires_one_schedule() {
        assert!(PerProcess::new(vec![]).is_err());
    }

    #[test]
    fn explicit_schedule_validation() {
        let mut bad = BTreeMap::new();
        bad.insert(
            ProcessId::new(0),
            vec![Time::from_int(3), Time::from_int(2)],
        );
        assert!(ExplicitSchedule::new(bad, Dur::ONE).is_err());

        let mut zero = BTreeMap::new();
        zero.insert(ProcessId::new(0), vec![Time::ZERO]);
        assert!(ExplicitSchedule::new(zero, Dur::ONE).is_err());

        assert!(ExplicitSchedule::new(BTreeMap::new(), Dur::ZERO).is_err());
    }
}
