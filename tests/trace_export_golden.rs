//! Golden-file tests for the trace exporters: the Perfetto JSON and JSONL
//! outputs of a fixed configuration must be byte-stable across runs (and
//! across refactors — regenerate the files deliberately, never silently).
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_export_golden
//! ```

use session_problem::trace_cmd::TraceConfig;

/// The fixed configuration: deterministic (uniform schedule, constant
/// delay — the seed is never consulted) periodic message passing.
const GOLDEN_ARGS: [&str; 9] = [
    "model=periodic",
    "comm=mp",
    "s=3",
    "n=3",
    "d2=8",
    "schedule=uniform:2",
    "delay=const:8",
    "out=golden.perfetto.json",
    "jsonl=golden.jsonl",
];

fn render() -> (String, String) {
    let config = TraceConfig::parse(GOLDEN_ARGS).expect("golden config parses");
    let artifacts = config.render().expect("golden config runs");
    (
        artifacts.perfetto.expect("perfetto requested"),
        artifacts.jsonl.expect("jsonl requested"),
    )
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the committed golden file; if the format change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn perfetto_export_is_byte_stable() {
    let (perfetto, _) = render();
    check_golden("periodic_mp.perfetto.json", &perfetto);
}

#[test]
fn jsonl_export_is_byte_stable() {
    let (_, jsonl) = render();
    check_golden("periodic_mp.jsonl", &jsonl);
}

#[test]
fn exports_are_identical_across_runs() {
    let first = render();
    let second = render();
    assert_eq!(first, second);
}
