//! The round-reordering adversary of Arjomandi–Fischer–Lynch \[2\] for the
//! **asynchronous** shared-memory model — the foundation the paper's
//! Theorem 5.1 builds on (its proof "follows the proof of Theorem 1
//! in \[2\]").
//!
//! In the asynchronous model *any* reordering consistent with the
//! step-dependency order `≤_β` is an admissible computation. If an
//! algorithm terminates within fewer than `(s−1)·⌊log_b n⌋` rounds, split
//! its round-robin computation into blocks of `B = ⌊log_b n⌋` rounds; in
//! each block information from the previous block's port `y_{k−1}` cannot
//! have reached every port (fan-in `b`), so some port `y_k` has its last
//! access independent of `y_{k−1}`'s first access. Pulling the
//! `σ_k`-ancestors to the front of each block yields `β' = φ_1ψ_1…φ_mψ_m`
//! with no `y_{k−1}` access in `φ_k` and no `y_k` access in `ψ_k` — at
//! most one session per block, hence fewer than `s` sessions.
//!
//! Unlike Theorem 5.1 there is no retiming to verify: the adversary's
//! output is checked by re-executing the reordered steps (same global
//! state — Claim 5.2's executable content) and recounting sessions.

use session_core::verify::count_sessions;
use session_sim::{FixedPeriods, RunLimits, StepKind, Trace};
use session_smm::{Knowledge, SmEngine};
use session_types::{Dur, Error, ProcessId, Result, SessionSpec, Time, VarId};

use crate::retime::DependencyGraph;

/// What the reordering adversary produced.
#[derive(Clone, Debug)]
#[must_use = "check defeated() before drawing conclusions"]
pub struct ReorderOutcome {
    /// `B = ⌊log_b n⌋`, the block length in rounds.
    pub block_rounds: u64,
    /// Number of blocks the recorded computation decomposed into.
    pub blocks: usize,
    /// Rounds the recorded computation took (the quantity \[2\] bounds).
    pub recorded_rounds: u64,
    /// Sessions in the reordered, re-executed computation.
    pub sessions: u64,
    /// The required number of sessions.
    pub s: u64,
    /// Whether re-execution reached the same global state as the original.
    pub same_global_state: bool,
}

impl ReorderOutcome {
    /// Returns `true` if the adversary succeeded: a state-equivalent
    /// reordering with fewer than `s` sessions.
    pub fn defeated(&self) -> bool {
        self.same_global_state && self.sessions < self.s
    }
}

/// Runs the \[2\] construction against the algorithm produced by `factory`.
///
/// `factory` must build the same initial system on each call (it is called
/// twice: recording and replay).
///
/// # Errors
///
/// * [`Error::InvalidParams`] if `⌊log_b n⌋ < 2` (the decomposition needs
///   nontrivial blocks) or the algorithm takes no steps.
/// * [`Error::LimitExceeded`] if the recorded run does not terminate.
/// * [`Error::Inadmissible`] if no port with the independence property
///   exists in some block (would contradict the fan-in argument).
pub fn afl_reorder_attack<F>(
    factory: F,
    spec: &SessionSpec,
    limits: RunLimits,
) -> Result<ReorderOutcome>
where
    F: Fn() -> Result<SmEngine<Knowledge>>,
{
    let b_rounds = spec.log_b_n_floor() as u64;
    if b_rounds < 2 {
        return Err(Error::invalid_params(
            "AFL reordering requires floor(log_b n) >= 2",
        ));
    }

    // Record the round-robin computation (unit period — times are labels
    // only; the asynchronous model has no timing constraints).
    let mut recorder = factory()?;
    let num_processes = recorder.num_processes();
    let mut schedule = FixedPeriods::uniform(num_processes, Dur::ONE)?;
    let outcome = recorder.run(&mut schedule, limits)?;
    if !outcome.terminated {
        return Err(Error::LimitExceeded {
            steps: outcome.steps,
        });
    }
    let events = outcome.trace.events();
    if events.is_empty() {
        return Err(Error::invalid_params("algorithm took no steps"));
    }

    let round_of: Vec<u64> = events
        .iter()
        .map(|e| (e.time - Time::ZERO).as_ratio().numer() as u64)
        .collect();
    let total_rounds = *round_of.last().expect("nonempty");
    let deps = DependencyGraph::new(events)?;
    let var_of: Vec<VarId> = events
        .iter()
        .map(|e| match e.kind {
            StepKind::VarAccess { var, .. } => var,
            _ => unreachable!("checked by DependencyGraph::new"),
        })
        .collect();

    let num_blocks = total_rounds.div_ceil(b_rounds) as usize;
    let block_of = |step: usize| ((round_of[step] - 1) / b_rounds) as usize;

    // Build the reordered index sequence block by block.
    let mut order: Vec<usize> = Vec::with_capacity(events.len());
    let mut y_prev = VarId::new(0);
    for k in 0..num_blocks {
        let steps: Vec<usize> = (0..events.len()).filter(|&i| block_of(i) == k).collect();
        if steps.is_empty() {
            continue;
        }
        // A port untouched in this block makes φ_k empty.
        let mut accessed = vec![false; spec.n()];
        for &i in &steps {
            if var_of[i].index() < spec.n() {
                accessed[var_of[i].index()] = true;
            }
        }
        if let Some(free) = (0..spec.n()).position(|y| !accessed[y]) {
            y_prev = VarId::new(free);
            order.extend(&steps);
            continue;
        }
        let tau = *steps
            .iter()
            .find(|&&i| var_of[i] == y_prev)
            .expect("every port accessed");
        let tau_desc = deps.descendants(tau);
        let mut chosen = None;
        for y in 0..spec.n() {
            let var = VarId::new(y);
            let sigma = *steps
                .iter()
                .rev()
                .find(|&&i| var_of[i] == var)
                .expect("every port accessed");
            if !tau_desc[sigma] {
                chosen = Some((var, sigma));
                break;
            }
        }
        let (y_k, sigma) = chosen.ok_or_else(|| {
            Error::inadmissible(format!(
                "no independent port in block {k}: B may exceed the propagation depth"
            ))
        })?;
        let ancestors = deps.ancestors(sigma);
        // φ_k: σ_k's ancestors in original order; ψ_k: the rest. No
        // non-ancestor can precede an ancestor in ≤_β (it would itself be
        // an ancestor), so this is a valid linear extension.
        order.extend(steps.iter().copied().filter(|&i| ancestors[i]));
        order.extend(steps.iter().copied().filter(|&i| !ancestors[i]));
        y_prev = y_k;
    }

    // Replay with fresh unit times (asynchronous: any labels do).
    let script: Vec<(Time, ProcessId)> = order
        .iter()
        .enumerate()
        .map(|(pos, &i)| (Time::from_int(pos as i128 + 1), events[i].process))
        .collect();
    let mut replayer = factory()?;
    let replay = replayer.run_scripted(&script)?;
    let sessions = count_sessions(&replay.trace, spec.n(), |_| None);
    let same_global_state = recorder.global_state() == replayer.global_state();

    Ok(ReorderOutcome {
        block_rounds: b_rounds,
        blocks: num_blocks,
        recorded_rounds: count_recorded_rounds(&outcome.trace, num_processes),
        sessions,
        s: spec.s(),
        same_global_state,
    })
}

fn count_recorded_rounds(trace: &Trace, num_processes: usize) -> u64 {
    session_core::verify::count_rounds(trace, num_processes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_sm_system;
    use session_core::system::build_sm_system;
    use session_types::KnownBounds;

    #[test]
    fn afl_reordering_defeats_the_silent_witness() {
        // n = 16, b = 2: B = 4. The witness finishes in s = 3 rounds,
        // far below (s-1)*B = 8.
        let spec = SessionSpec::new(3, 16, 2).unwrap();
        let outcome = afl_reorder_attack(
            || naive_sm_system(&spec, spec.s()),
            &spec,
            RunLimits::default(),
        )
        .unwrap();
        assert!(outcome.same_global_state);
        assert!(
            outcome.sessions < 3,
            "expected a deficit, got {} sessions over {} blocks",
            outcome.sessions,
            outcome.blocks
        );
        assert!(outcome.defeated());
        assert_eq!(outcome.block_rounds, 4);
        assert!(outcome.recorded_rounds <= 3);
    }

    #[test]
    fn afl_reordering_cannot_defeat_the_communicating_algorithm() {
        // The asynchronous algorithm pays a flood per session and survives:
        // the reordering is a legal asynchronous computation of a correct
        // algorithm, so it must still contain s sessions.
        let spec = SessionSpec::new(3, 16, 2).unwrap();
        let bounds = KnownBounds::asynchronous();
        let outcome = afl_reorder_attack(
            || build_sm_system(&spec, &bounds),
            &spec,
            RunLimits::default(),
        )
        .unwrap();
        assert!(outcome.same_global_state);
        assert!(
            outcome.sessions >= 3,
            "correct algorithm lost sessions: {}",
            outcome.sessions
        );
        assert!(!outcome.defeated());
    }

    #[test]
    fn afl_reordering_rejects_small_instances() {
        // floor(log2 2) = 1 < 2.
        let spec = SessionSpec::new(3, 2, 2).unwrap();
        assert!(afl_reorder_attack(
            || naive_sm_system(&spec, spec.s()),
            &spec,
            RunLimits::default(),
        )
        .is_err());
    }

    #[test]
    fn afl_reordering_across_sizes() {
        for (s, n, b) in [(2u64, 9usize, 3usize), (4, 16, 2), (3, 27, 2)] {
            let spec = SessionSpec::new(s, n, b).unwrap();
            if spec.log_b_n_floor() < 2 {
                continue;
            }
            let outcome = afl_reorder_attack(
                || naive_sm_system(&spec, spec.s()),
                &spec,
                RunLimits::default(),
            )
            .unwrap();
            assert!(
                outcome.defeated(),
                "s={s}, n={n}, b={b}: {} sessions",
                outcome.sessions
            );
        }
    }
}
