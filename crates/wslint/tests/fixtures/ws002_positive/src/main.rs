//! Positive: an unbounded channel in non-test code.

fn main() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    let _ = (tx, rx);
}
