//! Difference-bound matrices (DBMs) over [`Dur`] — the constraint
//! representation behind the symbolic timing verifier in [`crate::zones`].
//!
//! A DBM over clocks `x_0 .. x_{k-1}` (with `x_0` the constant reference
//! clock, always 0) stores one [`Bound`] per ordered pair: entry `(i, j)`
//! constrains `x_i - x_j` from above. The represented *zone* is the set of
//! clock valuations satisfying every entry — exactly the convex sets that
//! timed-automata reachability needs, closed under the operations here:
//!
//! * [`Dbm::close`] — canonicalization by all-pairs shortest paths
//!   (Floyd–Warshall over the `(min, +)` semiring of bounds). Two closed
//!   DBMs describe the same non-empty zone iff they are entry-for-entry
//!   equal, which is what makes [`Hash`]/[`Eq`] on a closed DBM a sound
//!   zone-graph memo key.
//! * [`Dbm::intersect`] — conjunction of two constraint systems.
//! * [`Dbm::up`] / [`Dbm::down`] — the future (delay) and past operators:
//!   let every clock advance / recede uniformly.
//! * [`Dbm::is_empty`] — satisfiability (a negative cycle in the bound
//!   graph).
//! * [`Dbm::reset`] / [`Dbm::add_clock`] / [`Dbm::remove_clock`] — clock
//!   scheduling for dynamic event sets (in-flight messages come and go).
//!
//! Bounds are exact rationals ([`Dur`] wraps `Ratio`), so closure is
//! numerically exact — no widening, no floating-point drift. The paper's
//! timing windows are closed intervals, so the walker only produces weak
//! (`<=`) bounds; strict bounds are supported for completeness and tested.

use std::fmt;

use session_types::Dur;

/// An upper bound on a clock difference `x_i - x_j`: either `< v`, `<= v`,
/// or unbounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bound {
    /// `x_i - x_j < v` (strict).
    Lt(Dur),
    /// `x_i - x_j <= v` (weak).
    Le(Dur),
    /// No constraint.
    Inf,
}

impl Bound {
    /// The weak zero bound `<= 0`, the diagonal entry of every canonical
    /// DBM.
    pub const ZERO: Bound = Bound::Le(Dur::ZERO);

    /// Whether `self` is at least as tight as `other` (the DBM entry
    /// order: `Lt(v)` is tighter than `Le(v)`, both tighter than any
    /// larger value, everything tighter than `Inf`).
    pub fn tighter_or_equal(self, other: Bound) -> bool {
        match (self, other) {
            (_, Bound::Inf) => true,
            (Bound::Inf, _) => false,
            (Bound::Lt(a), Bound::Lt(b))
            | (Bound::Le(a), Bound::Le(b))
            | (Bound::Lt(a), Bound::Le(b)) => a <= b,
            (Bound::Le(a), Bound::Lt(b)) => a < b,
        }
    }

    /// The tighter of two bounds.
    pub fn min(self, other: Bound) -> Bound {
        if self.tighter_or_equal(other) {
            self
        } else {
            other
        }
    }

    /// The finite value, if any.
    pub fn value(self) -> Option<Dur> {
        match self {
            Bound::Lt(v) | Bound::Le(v) => Some(v),
            Bound::Inf => None,
        }
    }

    /// Whether a cycle through this bound is infeasible: the canonical
    /// emptiness test checks the diagonal against `<= 0`.
    fn negative(self) -> bool {
        match self {
            Bound::Lt(v) => !v.is_positive(),
            Bound::Le(v) => v.is_negative(),
            Bound::Inf => false,
        }
    }
}

/// Bound addition (path concatenation): finite values add, strictness
/// is contagious, infinity absorbs.
impl std::ops::Add for Bound {
    type Output = Bound;

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Inf, _) | (_, Bound::Inf) => Bound::Inf,
            (Bound::Le(a), Bound::Le(b)) => Bound::Le(a + b),
            (Bound::Lt(a), Bound::Le(b))
            | (Bound::Le(a), Bound::Lt(b))
            | (Bound::Lt(a), Bound::Lt(b)) => Bound::Lt(a + b),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Lt(v) => write!(f, "< {v}"),
            Bound::Le(v) => write!(f, "<= {v}"),
            Bound::Inf => f.write_str("< inf"),
        }
    }
}

/// A difference-bound matrix over `size` clocks (clock 0 is the constant
/// reference). Kept closed (canonical) by every mutating operation, so
/// equality and hashing are sound zone identity.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dbm {
    size: usize,
    /// Row-major bounds: `m[i * size + j]` constrains `x_i - x_j`.
    m: Vec<Bound>,
    /// Set when closure finds a negative cycle: the zone is empty and the
    /// matrix contents are no longer meaningful.
    empty: bool,
}

impl Dbm {
    /// The zone where every clock is exactly 0 (the initial state).
    pub fn zeroed(size: usize) -> Dbm {
        assert!(size >= 1, "a DBM always has the reference clock");
        Dbm {
            size,
            m: vec![Bound::ZERO; size * size],
            empty: false,
        }
    }

    /// The unconstrained zone over non-negative clocks.
    pub fn unconstrained(size: usize) -> Dbm {
        assert!(size >= 1, "a DBM always has the reference clock");
        let mut dbm = Dbm {
            size,
            m: vec![Bound::Inf; size * size],
            empty: false,
        };
        for i in 0..size {
            *dbm.at_mut(i, i) = Bound::ZERO;
            // x_0 - x_i <= 0: clocks are non-negative.
            *dbm.at_mut(0, i) = Bound::ZERO;
        }
        dbm
    }

    /// Number of clocks, including the reference clock 0.
    pub fn size(&self) -> usize {
        self.size
    }

    fn at(&self, i: usize, j: usize) -> Bound {
        self.m[i * self.size + j]
    }

    fn at_mut(&mut self, i: usize, j: usize) -> &mut Bound {
        &mut self.m[i * self.size + j]
    }

    /// The bound on `x_i - x_j`. Meaningless once the zone is empty.
    pub fn bound(&self, i: usize, j: usize) -> Bound {
        self.at(i, j)
    }

    /// The upper bound on clock `i` (the entry `x_i - x_0`).
    pub fn upper(&self, i: usize) -> Bound {
        self.at(i, 0)
    }

    /// The lower bound on clock `i`, as a non-negative duration (from the
    /// entry `x_0 - x_i <= -lo`). `None` when the zone is empty.
    pub fn lower(&self, i: usize) -> Option<Dur> {
        self.at(0, i).value().map(|v| -v)
    }

    /// Whether the zone is empty (unsatisfiable constraints).
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Canonicalizes by Floyd–Warshall closure; detects emptiness. Every
    /// public mutating operation calls this, so a `Dbm` is always closed
    /// from the outside.
    fn close(&mut self) {
        if self.empty {
            return;
        }
        let n = self.size;
        for k in 0..n {
            for i in 0..n {
                let ik = self.at(i, k);
                if ik == Bound::Inf {
                    continue;
                }
                for j in 0..n {
                    let through = ik + self.at(k, j);
                    let entry = self.at_mut(i, j);
                    *entry = entry.min(through);
                }
            }
        }
        for i in 0..n {
            if self.at(i, i).negative() {
                self.empty = true;
                return;
            }
            *self.at_mut(i, i) = Bound::ZERO;
        }
    }

    /// Conjoins `x_i - x_j {<,<=} bound` and re-canonicalizes. Uses the
    /// standard incremental closure for a single tightened entry — two
    /// pivot passes (through `i`, then `j`) restore canonical form in
    /// `O(size^2)` instead of the full `O(size^3)` Floyd–Warshall.
    pub fn constrain(&mut self, i: usize, j: usize, bound: Bound) {
        if self.empty {
            return;
        }
        let entry = self.at(i, j);
        if !bound.tighter_or_equal(entry) || bound == entry {
            return;
        }
        // The only cycle the new edge can create is i -> j -> i; on a
        // closed DBM a negative such cycle is the exact emptiness test.
        if (bound + self.at(j, i)).negative() {
            self.empty = true;
            return;
        }
        *self.at_mut(i, j) = bound;
        let n = self.size;
        for k in [i, j] {
            for a in 0..n {
                let ak = self.at(a, k);
                if ak == Bound::Inf {
                    continue;
                }
                for c in 0..n {
                    let through = ak + self.at(k, c);
                    let e = self.at_mut(a, c);
                    *e = e.min(through);
                }
            }
        }
    }

    /// Intersects with `other` (entry-wise minimum, then closure). The
    /// zones must range over the same clock set.
    pub fn intersect(&mut self, other: &Dbm) {
        assert_eq!(self.size, other.size, "zones over different clock sets");
        if other.empty {
            self.empty = true;
        }
        if self.empty {
            return;
        }
        for idx in 0..self.m.len() {
            self.m[idx] = self.m[idx].min(other.m[idx]);
        }
        self.close();
    }

    /// The future (delay) operator: every clock advances by the same
    /// arbitrary non-negative amount. Removes the upper bounds against the
    /// reference clock; differences between clocks are preserved. Stays
    /// canonical without re-closing (standard DBM result).
    pub fn up(&mut self) {
        if self.empty {
            return;
        }
        for i in 1..self.size {
            *self.at_mut(i, 0) = Bound::Inf;
        }
    }

    /// The past operator: every clock recedes uniformly (but not below 0).
    /// Releases the lower bounds against the reference clock, then
    /// re-canonicalizes.
    pub fn down(&mut self) {
        if self.empty {
            return;
        }
        for i in 1..self.size {
            *self.at_mut(0, i) = Bound::ZERO;
        }
        self.close();
    }

    /// Resets clock `i` to 0 (scheduling a fresh event on it). Standard
    /// reset on a closed DBM: copy the reference row/column through the
    /// reset clock.
    pub fn reset(&mut self, i: usize) {
        assert!(i != 0, "cannot reset the reference clock");
        if self.empty {
            return;
        }
        for j in 0..self.size {
            *self.at_mut(i, j) = self.at(0, j);
            *self.at_mut(j, i) = self.at(j, 0);
        }
        *self.at_mut(i, i) = Bound::ZERO;
    }

    /// Appends a new clock, initialized to 0, and returns its index.
    pub fn add_clock(&mut self) -> usize {
        let old = self.size;
        let new = old + 1;
        let mut m = vec![Bound::Inf; new * new];
        for i in 0..old {
            for j in 0..old {
                m[i * new + j] = self.at(i, j);
            }
        }
        self.size = new;
        self.m = m;
        // New clock == reference clock (both "now - now" = 0 offsets
        // relative to the reset instant): copy row/column 0.
        self.reset(old);
        old
    }

    /// Removes clock `i` (projection: on a closed DBM, dropping a row and
    /// column loses no information about the remaining clocks).
    pub fn remove_clock(&mut self, i: usize) {
        assert!(i != 0, "cannot remove the reference clock");
        let old = self.size;
        let new = old - 1;
        let mut m = Vec::with_capacity(new * new);
        for r in (0..old).filter(|&r| r != i) {
            for c in (0..old).filter(|&c| c != i) {
                m.push(self.at(r, c));
            }
        }
        self.size = new;
        self.m = m;
    }

    /// Whether every valuation of `self` also satisfies `other`
    /// (zone inclusion; both canonical, so entry-wise comparison).
    pub fn subset_of(&self, other: &Dbm) -> bool {
        assert_eq!(self.size, other.size, "zones over different clock sets");
        if self.empty {
            return true;
        }
        if other.empty {
            return false;
        }
        (0..self.m.len()).all(|idx| self.m[idx].tighter_or_equal(other.m[idx]))
    }

    /// Whether the concrete valuation (clock `i` has value `vals[i - 1]`,
    /// the reference excluded) lies inside the zone.
    pub fn contains(&self, vals: &[Dur]) -> bool {
        assert_eq!(
            vals.len() + 1,
            self.size,
            "one value per non-reference clock"
        );
        if self.empty {
            return false;
        }
        let value = |i: usize| if i == 0 { Dur::ZERO } else { vals[i - 1] };
        for i in 0..self.size {
            for j in 0..self.size {
                let diff = value(i) - value(j);
                let ok = match self.at(i, j) {
                    Bound::Lt(v) => diff < v,
                    Bound::Le(v) => diff <= v,
                    Bound::Inf => true,
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Hashes only the sub-matrix over the clocks for which `keep` is
    /// true (`keep[0]` must hold — the reference clock is always kept).
    /// The zone-graph memo uses this to exclude the global elapsed-time
    /// clock, whose coordinates grow forever, from state identity.
    pub fn hash_projected<H: std::hash::Hasher>(&self, keep: &[bool], hasher: &mut H) {
        use std::hash::Hash;
        assert_eq!(keep.len(), self.size);
        assert!(keep[0], "the reference clock is always kept");
        self.empty.hash(hasher);
        if self.empty {
            return;
        }
        for i in (0..self.size).filter(|&i| keep[i]) {
            for j in (0..self.size).filter(|&j| keep[j]) {
                self.at(i, j).hash(hasher);
            }
        }
    }

    /// Hashes the sub-matrix over `indices`, in that order — projection
    /// and reordering in one pass. The zone-graph memo uses this to hash
    /// the DBM under a canonical clock permutation (and without the global
    /// elapsed-time clock), so zone states that differ only in the order
    /// events happened to be scheduled collapse to one key.
    pub fn hash_permuted<H: std::hash::Hasher>(&self, indices: &[usize], hasher: &mut H) {
        use std::hash::Hash;
        self.empty.hash(hasher);
        if self.empty {
            return;
        }
        for &i in indices {
            for &j in indices {
                self.at(i, j).hash(hasher);
            }
        }
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return f.write_str("(empty zone)");
        }
        for i in 0..self.size {
            for j in 0..self.size {
                if i == j {
                    continue;
                }
                if let Some(v) = self.at(i, j).value() {
                    let strict = matches!(self.at(i, j), Bound::Lt(_));
                    writeln!(f, "x{i} - x{j} {} {v}", if strict { "<" } else { "<=" })?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: i128) -> Dur {
        Dur::from_int(v)
    }

    #[test]
    fn zeroed_contains_only_the_origin() {
        let z = Dbm::zeroed(3);
        assert!(!z.is_empty());
        assert!(z.contains(&[d(0), d(0)]));
        assert!(!z.contains(&[d(1), d(0)]));
    }

    #[test]
    fn up_releases_upper_bounds_but_keeps_differences() {
        let mut z = Dbm::zeroed(3);
        z.up();
        assert!(z.contains(&[d(5), d(5)]), "uniform delay stays inside");
        assert!(!z.contains(&[d(5), d(4)]), "clocks drifted apart");
        assert_eq!(z.upper(1), Bound::Inf);
        assert_eq!(z.lower(1), Some(Dur::ZERO));
    }

    #[test]
    fn constrain_tightens_and_closure_propagates() {
        let mut z = Dbm::zeroed(3);
        z.up();
        // x1 <= 4 and x2 - x1 <= 0 (already) => x2 <= 4 via closure.
        z.constrain(1, 0, Bound::Le(d(4)));
        assert_eq!(z.upper(2), Bound::Le(d(4)));
        assert!(z.contains(&[d(4), d(4)]));
        assert!(!z.contains(&[d(5), d(5)]));
    }

    #[test]
    fn guard_window_constrains_both_sides() {
        let mut z = Dbm::zeroed(2);
        z.up();
        // 2 <= x1 <= 7.
        z.constrain(0, 1, Bound::Le(d(-2)));
        z.constrain(1, 0, Bound::Le(d(7)));
        assert_eq!(z.lower(1), Some(d(2)));
        assert_eq!(z.upper(1), Bound::Le(d(7)));
        assert!(z.contains(&[d(2)]) && z.contains(&[d(7)]));
        assert!(!z.contains(&[d(1)]) && !z.contains(&[d(8)]));
    }

    #[test]
    fn contradictory_constraints_empty_the_zone() {
        let mut z = Dbm::zeroed(2);
        z.up();
        z.constrain(1, 0, Bound::Le(d(3)));
        z.constrain(0, 1, Bound::Le(d(-5))); // x1 >= 5
        assert!(z.is_empty());
    }

    #[test]
    fn strict_against_weak_at_the_same_value_is_empty() {
        let mut z = Dbm::zeroed(2);
        z.up();
        z.constrain(0, 1, Bound::Le(d(-3))); // x1 >= 3
        z.constrain(1, 0, Bound::Lt(d(3))); // x1 < 3
        assert!(z.is_empty());
    }

    #[test]
    fn intersect_is_conjunction() {
        let mut a = Dbm::zeroed(2);
        a.up();
        a.constrain(1, 0, Bound::Le(d(10)));
        let mut b = Dbm::zeroed(2);
        b.up();
        b.constrain(0, 1, Bound::Le(d(-4))); // x1 >= 4
        a.intersect(&b);
        assert_eq!(a.lower(1), Some(d(4)));
        assert_eq!(a.upper(1), Bound::Le(d(10)));
        let mut disjoint = Dbm::zeroed(2);
        disjoint.up();
        disjoint.constrain(1, 0, Bound::Le(d(3)));
        a.intersect(&disjoint);
        assert!(a.is_empty());
    }

    #[test]
    fn down_is_the_past_operator() {
        let mut z = Dbm::zeroed(3);
        z.up();
        z.constrain(0, 1, Bound::Le(d(-6))); // x1 >= 6 (and x2 = x1)
        z.down();
        // Some past valuation had x1 = 0.
        assert!(z.contains(&[d(0), d(0)]));
        assert!(z.contains(&[d(6), d(6)]));
        assert!(!z.contains(&[d(6), d(5)]), "differences survive down()");
    }

    #[test]
    fn reset_pins_one_clock_and_keeps_the_rest() {
        let mut z = Dbm::zeroed(3);
        z.up();
        z.constrain(1, 0, Bound::Le(d(5)));
        z.constrain(0, 1, Bound::Le(d(-5))); // x1 = x2 = 5
        z.reset(2);
        assert!(z.contains(&[d(5), d(0)]));
        assert!(!z.contains(&[d(5), d(5)]));
        assert_eq!(z.upper(2), Bound::ZERO);
        // x1 - x2 is now exactly 5.
        assert_eq!(z.bound(1, 2), Bound::Le(d(5)));
    }

    #[test]
    fn add_and_remove_clock_round_trip() {
        let mut z = Dbm::zeroed(2);
        z.up();
        z.constrain(1, 0, Bound::Le(d(3)));
        let snapshot = z.clone();
        let c = z.add_clock();
        assert_eq!(c, 2);
        assert_eq!(z.size(), 3);
        assert_eq!(z.upper(2), Bound::ZERO, "new clocks start at 0");
        // x1 - x2 inherits x1's current window.
        assert_eq!(z.bound(1, 2), Bound::Le(d(3)));
        z.remove_clock(2);
        assert_eq!(z, snapshot, "projection undoes an untouched add");
    }

    #[test]
    fn subset_and_equality_on_canonical_forms() {
        let mut narrow = Dbm::zeroed(2);
        narrow.up();
        narrow.constrain(1, 0, Bound::Le(d(2)));
        let mut wide = Dbm::zeroed(2);
        wide.up();
        wide.constrain(1, 0, Bound::Le(d(9)));
        assert!(narrow.subset_of(&wide));
        assert!(!wide.subset_of(&narrow));
        let mut same = Dbm::zeroed(2);
        same.up();
        same.constrain(1, 0, Bound::Le(d(9)));
        assert_eq!(wide, same, "closed DBMs are canonical");
    }

    #[test]
    fn projected_hash_ignores_the_skipped_clock() {
        use rustc_hash::FxHasher;
        use std::hash::Hasher;
        let hash = |z: &Dbm, keep: &[bool]| {
            let mut h = FxHasher::default();
            z.hash_projected(keep, &mut h);
            h.finish()
        };
        // Decoupled clocks: in a zeroed-then-up zone the clocks stay equal,
        // so a bound on one would propagate to the others through closure.
        let mut a = Dbm::unconstrained(3);
        a.constrain(0, 1, Bound::Le(Dur::ZERO));
        a.constrain(0, 2, Bound::Le(Dur::ZERO));
        a.constrain(1, 0, Bound::Le(d(4)));
        let mut b = a.clone();
        b.constrain(2, 0, Bound::Le(d(1)));
        // Clock 2 differs; projecting it out makes the zones coincide.
        assert_ne!(hash(&a, &[true, true, true]), hash(&b, &[true, true, true]));
        assert_eq!(
            hash(&a, &[true, true, false]),
            hash(&b, &[true, true, false])
        );
    }

    #[test]
    fn bound_display_and_ordering() {
        assert_eq!(Bound::Le(d(3)).to_string(), "<= 3");
        assert_eq!(Bound::Lt(d(3)).to_string(), "< 3");
        assert_eq!(Bound::Inf.to_string(), "< inf");
        assert!(Bound::Lt(d(3)).tighter_or_equal(Bound::Le(d(3))));
        assert!(!Bound::Le(d(3)).tighter_or_equal(Bound::Lt(d(3))));
        assert_eq!(Bound::Lt(d(1)) + Bound::Le(d(2)), Bound::Lt(d(3)));
        assert_eq!(Bound::Inf.min(Bound::Le(d(1))), Bound::Le(d(1)));
    }
}
