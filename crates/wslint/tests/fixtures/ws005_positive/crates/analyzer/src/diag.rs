//! Positive: one variant lacks an SAxxx mapping, another lacks a
//! paper-section reference in its doc comment.

/// The trace lint codes.
pub enum LintCode {
    /// Sessions may interleave (§3.2).
    Mapped,
    /// This variant's arm is missing from code() (§4.1).
    Unmapped,
    /// This doc comment cites no paper section at all.
    NoSection,
}

impl LintCode {
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Mapped => "SA001",
            LintCode::NoSection => "SA002",
            LintCode::Unmapped => "",
        }
    }
}
