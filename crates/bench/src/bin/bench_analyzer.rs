//! Analyzer throughput benchmark: explore the paper's periodic
//! message-passing target at the headline scope (n = 3, s = 3) across a
//! thread sweep and report states/second, the parallel speedup over the
//! serial explorer, and the findings multiset — which must be identical
//! at every thread count (the parallel explorer re-derives its witnesses
//! through the serial DFS, see `session-analyzer`'s `parallel` module).
//!
//! ```text
//! cargo run --release -p session-bench --bin bench_analyzer
//! cargo run --release -p session-bench --bin bench_analyzer -- --json
//! cargo run --release -p session-bench --bin bench_analyzer -- --json out.json
//! cargo run --release -p session-bench --bin bench_analyzer -- --profile --json
//! ```
//!
//! Report schema: `session-bench/analyzer/v1` — per row the reduction
//! label, thread count, distinct states visited, wall-clock seconds,
//! states/second, speedup over the threads=1 row of the same reduction,
//! the sorted lint-code multiset, and the truncation flag. The top-level
//! `host_threads` / `skewed` pair records whether the host could actually
//! run the sweep in parallel: when `host_threads` is below the largest
//! requested thread count the speedup rows measure oversubscription, not
//! scaling, the report says `SKEWED` loudly, and the non-fatal
//! `REGRESSION` check is skipped (DESIGN.md §15).
//!
//! `--profile` reruns each row with the flight recorder on (DESIGN.md
//! §15) and embeds the utilization/contention summary — worker busy
//! fraction, duplicate expansions, memo-stripe lock waits, donation
//! counts, phase split — per row in both the markdown and the JSON.
//!
//! Exit status: `0` on success, `1` when the findings diverge across
//! thread counts (a correctness failure). A speedup below the CI target
//! is **not** a failure here — single-core hosts legitimately measure
//! ≈1×; the threshold is asserted by CI on its own hardware from the
//! recorded JSON.

use std::time::Instant;

use session_analyzer::explore::{explore_flight, explore_with_opts};
use session_analyzer::{scoped_target_space, ExploreOpts, ExploreProfile, FlightOpts};
use session_bench::json_report::json_flag;
use session_obs::json::JsonWriter;
use session_obs::NullRecorder;

/// The version tag written into every analyzer-bench report.
const SCHEMA: &str = "session-bench/analyzer/v1";

/// The headline target and scope of the speedup acceptance criterion.
const TARGET: &str = "PeriodicMp";
const N: usize = 3;
const S: u64 = 3;

/// The thread sweep. `1` is the serial baseline every speedup is
/// relative to.
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct BenchRow {
    reduce: &'static str,
    threads: usize,
    states: u64,
    wall_secs: f64,
    states_per_sec: f64,
    speedup: f64,
    findings: Vec<String>,
    truncated: bool,
    flight: Option<FlightSummary>,
}

/// The utilization/contention digest `--profile` embeds per row,
/// condensed from the full [`ExploreProfile`].
struct FlightSummary {
    /// Busy ÷ (busy + idle) summed over workers, in `[0, 1]`.
    utilization: f64,
    duplicate_expansions: u64,
    /// Duplicates as a percentage of all expansions.
    dup_pct: f64,
    stripe_lock_waits: u64,
    lock_wait_ms: f64,
    donations_offered: u64,
    donations_accepted: u64,
    phase_a_ms: f64,
    phase_b_ms: f64,
}

impl FlightSummary {
    fn of(profile: &ExploreProfile) -> FlightSummary {
        let busy: u64 = profile.workers.iter().map(|w| w.busy_ns).sum();
        let idle: u64 = profile.workers.iter().map(|w| w.idle_ns).sum();
        let wait: u64 = profile.workers.iter().map(|w| w.stripe_lock_wait_ns).sum();
        FlightSummary {
            utilization: busy as f64 / ((busy + idle) as f64).max(1.0),
            duplicate_expansions: profile.duplicate_expansions,
            dup_pct: if profile.states == 0 {
                0.0
            } else {
                100.0 * profile.duplicate_expansions as f64 / profile.states as f64
            },
            stripe_lock_waits: profile.workers.iter().map(|w| w.stripe_lock_waits).sum(),
            lock_wait_ms: wait as f64 / 1e6,
            donations_offered: profile.donations_offered,
            donations_accepted: profile.donations_accepted,
            phase_a_ms: profile.phase_a_ns as f64 / 1e6,
            phase_b_ms: profile.phase_b_ns as f64 / 1e6,
        }
    }
}

/// Explores the target once and measures throughput. With `profile` the
/// flight recorder rides along and the row carries its digest; the timed
/// exploration itself still runs with the recorder off, so the headline
/// states/second is never polluted by instrumentation.
fn measure(
    space: &session_analyzer::TargetSpace,
    reduce: &'static str,
    base: ExploreOpts,
    threads: usize,
    profile: bool,
) -> BenchRow {
    let opts = ExploreOpts { threads, ..base };
    let start = Instant::now();
    let exploration = explore_with_opts(&space.roots, N, S, space.scope.max_depth, opts);
    let wall_secs = start.elapsed().as_secs_f64();
    let flight = profile.then(|| {
        let (_, profile) = explore_flight(
            &space.roots,
            N,
            S,
            space.scope.max_depth,
            opts,
            &mut NullRecorder,
            &FlightOpts::profiled(),
        );
        FlightSummary::of(&profile.expect("FlightOpts::profiled() always yields a profile"))
    });
    let mut findings: Vec<String> = exploration
        .violations
        .iter()
        .map(|v| v.code.code().to_owned())
        .collect();
    findings.sort();
    BenchRow {
        reduce,
        threads,
        states: exploration.states,
        wall_secs,
        states_per_sec: exploration.states as f64 / wall_secs.max(1e-9),
        speedup: 0.0, // filled in once the serial baseline is known
        findings,
        truncated: exploration.truncated,
        flight,
    }
}

/// Runs the thread sweep for one reduction setting.
fn sweep(
    space: &session_analyzer::TargetSpace,
    reduce: &'static str,
    base: ExploreOpts,
    profile: bool,
) -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = THREADS
        .iter()
        .map(|&threads| measure(space, reduce, base, threads, profile))
        .collect();
    let baseline = rows[0].states_per_sec;
    for row in &mut rows {
        row.speedup = row.states_per_sec / baseline.max(1e-9);
    }
    rows
}

fn to_json(rows: &[BenchRow], max_depth: usize, host_threads: usize, skewed: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_str("target", TARGET);
    w.field_u64("n", N as u64);
    w.field_u64("s", S);
    w.field_u64("max_depth", max_depth as u64);
    w.field_u64("host_threads", host_threads as u64);
    w.field_bool("skewed", skewed);
    w.key("rows");
    w.begin_array();
    for row in rows {
        w.begin_object();
        w.field_str("reduce", row.reduce);
        w.field_u64("threads", row.threads as u64);
        w.field_u64("states", row.states);
        w.field_f64("wall_secs", row.wall_secs);
        w.field_f64("states_per_sec", row.states_per_sec);
        w.field_f64("speedup", row.speedup);
        w.key("findings");
        w.begin_array();
        for code in &row.findings {
            w.value_str(code);
        }
        w.end_array();
        w.field_bool("truncated", row.truncated);
        if let Some(flight) = &row.flight {
            w.key("flight");
            w.begin_object();
            w.field_f64("utilization", flight.utilization);
            w.field_u64("duplicate_expansions", flight.duplicate_expansions);
            w.field_f64("dup_pct", flight.dup_pct);
            w.field_u64("stripe_lock_waits", flight.stripe_lock_waits);
            w.field_f64("lock_wait_ms", flight.lock_wait_ms);
            w.field_u64("donations_offered", flight.donations_offered);
            w.field_u64("donations_accepted", flight.donations_accepted);
            w.field_f64("phase_a_ms", flight.phase_a_ms);
            w.field_f64("phase_b_ms", flight.phase_b_ms);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_analyzer.json");
    let profile = std::env::args().skip(1).any(|arg| arg == "--profile");
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let sweep_top = *THREADS.last().expect("sweep is non-empty");
    let skewed = host_threads < sweep_top;
    let space = scoped_target_space(TARGET, N, S).expect("PeriodicMp is registered");
    println!(
        "# Analyzer throughput — {TARGET} at n = {N}, s = {S}, depth {}\n",
        space.scope.max_depth
    );
    println!(
        "Work-stealing parallel exploration vs the serial explorer; the\n\
         findings multiset must be identical on every row. Host reports\n\
         {host_threads} hardware thread(s) — speedups above 1 need more\n\
         than one.\n"
    );
    println!("| reduce | threads | states | wall | states/s | speedup | findings | truncated |");
    println!("|---|---:|---:|---:|---:|---:|---|---|");
    let mut rows = Vec::new();
    for (reduce, base) in [
        ("none", ExploreOpts::default()),
        ("all", ExploreOpts::reduced()),
    ] {
        rows.extend(sweep(&space, reduce, base, profile));
    }
    for row in &rows {
        println!(
            "| {} | {} | {} | {:.2} s | {:.0} | {:.2}x | {} | {} |",
            row.reduce,
            row.threads,
            row.states,
            row.wall_secs,
            row.states_per_sec,
            row.speedup,
            row.findings.join("+"),
            row.truncated
        );
    }
    if profile {
        println!("\n## flight recorder (--profile)\n");
        println!(
            "| reduce | threads | util | dup | stripe waits | lock wait | donated items (points) | phase A | phase B |"
        );
        println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");
        for row in &rows {
            let f = row.flight.as_ref().expect("--profile fills every row");
            println!(
                "| {} | {} | {:.0}% | {} ({:.1}%) | {} | {:.1} ms | {} ({}) | {:.1} ms | {:.1} ms |",
                row.reduce,
                row.threads,
                100.0 * f.utilization,
                f.duplicate_expansions,
                f.dup_pct,
                f.stripe_lock_waits,
                f.lock_wait_ms,
                f.donations_accepted,
                f.donations_offered,
                f.phase_a_ms,
                f.phase_b_ms,
            );
        }
    }
    if skewed {
        // A 1-core runner oversubscribing an 8-thread sweep measures
        // context-switch overhead, not scaling; say so loudly and keep
        // the debt marker quiet rather than crying wolf.
        println!(
            "\nSKEWED: host reports {host_threads} hardware thread(s) but the sweep requests \
             up to {sweep_top}; speedup rows measure oversubscription, not scaling, and the \
             REGRESSION check is skipped (DESIGN.md §15)."
        );
    } else {
        // Open-item-1 debt marker: loud but non-fatal, so the speedup gap
        // stays visible in every telemetry artifact without failing hosts
        // that legitimately measure ≈1× (single-core runners).
        for row in rows.iter().filter(|r| r.threads == sweep_top) {
            if row.speedup < 1.0 {
                println!(
                    "REGRESSION: reduce={} speedup at {} threads is {:.2}x < 1.00x — the \
                     parallel explorer is still slower than serial here (ROADMAP open item 1)",
                    row.reduce, row.threads, row.speedup
                );
            }
        }
    }
    // Correctness gate: the verdict must not depend on the thread count.
    let mut diverged = false;
    for (reduce, _) in [("none", ()), ("all", ())] {
        let serial: Vec<&BenchRow> = rows.iter().filter(|r| r.reduce == reduce).collect();
        for row in &serial[1..] {
            if row.findings != serial[0].findings || row.truncated != serial[0].truncated {
                eprintln!(
                    "FINDINGS DIVERGED: reduce={reduce} threads={} reported {:?}, serial {:?}",
                    row.threads, row.findings, serial[0].findings
                );
                diverged = true;
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(
            &path,
            to_json(&rows, space.scope.max_depth, host_threads, skewed),
        ) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }
    if diverged {
        std::process::exit(1);
    }
}
