//! The asynchronous message-passing algorithm: one broadcast wave per
//! session (\[4\]; Table 1 row 5).

use session_mpm::{Envelope, MpProcess};
use session_smm::Knowledge;
use session_types::ProcessId;

use crate::msg::SessionMsg;

/// The wave protocol over broadcast: commit wave `k + 1` only after hearing
/// `m(j, v)` with `v >= k` from every port process `j` (the first commit is
/// free); broadcast `m(i, k + 1)` on committing; idle after committing `s`
/// waves with no final wait — the `(s − 1)(d2 + c2) + c2` upper bound
/// of \[4\].
#[derive(Clone, Debug)]
pub struct AsyncMpPort {
    s: u64,
    n: usize,
    committed: u64,
    heard: Knowledge,
}

impl AsyncMpPort {
    /// Creates the port process for the `(s, n)`-session problem.
    pub fn new(s: u64, n: usize) -> AsyncMpPort {
        AsyncMpPort {
            s,
            n,
            committed: 0,
            heard: Knowledge::new(),
        }
    }

    /// The number of committed waves.
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

impl MpProcess<SessionMsg> for AsyncMpPort {
    fn step(&mut self, inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        for env in &inbox {
            self.heard.announce(env.from, env.payload.value);
        }
        if self.is_idle() {
            return None;
        }
        let ports = (0..self.n).map(ProcessId::new);
        if self.committed == 0 || self.heard.all_at_least(ports, self.committed) {
            self.committed += 1;
            return Some(SessionMsg::new(self.committed));
        }
        None
    }

    fn is_idle(&self) -> bool {
        self.committed >= self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(i: usize, value: u64) -> Envelope<SessionMsg> {
        Envelope::new(ProcessId::new(i), SessionMsg::new(value))
    }

    #[test]
    fn first_commit_broadcasts_wave_one() {
        let mut p = AsyncMpPort::new(3, 2);
        assert_eq!(p.step(vec![]), Some(SessionMsg::new(1)));
        assert_eq!(p.committed(), 1);
    }

    #[test]
    fn later_commits_wait_for_all_processes() {
        let mut p = AsyncMpPort::new(3, 2);
        let _ = p.step(vec![]); // commit 1
        assert_eq!(p.step(vec![wave(0, 1)]), None, "missing p1's wave 1");
        assert_eq!(p.step(vec![wave(1, 1)]), Some(SessionMsg::new(2)));
        assert_eq!(
            p.step(vec![wave(0, 2), wave(1, 2)]),
            Some(SessionMsg::new(3))
        );
        assert!(p.is_idle());
    }

    #[test]
    fn higher_values_satisfy_lower_waves() {
        let mut p = AsyncMpPort::new(3, 2);
        let _ = p.step(vec![]); // commit 1
                                // Hearing wave 5 from both: covers every wave requirement.
        let _ = p.step(vec![wave(0, 5), wave(1, 5)]);
        assert_eq!(p.committed(), 2);
        let _ = p.step(vec![]);
        assert_eq!(p.committed(), 3);
        assert!(p.is_idle());
    }

    #[test]
    fn idle_is_silent() {
        let mut p = AsyncMpPort::new(1, 2);
        let _ = p.step(vec![]);
        assert!(p.is_idle());
        assert_eq!(p.step(vec![wave(0, 9)]), None);
        assert_eq!(p.committed(), 1);
    }
}
