//! Memoized depth-first exploration of a machine's complete reachable
//! state space, with the session counter and the lint triggers.
//!
//! The explorer walks every branch of [`AnyMachine`]'s choice menu. Along
//! each path it maintains an incremental copy of the greedy session
//! counter (`session_core::verify::count_sessions` semantics, verified
//! equivalent in the test suite), because the session count is
//! history-dependent: two paths can reach the same machine state having
//! closed different numbers of sessions. The memo key therefore combines
//! the machine state with the counter state — pruning on machine state
//! alone would be unsound.
//!
//! Triggers:
//! * quiescent leaf with fewer than `s` sessions → `SA001`;
//! * a step pushing a variable past its `b`-bound → `SA002`;
//! * any process claiming more sessions than counted → `SA003`;
//! * an idle process un-idling → `SA004`;
//! * a state repeating on the current path (an admissible lasso that
//!   never quiesces) or the depth budget running out → `SA005`.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use session_obs::{NullRecorder, Recorder};

use crate::diag::LintCode;
use crate::machine::{MpMachine, SmMachine, StepInfo};

/// Either machine, so the explorer and replayer are substrate-agnostic.
#[derive(Clone, Debug)]
pub enum AnyMachine {
    /// Shared memory.
    Sm(SmMachine),
    /// Message passing.
    Mp(MpMachine),
}

impl AnyMachine {
    /// See [`SmMachine::choice_count`].
    pub fn choice_count(&self) -> usize {
        match self {
            AnyMachine::Sm(m) => m.choice_count(),
            AnyMachine::Mp(m) => m.choice_count(),
        }
    }

    /// See [`SmMachine::apply`].
    pub fn apply(&mut self, choice: usize, trace: Option<&mut session_sim::Trace>) -> StepInfo {
        match self {
            AnyMachine::Sm(m) => m.apply(choice, trace),
            AnyMachine::Mp(m) => m.apply(choice, trace),
        }
    }

    /// See [`SmMachine::is_quiescent`].
    pub fn is_quiescent(&self) -> bool {
        match self {
            AnyMachine::Sm(m) => m.is_quiescent(),
            AnyMachine::Mp(m) => m.is_quiescent(),
        }
    }

    /// See [`SmMachine::state_hash`].
    pub fn state_hash(&self) -> u64 {
        match self {
            AnyMachine::Sm(m) => m.state_hash(),
            AnyMachine::Mp(m) => m.state_hash(),
        }
    }

    /// See [`MpMachine::claimed_sessions_max`] (`None` for shared memory).
    pub fn claimed_sessions_max(&self) -> Option<u64> {
        match self {
            AnyMachine::Sm(_) => None,
            AnyMachine::Mp(m) => m.claimed_sessions_max(),
        }
    }
}

/// Incremental greedy session counter, mirroring
/// `session_core::verify::count_sessions` step for step: only port steps
/// are visible; the step on which a process idles still counts; later
/// steps of an idle process never do.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct SessionCounter {
    n: usize,
    /// Sessions closed so far, saturated at `s` (further sessions cannot
    /// change any verdict, and saturating keeps the memo key space finite).
    sessions: u64,
    saturate_at: u64,
    covered: BTreeSet<usize>,
    idle: BTreeSet<usize>,
}

impl SessionCounter {
    /// A fresh counter for `n` ports, saturating at `s`.
    pub fn new(n: usize, s: u64) -> SessionCounter {
        SessionCounter {
            n,
            sessions: 0,
            saturate_at: s,
            covered: BTreeSet::new(),
            idle: BTreeSet::new(),
        }
    }

    /// Sessions closed so far (saturated at `s`).
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Feeds one applied transition.
    pub fn observe(&mut self, info: &StepInfo) {
        let Some(port) = info.port else { return };
        let p = info.process.index();
        let was_idle = self.idle.contains(&p);
        if info.idle_after {
            self.idle.insert(p);
        }
        if was_idle {
            return;
        }
        self.covered.insert(port.index());
        if self.covered.len() >= self.n {
            self.sessions = (self.sessions + 1).min(self.saturate_at);
            self.covered.clear();
        }
    }
}

/// A lint rule fired during exploration.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// Which rule.
    pub code: LintCode,
    /// One-line description.
    pub message: String,
    /// The branch choices leading from the root to the violation —
    /// replaying them through a clone of the root machine reproduces it
    /// exactly.
    pub path: Vec<usize>,
    /// Index of the root (first-step / period assignment) the violation
    /// was found under.
    pub root: usize,
}

/// The result of exploring one target.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Distinct states visited across all roots.
    pub states: u64,
    /// The violations found: the first witness of each distinct lint code
    /// (exploration prunes below a violation but keeps searching the rest
    /// of the space, so one target can exhibit several codes — e.g. a
    /// phantom-certifying algorithm both claims too much on some schedules
    /// and under-delivers on others).
    pub violations: Vec<FoundViolation>,
}

/// Exhaustively explores every root machine, sharing the memo across
/// roots. `s` is the required session count, `n` the number of ports,
/// `max_depth` the per-path event budget.
pub fn explore(roots: &[AnyMachine], n: usize, s: u64, max_depth: usize) -> Exploration {
    explore_recorded(roots, n, s, max_depth, &mut NullRecorder)
}

/// [`explore`] with instrumentation: emits `explore.memo_hits` /
/// `explore.memo_misses` counters, an `explore.frontier_depth` histogram
/// (DFS path length at each expansion) and final `explore.states` /
/// `explore.states_per_sec` gauges to `recorder`, timing each root under
/// an `explore.root` span.
pub fn explore_recorded(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    recorder: &mut dyn Recorder,
) -> Exploration {
    let started = Instant::now();
    let mut explorer = Explorer {
        memo: HashSet::new(),
        on_path: HashSet::new(),
        violations: Vec::new(),
        states: 0,
        current_root: 0,
        s,
        max_depth,
        recorder,
    };
    for (root_index, root) in roots.iter().enumerate() {
        explorer.current_root = root_index;
        let counter = SessionCounter::new(n, s);
        let mut path = Vec::new();
        explorer.recorder.span_start("explore.root");
        explorer.dfs(root.clone(), counter, &mut path);
        explorer.recorder.span_end();
    }
    let Explorer {
        states, violations, ..
    } = explorer;
    if recorder.is_enabled() {
        recorder.gauge("explore.states", states as f64);
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            recorder.gauge("explore.states_per_sec", states as f64 / elapsed);
        }
    }
    Exploration { states, violations }
}

struct Explorer<'r> {
    /// States (machine × counter) already fully explored (and, for clean
    /// targets, thereby proven to quiesce with enough sessions on every
    /// continuation).
    memo: HashSet<u64>,
    /// States on the current DFS path, for lasso detection.
    on_path: HashSet<u64>,
    /// First witness per lint code.
    violations: Vec<FoundViolation>,
    states: u64,
    current_root: usize,
    s: u64,
    max_depth: usize,
    recorder: &'r mut dyn Recorder,
}

impl Explorer<'_> {
    fn key(machine: &AnyMachine, counter: &SessionCounter) -> u64 {
        let mut hasher = DefaultHasher::new();
        machine.state_hash().hash(&mut hasher);
        counter.hash(&mut hasher);
        hasher.finish()
    }

    fn record(&mut self, code: LintCode, message: String, path: &[usize]) {
        if self.violations.iter().any(|v| v.code == code) {
            return;
        }
        self.violations.push(FoundViolation {
            code,
            message,
            path: path.to_vec(),
            root: self.current_root,
        });
    }

    fn dfs(&mut self, machine: AnyMachine, counter: SessionCounter, path: &mut Vec<usize>) {
        if machine.is_quiescent() {
            if counter.sessions() < self.s {
                let message = format!(
                    "admissible schedule reaches quiescence with {} of {} required sessions",
                    counter.sessions(),
                    self.s
                );
                self.record(LintCode::SessionDeficit, message, path);
            }
            return;
        }
        let key = Explorer::key(&machine, &counter);
        if self.on_path.contains(&key) {
            self.record(
                LintCode::NonTermination,
                "admissible schedule loops without reaching quiescence (lasso)".to_string(),
                path,
            );
            return;
        }
        if self.memo.contains(&key) {
            self.recorder.counter("explore.memo_hits", 1);
            return;
        }
        self.recorder.counter("explore.memo_misses", 1);
        if path.len() >= self.max_depth {
            self.record(
                LintCode::NonTermination,
                format!(
                    "no quiescence within the depth budget of {} events",
                    self.max_depth
                ),
                path,
            );
            return;
        }
        self.states += 1;
        self.on_path.insert(key);
        self.expand(&machine, &counter, path);
        self.on_path.remove(&key);
        self.memo.insert(key);
    }

    fn expand(&mut self, machine: &AnyMachine, counter: &SessionCounter, path: &mut Vec<usize>) {
        let choices = machine.choice_count();
        debug_assert!(choices > 0, "non-quiescent machine must have events");
        if self.recorder.is_enabled() {
            self.recorder
                .observe("explore.frontier_depth", path.len() as f64);
        }
        for choice in 0..choices {
            path.push(choice);
            let mut next = machine.clone();
            let info = next.apply(choice, None);
            let mut next_counter = counter.clone();
            next_counter.observe(&info);
            match Explorer::check_step(&info, &next, &next_counter) {
                Some((code, message)) => self.record(code, message, path),
                None => self.dfs(next, next_counter, path),
            }
            path.pop();
        }
    }

    /// Step-level rules: `SA002`, `SA003`, `SA004` (un-idle).
    fn check_step(
        info: &StepInfo,
        machine: &AnyMachine,
        counter: &SessionCounter,
    ) -> Option<(LintCode, String)> {
        if let Some(var) = info.b_violation {
            return Some((
                LintCode::BBoundViolation,
                format!(
                    "variable {var} accessed by more than b distinct processes (process {} was one too many)",
                    info.process
                ),
            ));
        }
        if info.is_process_step && info.was_idle && !info.idle_after {
            return Some((
                LintCode::InadmissibleStep,
                format!(
                    "process {} un-idled: idle states must be closed under steps",
                    info.process
                ),
            ));
        }
        if let Some(claimed) = machine.claimed_sessions_max() {
            if claimed > counter.sessions() {
                return Some((
                    LintCode::StaleEvidence,
                    format!(
                        "a process claims {claimed} sessions but only {} actually happened",
                        counter.sessions()
                    ),
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_types::{PortId, ProcessId, Time};

    fn port_step(p: usize, port: usize, idle_after: bool) -> StepInfo {
        StepInfo {
            time: Time::ZERO,
            process: ProcessId::new(p),
            port: Some(PortId::new(port)),
            was_idle: false,
            idle_after,
            is_process_step: true,
            b_violation: None,
        }
    }

    #[test]
    fn counter_counts_simple_sessions() {
        let mut counter = SessionCounter::new(2, 10);
        counter.observe(&port_step(0, 0, false));
        assert_eq!(counter.sessions(), 0);
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 1, "both ports covered closes a session");
        counter.observe(&port_step(0, 0, false));
        counter.observe(&port_step(0, 0, false));
        assert_eq!(counter.sessions(), 1, "one port alone cannot close another");
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 2);
    }

    #[test]
    fn counter_idling_step_counts_but_later_steps_do_not() {
        let mut counter = SessionCounter::new(2, 10);
        // p0's idling step still covers port 0…
        counter.observe(&port_step(0, 0, true));
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 1);
        // …but its steps after idling never cover again.
        counter.observe(&port_step(0, 0, true));
        counter.observe(&port_step(1, 1, false));
        assert_eq!(counter.sessions(), 1);
    }

    #[test]
    fn counter_ignores_deliveries() {
        let mut counter = SessionCounter::new(1, 10);
        counter.observe(&StepInfo {
            time: Time::ZERO,
            process: ProcessId::new(0),
            port: None,
            was_idle: false,
            idle_after: false,
            is_process_step: false,
            b_violation: None,
        });
        assert_eq!(counter.sessions(), 0);
    }

    #[test]
    fn counter_saturates_at_s() {
        let mut counter = SessionCounter::new(1, 2);
        for _ in 0..5 {
            counter.observe(&port_step(0, 0, false));
        }
        assert_eq!(counter.sessions(), 2);
    }
}
