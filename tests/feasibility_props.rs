//! Property tests for the `SA006 infeasible-timing` boundary: the gate
//! fires *exactly* on empty windows — an inverted step window
//! (`c2 < c1`), an inverted delay window (`d2 < d1`), a negative delay
//! floor, or a zero sporadic separation — and never on width-zero but
//! valid windows (`c1 = c2`, `d1 = d2`). Both front ends share the
//! check, so the same properties are asserted through the analyzer's
//! `check_timing`/`require_feasible` pair and through
//! `session_net::RealConfig::validate`, the real-clock path.

use proptest::prelude::*;
use session_analyzer::{check_timing, require_feasible, TimingParams};
use session_net::RealConfig;
use session_types::{Dur, SessionSpec, TimingModel};

fn params(model: TimingModel, c1: i128, c2: i128, d1: i128, d2: i128) -> TimingParams {
    TimingParams {
        model,
        c1: Dur::from_int(c1),
        c2: Dur::from_int(c2),
        d1: Dur::from_int(d1),
        d2: Dur::from_int(d2),
    }
}

/// The number of violations the spec predicts for these parameters:
/// one per empty window. This re-derives the documented conditions
/// independently of the implementation's control flow.
fn expected_violations(model: TimingModel, c1: i128, c2: i128, d1: i128, d2: i128) -> usize {
    let mut count = usize::from(d1 < 0) + usize::from(d2 < d1);
    if model == TimingModel::Sporadic {
        count += usize::from(c1 <= 0);
    } else {
        count += usize::from(c1 <= 0) + usize::from(c2 < c1);
    }
    count
}

fn any_model() -> impl Strategy<Value = TimingModel> {
    (0usize..TimingModel::ALL.len()).prop_map(|i| TimingModel::ALL[i])
}

proptest! {
    /// Over the whole parameter cube, including inverted and negative
    /// windows: `check_timing` reports exactly one `SA006` per empty
    /// window, and `require_feasible` errs exactly when any exists.
    #[test]
    fn sa006_fires_exactly_on_empty_windows(
        model in any_model(),
        c1 in -3i128..6,
        c2 in -3i128..6,
        d1 in -3i128..6,
        d2 in -3i128..6,
    ) {
        let p = params(model, c1, c2, d1, d2);
        let findings = check_timing(&p);
        prop_assert_eq!(
            findings.len(),
            expected_violations(model, c1, c2, d1, d2),
            "model {} c1={} c2={} d1={} d2={} got {:?}",
            model, c1, c2, d1, d2, findings
        );
        for finding in &findings {
            prop_assert_eq!(finding.code.code(), "SA006");
        }
        let gate = require_feasible(&p);
        prop_assert_eq!(gate.is_ok(), findings.is_empty());
        if let Err(err) = gate {
            prop_assert!(err.to_string().contains("SA006"), "{}", err);
        }
    }

    /// Width-zero windows are still windows: `c1 = c2` and `d1 = d2`
    /// admit exactly one gap and one delay, which a real pacer can
    /// realize — never flagged, for any model.
    #[test]
    fn width_zero_windows_are_feasible(
        model in any_model(),
        c in 1i128..8,
        d in 0i128..8,
    ) {
        let p = params(model, c, c, d, d);
        prop_assert!(check_timing(&p).is_empty(), "{:?}", check_timing(&p));
        prop_assert!(require_feasible(&p).is_ok());
    }

    /// The real-clock front end agrees with the analyzer gate verdict:
    /// `RealConfig::validate` accepts exactly the parameter points
    /// `check_timing` clears (holding the realization knobs valid), and
    /// its rejection carries the `SA006` code.
    #[test]
    fn real_config_validate_matches_the_shared_gate(
        model in any_model(),
        c1 in -2i128..5,
        c2 in -2i128..5,
        d1 in -2i128..5,
        d2 in -2i128..5,
    ) {
        let spec = SessionSpec::new(2, 2, 2).expect("tiny spec");
        let mut config = RealConfig::new(model, spec);
        config.c1 = Dur::from_int(c1);
        config.c2 = Dur::from_int(c2);
        config.d1 = Dur::from_int(d1);
        config.d2 = Dur::from_int(d2);
        let feasible = expected_violations(model, c1, c2, d1, d2) == 0;
        match config.validate() {
            Ok(()) => prop_assert!(feasible, "validate accepted an infeasible window"),
            Err(err) => {
                prop_assert!(!feasible, "validate rejected a feasible window: {}", err);
                prop_assert!(err.to_string().contains("SA006"), "{}", err);
            }
        }
    }
}
