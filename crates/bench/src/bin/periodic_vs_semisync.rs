//! FIG-C: periodic vs semi-synchronous efficiency.
//!
//! §1: "the periodic model is more efficient than the semi-synchronous
//! system when c_max = c2, 2c1 < c2 and n is constant relative to s."
//! Sweep `c2` with both systems driven at actual speed `c2`.
//!
//! ```text
//! cargo run -p session-bench --bin periodic_vs_semisync
//! cargo run -p session-bench --bin periodic_vs_semisync -- --json
//! ```

use session_bench::format::{section, Row};
use session_bench::json_report::{json_flag, JsonReport};
use session_bench::sweeps::periodic_vs_semisync;
use session_types::{Dur, SessionSpec};

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_periodic_vs_semisync.json");
    println!("# FIG-C — Periodic vs semi-synchronous running time\n");
    let c2_values = [2, 4, 8, 16, 32];
    let headers = [
        "c2",
        "periodic A(p) time",
        "semi-sync time",
        "periodic bound",
        "semi-sync bound",
        "winner",
    ];
    let mut report = JsonReport::new("FIG-C — Periodic vs semi-synchronous running time");
    for (s, n) in [(4u64, 4usize), (8, 4), (4, 16)] {
        let spec = SessionSpec::new(s, n, 2).expect("valid spec");
        match periodic_vs_semisync(&spec, Dur::from_int(1), &c2_values) {
            Ok(points) => {
                let rows: Vec<Row> = points
                    .iter()
                    .map(|p| {
                        Row::new([
                            p.c2.to_string(),
                            p.periodic_time.to_string(),
                            p.semisync_time.to_string(),
                            p.periodic_bound.to_string(),
                            p.semisync_bound.to_string(),
                            if p.periodic_time < p.semisync_time {
                                "periodic".to_owned()
                            } else {
                                "semi-sync".to_owned()
                            },
                        ])
                    })
                    .collect();
                let title = format!("s = {s}, n = {n}, b = 2, c1 = 1, c_max = c2");
                report.section(&title, &headers, &rows);
                print!("{}", section(&title, &headers, &rows));
            }
            Err(err) => {
                eprintln!("dominance sweep failed for s={s}, n={n}: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
