//! Emits a digit-bearing metric the old `serve\.[a-z_]+` grep silently
//! truncated to the registered `serve.sessions_shed` — the exact hole
//! this check closes.

pub fn report(rec: &mut dyn FnMut(&str, u64)) {
    rec("serve.sessions_shed", 1);
    rec("serve.sessions_shed2", 1);
}
