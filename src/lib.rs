//! # session-problem
//!
//! A comprehensive Rust reproduction of *"The Impact of Time on the Session
//! Problem"* (Injong Rhee & Jennifer L. Welch, PODC 1992).
//!
//! The `(s, n)`-session problem is an abstraction of the synchronization
//! needed by many distributed algorithms: guarantee `s` disjoint *sessions*
//! — minimal computation fragments in which each of `n` distinguished port
//! processes takes a port step — and then have every port process enter an
//! idle state. The paper charts how the time complexity of this problem
//! changes across five timing models (synchronous, periodic,
//! semi-synchronous, sporadic, asynchronous) in two communication
//! substrates (`b`-bounded shared memory and broadcast message passing),
//! summarized by its Table 1.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `session-types` | exact rational [`types::Time`], identifiers, [`types::KnownBounds`], [`types::SessionSpec`] |
//! | [`sim`] | `session-sim` | event queue, traces, step schedules, delay policies |
//! | [`smm`] | `session-smm` | `b`-bounded shared variables, tree broadcast network |
//! | [`mpm`] | `session-mpm` | broadcast network with bounded delays |
//! | [`core`] | `session-core` | the ten session algorithms, verification, Table 1 bounds |
//! | [`obs`] | `session-obs` | instrumentation recorders, Perfetto / JSONL trace export |
//! | [`adversary`] | `session-adversary` | executable lower-bound constructions |
//! | [`rt`] | `session-rt` | real-time task scheduling substrate (§1 motivation) |
//! | [`analyzer`] | `session-analyzer` | exhaustive small-scope model checker with `SA`-coded lints |
//! | [`net`] | `session-net` | real-clock multi-threaded runtime with simulator-conformance harness |
//! | [`pacing`] | `session-pacing` | transport-agnostic per-model gap rules and nominal-time pacing |
//! | [`serve`] | `session-serve` | sharded session service multiplexing ≥100k concurrent instances |
//!
//! # Quickstart
//!
//! ```
//! use session_problem::core::report::{run_mp, MpConfig};
//! use session_problem::sim::{ConstantDelay, FixedPeriods, RunLimits};
//! use session_problem::types::{Dur, KnownBounds, SessionSpec, TimingModel};
//!
//! # fn main() -> Result<(), session_problem::types::Error> {
//! // Solve the (5, 4)-session problem in the periodic message-passing
//! // model: processes step at constant but unknown rates.
//! let spec = SessionSpec::new(5, 4, 2)?;
//! let bounds = KnownBounds::periodic(Dur::from_int(8))?;
//! let mut schedule = FixedPeriods::new(
//!     [2, 3, 5, 7].map(Dur::from_int).to_vec(),
//! )?;
//! let mut delays = ConstantDelay::new(Dur::from_int(8))?;
//! let report = run_mp(
//!     MpConfig { model: TimingModel::Periodic, spec, bounds },
//!     &mut schedule,
//!     &mut delays,
//!     RunLimits::default(),
//! )?;
//! assert!(report.solves(&spec));
//! println!("{} sessions by t = {}", report.sessions,
//!          report.running_time.unwrap());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment inventory and reproduction results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod cli;
pub mod kv;
pub mod run_real;
pub mod serve_cmd;
pub mod stats;
pub mod trace_cmd;

pub use session_adversary as adversary;
pub use session_analyzer as analyzer;
pub use session_core as core;
pub use session_mpm as mpm;
pub use session_net as net;
pub use session_obs as obs;
pub use session_pacing as pacing;
pub use session_rt as rt;
pub use session_serve as serve;
pub use session_sim as sim;
pub use session_smm as smm;
pub use session_types as types;
