//! The aggregating in-memory backend.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::json::JsonWriter;
use crate::recorder::Recorder;

/// Number of histogram buckets: bucket `i < 32` counts samples with
/// `value <= 2^i` (bucket 0 additionally absorbs everything `<= 1`,
/// including non-positive samples); bucket 32 is the overflow bucket.
pub(crate) const BUCKETS: usize = 33;

/// A fixed-bucket power-of-two histogram.
///
/// Buckets are fixed so recording is allocation-free and two histograms
/// of the same metric are always mergeable. Quantiles are approximate
/// (resolved to the bucket's upper bound); `min`, `max`, `sum` and
/// `count` are exact.
///
/// # Examples
///
/// ```
/// use session_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), Some(1.0));
/// assert_eq!(h.max(), Some(100.0));
/// assert_eq!(h.mean(), Some(26.5));
/// // p50 resolves to the upper bound of the bucket holding the median.
/// assert_eq!(h.quantile(0.5), Some(2.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn bucket_of(value: f64) -> usize {
        if value <= 1.0 || value.is_nan() {
            return 0;
        }
        let mut bound = 1.0f64;
        for i in 0..BUCKETS - 1 {
            if value <= bound {
                return i;
            }
            bound *= 2.0;
        }
        BUCKETS - 1
    }

    /// The inclusive upper bound of bucket `i` (`None` for the overflow
    /// bucket).
    fn bucket_bound(i: usize) -> Option<f64> {
        (i < BUCKETS - 1).then(|| 2.0f64.powi(i as i32))
    }

    /// Rebuilds a histogram from pre-aggregated parts (the lock-free
    /// [`crate::metrics::AtomicHistogram`] snapshots through this).
    pub(crate) fn from_parts(
        counts: [u64; BUCKETS],
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Histogram {
        Histogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Folds every sample of `other` into `self`.
    ///
    /// The fixed bucket layout makes this exact at bucket resolution:
    /// `count`, `sum`, `min`, `max` and every bucket count add up as if
    /// all samples had been recorded into one histogram.
    ///
    /// # Examples
    ///
    /// ```
    /// use session_obs::Histogram;
    ///
    /// let mut a = Histogram::new();
    /// a.record(1.0);
    /// let mut b = Histogram::new();
    /// b.record(100.0);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.max(), Some(100.0));
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The mean sample, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The approximate `q`-quantile (`0 <= q <= 1`): the upper bound of
    /// the first bucket at which the cumulative count reaches `q·count`,
    /// clamped to the exact `max` for the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(Histogram::bucket_bound(i).map_or(self.max, |b| b.min(self.max)));
            }
        }
        Some(self.max)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "count=0".to_owned();
        }
        format!(
            "count={} min={} mean={:.2} p50≈{} p95≈{} max={}",
            self.count,
            self.min,
            self.sum / self.count as f64,
            self.quantile(0.5).unwrap_or(self.max),
            self.quantile(0.95).unwrap_or(self.max),
            self.max
        )
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("count", self.count);
        w.field_f64("sum", self.sum);
        if self.count > 0 {
            w.field_f64("min", self.min);
            w.field_f64("max", self.max);
            w.field_f64("p50", self.quantile(0.5).unwrap_or(self.max));
            w.field_f64("p95", self.quantile(0.95).unwrap_or(self.max));
        }
        w.end_object();
    }
}

/// A point-in-time copy of everything an [`InMemoryRecorder`] aggregated.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// The value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of the named gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Folds a pre-aggregated histogram into the named slot (creating it
    /// if absent). This is the snapshot-side twin of
    /// [`crate::Recorder::merge_histogram`].
    pub fn merge_histogram(&mut self, name: &'static str, hist: &Histogram) {
        self.histograms.entry(name).or_default().merge(hist);
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as the markdown fragment used by
    /// `session-cli stats`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("| counter | value |\n|---|---|\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "| {name} | {value} |");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n| gauge | value |\n|---|---|\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "| {name} | {value} |");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\n| histogram | summary |\n|---|---|\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(out, "| {name} | {} |", h.summary());
            }
        }
        out
    }

    /// Serializes the snapshot as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.field_u64(name, *value);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, value) in &self.gauges {
            w.field_f64(name, *value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            h.write_json(w);
        }
        w.end_object();
        w.end_object();
    }
}

/// The aggregating backend: counters, gauges and histograms accumulate in
/// `BTreeMap`s; span timings are measured with wall-clock [`Instant`]s and
/// recorded as microsecond samples in a histogram per span name.
///
/// # Examples
///
/// ```
/// use session_obs::{InMemoryRecorder, Recorder};
///
/// let mut rec = InMemoryRecorder::new();
/// rec.counter("mp.steps", 10);
/// rec.gauge("run.time", 42.0);
/// let snap = rec.snapshot();
/// assert_eq!(snap.counter("mp.steps"), 10);
/// assert_eq!(snap.gauge("run.time"), Some(42.0));
/// ```
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    metrics: MetricsSnapshot,
    span_stack: Vec<(&'static str, Instant)>,
}

impl InMemoryRecorder {
    /// An empty recorder.
    pub fn new() -> InMemoryRecorder {
        InMemoryRecorder::default()
    }

    /// Copies the aggregated metrics out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.clone()
    }

    /// Consumes the recorder, returning the aggregated metrics.
    pub fn into_snapshot(self) -> MetricsSnapshot {
        self.metrics
    }
}

impl Recorder for InMemoryRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.metrics.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.metrics.gauges.insert(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.metrics
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    fn span_start(&mut self, name: &'static str) {
        self.span_stack.push((name, Instant::now()));
    }

    fn span_end(&mut self) {
        if let Some((name, started)) = self.span_stack.pop() {
            let micros = started.elapsed().as_secs_f64() * 1e6;
            self.observe(name, micros);
        }
    }

    fn merge_histogram(&mut self, name: &'static str, hist: &Histogram) {
        self.metrics.merge_histogram(name, hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut rec = InMemoryRecorder::new();
        rec.counter("a", 2);
        rec.counter("a", 3);
        rec.counter("b", 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut rec = InMemoryRecorder::new();
        rec.gauge("g", 1.0);
        rec.gauge("g", 7.5);
        assert_eq!(rec.snapshot().gauge("g"), Some(7.5));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100.0));
        // p50 lands in the bucket (32, 64]; its bound clamps to max.
        assert_eq!(h.quantile(0.5), Some(64.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn histogram_handles_edge_values() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN); // dropped
        h.record(1e30); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.max(), Some(1e30));
        assert_eq!(h.quantile(1.0), Some(1e30));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), "count=0");
    }

    #[test]
    fn spans_record_microsecond_samples() {
        let mut rec = InMemoryRecorder::new();
        rec.span_start("work");
        rec.span_end();
        let snap = rec.snapshot();
        let h = snap.histogram("work").expect("span recorded");
        assert_eq!(h.count(), 1);
        assert!(h.min().unwrap() >= 0.0);
    }

    #[test]
    fn unbalanced_span_end_is_ignored() {
        let mut rec = InMemoryRecorder::new();
        rec.span_end();
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn merged_histograms_match_a_single_recording() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=50 {
            all.record(f64::from(v));
            a.record(f64::from(v));
        }
        for v in 51..=100 {
            all.record(f64::from(v));
            b.record(f64::from(v));
        }
        a.merge(&b);
        assert_eq!(a, all);
        a.merge(&Histogram::new());
        assert_eq!(a, all, "merging an empty histogram is a no-op");
    }

    #[test]
    fn recorder_ingests_preaggregated_histograms() {
        let mut pacer = Histogram::new();
        pacer.record(2.0);
        pacer.record(8.0);
        let mut rec = InMemoryRecorder::new();
        rec.observe("lag", 1.0);
        rec.merge_histogram("lag", &pacer);
        rec.merge_histogram("fresh", &pacer);
        let snap = rec.snapshot();
        assert_eq!(snap.histogram("lag").unwrap().count(), 3);
        assert_eq!(snap.histogram("fresh").unwrap().count(), 2);
    }

    #[test]
    fn markdown_and_json_render_all_sections() {
        let mut rec = InMemoryRecorder::new();
        rec.counter("c", 1);
        rec.gauge("g", 2.0);
        rec.observe("h", 3.0);
        let snap = rec.snapshot();
        let md = snap.to_markdown();
        assert!(md.contains("| c | 1 |"), "{md}");
        assert!(md.contains("| g | 2 |"), "{md}");
        assert!(md.contains("| h | count=1"), "{md}");
        let json = snap.to_json();
        assert!(json.contains("\"counters\":{\"c\":1}"), "{json}");
        assert!(json.contains("\"gauges\":{\"g\":2"), "{json}");
        assert!(
            json.contains("\"histograms\":{\"h\":{\"count\":1"),
            "{json}"
        );
    }
}
