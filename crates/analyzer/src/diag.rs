//! Lint codes, severities, per-rule configuration and report rendering.
//!
//! Every finding the checker can produce carries one of twelve stable
//! codes (`SA001`–`SA012`). Codes never change meaning; new rules get new
//! codes.
//! Reports render as GitHub-flavored markdown tables (the same dialect as
//! `session-bench`'s experiment reports) or as CSV.
//!
//! Each variant's doc comment cites the paper section the rule enforces;
//! `scripts/static-analysis.sh` fails the build when a variant is added
//! without a code-string mapping or a `§` paper reference.

use std::fmt;

/// The stable lint codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `SA001 session-deficit`: an admissible schedule reaches quiescence
    /// with fewer than `s` sessions (the liveness half of the s-session
    /// problem, §2).
    SessionDeficit,
    /// `SA002 b-bound-violation`: more than `b` distinct processes access
    /// one shared variable (the b-bounded shared-memory model, §2).
    BBoundViolation,
    /// `SA003 stale-evidence`: a process's claimed session count exceeds
    /// the number of sessions that actually happened — phantom
    /// certification from stale freshness evidence (the sporadic
    /// message-passing algorithm's counting argument, §6.3).
    StaleEvidence,
    /// `SA004 inadmissible-step`: the execution violates the timing
    /// model's admissibility conditions (§2's definition of admissible
    /// timed computations), un-idles an idle process, or diverges from
    /// the reference engine under replay.
    InadmissibleStep,
    /// `SA005 non-termination`: an admissible schedule loops without ever
    /// reaching quiescence (a lasso) — the algorithm never solves the
    /// problem instance it claims to solve (§2's quiescence requirement).
    NonTermination,
    /// `SA006 infeasible-timing`: an MP configuration's `[c1, c2]` /
    /// `[d1, d2]` parameters (§2's timing bounds) admit no real-clock
    /// pacing — `d2 < d1`, `c2 < c1`, or a zero-width sporadic minimum
    /// separation. Shared by the simulator CLI and the `session-net`
    /// config validation.
    InfeasibleTiming,
    /// `SA007 session-race`: two port steps counted into the same session
    /// whose recorded order contradicts their happens-before order — the
    /// session grouping (§2's sessions of a timed computation) rests on a
    /// timestamp serialization that causality refutes.
    SessionRace,
    /// `SA008 unordered-session-close`: a recorded session boundary is not
    /// dominated by all `n` port clocks — the close is claimed before
    /// every port provably took a covering step inside the window (§2's
    /// session-boundary definition).
    UnorderedSessionClose,
    /// `SA009 model-mismatch`: the recorded step gaps prove the run was
    /// driven by a timing model strictly stronger than the one claimed —
    /// e.g. lockstep-constant gaps under a claimed sporadic config — so
    /// the run exercises the wrong row of the model hierarchy (§3–§6's
    /// per-model bounds).
    ModelMismatch,
    /// `SA010 dead-timing-branch`: a gap/delay menu entry whose guard zone
    /// is empty under the model's `[c1, c2]` / `[d1, d2]` window (§2's
    /// timing bounds) — the symbolic verifier proves the branch can never
    /// fire in any admissible execution, so the scope menu misrepresents
    /// the model.
    DeadTimingBranch,
    /// `SA011 symbolic-bound-exceeded`: the zone graph's worst-case
    /// session-close time, carried as a symbolic expression over
    /// `c1,c2,d1,d2`, exceeds the paper's Table 1 upper-bound row for the
    /// algorithm (§3–§6's per-model upper bounds).
    SymbolicBoundExceeded,
    /// `SA012 symbolic-divergence`: the explicit explorer reaches a
    /// discrete control state the zone abstraction declares unreachable —
    /// a soundness alarm on one of the two engines. The zone walker
    /// explores the convex hull of the explicit engine's timing menus —
    /// both sides enumerate §2's admissible timed computations — so its
    /// reachable set must *cover* the explicit one (the converse need
    /// not hold: hull-interior schedules are admissible for the model but
    /// unrealizable from the finite menu).
    SymbolicDivergence,
}

/// All codes, in code order.
pub const ALL_CODES: [LintCode; 12] = [
    LintCode::SessionDeficit,
    LintCode::BBoundViolation,
    LintCode::StaleEvidence,
    LintCode::InadmissibleStep,
    LintCode::NonTermination,
    LintCode::InfeasibleTiming,
    LintCode::SessionRace,
    LintCode::UnorderedSessionClose,
    LintCode::ModelMismatch,
    LintCode::DeadTimingBranch,
    LintCode::SymbolicBoundExceeded,
    LintCode::SymbolicDivergence,
];

impl LintCode {
    /// The stable `SAxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::SessionDeficit => "SA001",
            LintCode::BBoundViolation => "SA002",
            LintCode::StaleEvidence => "SA003",
            LintCode::InadmissibleStep => "SA004",
            LintCode::NonTermination => "SA005",
            LintCode::InfeasibleTiming => "SA006",
            LintCode::SessionRace => "SA007",
            LintCode::UnorderedSessionClose => "SA008",
            LintCode::ModelMismatch => "SA009",
            LintCode::DeadTimingBranch => "SA010",
            LintCode::SymbolicBoundExceeded => "SA011",
            LintCode::SymbolicDivergence => "SA012",
        }
    }

    /// The short kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::SessionDeficit => "session-deficit",
            LintCode::BBoundViolation => "b-bound-violation",
            LintCode::StaleEvidence => "stale-evidence",
            LintCode::InadmissibleStep => "inadmissible-step",
            LintCode::NonTermination => "non-termination",
            LintCode::InfeasibleTiming => "infeasible-timing",
            LintCode::SessionRace => "session-race",
            LintCode::UnorderedSessionClose => "unordered-session-close",
            LintCode::ModelMismatch => "model-mismatch",
            LintCode::DeadTimingBranch => "dead-timing-branch",
            LintCode::SymbolicBoundExceeded => "symbolic-bound-exceeded",
            LintCode::SymbolicDivergence => "symbolic-divergence",
        }
    }

    /// A one-line description, used by `session-cli analyze --list`. Kept
    /// in sync with the enum by the exhaustive match (adding a variant
    /// without a description is a compile error).
    pub fn describe(self) -> &'static str {
        match self {
            LintCode::SessionDeficit => {
                "an admissible schedule reaches quiescence with fewer than s sessions"
            }
            LintCode::BBoundViolation => {
                "more than b distinct processes access one shared variable"
            }
            LintCode::StaleEvidence => {
                "a claimed session count exceeds the sessions that actually happened"
            }
            LintCode::InadmissibleStep => {
                "an execution violates admissibility, un-idles a process, or diverges under replay"
            }
            LintCode::NonTermination => {
                "an admissible schedule loops forever without reaching quiescence"
            }
            LintCode::InfeasibleTiming => {
                "the [c1,c2]/[d1,d2] timing parameters admit no real-clock pacing"
            }
            LintCode::SessionRace => {
                "steps counted into one session in an order their happens-before relation refutes"
            }
            LintCode::UnorderedSessionClose => {
                "a recorded session close is not dominated by all n port clocks"
            }
            LintCode::ModelMismatch => {
                "recorded gaps prove a strictly stronger timing model than the one claimed"
            }
            LintCode::DeadTimingBranch => {
                "a gap/delay menu entry whose guard zone is empty under the model window"
            }
            LintCode::SymbolicBoundExceeded => {
                "the symbolic worst-case session-close time exceeds the Table 1 bound"
            }
            LintCode::SymbolicDivergence => {
                "the zone abstraction fails to cover the explicit explorer's reachable control states"
            }
        }
    }

    /// The default severity: every rule denies by default — each one
    /// witnesses a violated theorem, not a style preference.
    pub fn default_severity(self) -> Severity {
        Severity::Deny
    }

    /// Parses `"SA001"` or `"session-deficit"` (case-insensitive).
    pub fn parse(text: &str) -> Option<LintCode> {
        let lower = text.to_ascii_lowercase();
        ALL_CODES
            .into_iter()
            .find(|c| c.code().to_ascii_lowercase() == lower || c.name() == lower)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// How a finding is treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed entirely: not reported, does not affect the exit status.
    Allow,
    /// Reported, but does not make the run fail.
    Warn,
    /// Reported and makes the run fail.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Per-rule severity overrides.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    overrides: Vec<(LintCode, Severity)>,
}

impl LintConfig {
    /// The default configuration (every rule at its default severity).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Sets `code` to `severity`, replacing any earlier override.
    pub fn set(&mut self, code: LintCode, severity: Severity) {
        self.overrides.retain(|(c, _)| *c != code);
        self.overrides.push((code, severity));
    }

    /// The effective severity of `code`.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .iter()
            .find(|(c, _)| *c == code)
            .map_or_else(|| code.default_severity(), |&(_, sev)| sev)
    }
}

/// One finding: a rule fired against a target at a scope, with a
/// deterministic reproduction.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: LintCode,
    /// The analysis target (e.g. `"NaivePeriodicSm"`).
    pub target: String,
    /// One-line description of the violation.
    pub message: String,
    /// The scope line (`n`, `s`, `b`, menus) the violation was found at.
    pub scope: String,
    /// Deterministic reproduction: the branch-choice path from the initial
    /// state, so the exact counterexample can be replayed.
    pub repro: String,
    /// The counterexample rendered as a timeline (empty when the rule has
    /// no trace to show).
    pub counterexample: String,
}

/// One analyzed target's exploration summary, as surfaced in the report's
/// header table.
#[derive(Clone, Debug)]
pub struct TargetSummary {
    /// The target's registry name (or `trace:<path>` for trace analyses).
    pub name: String,
    /// States the exploration visited (events ingested, for traces).
    pub states: u64,
    /// Successor choices the reduction layer pruned (0 when reductions
    /// were off).
    pub pruned: u64,
    /// Memo-table hits (revisits of an already-explored state).
    pub memo_hits: u64,
    /// `true` when at least one schedule was cut at the depth budget, so
    /// a clean verdict is partial.
    pub truncated: bool,
    /// How many schedules were cut at the depth budget.
    pub depth_hits: u64,
}

impl TargetSummary {
    /// A summary with only a name and a state count (no reductions, no
    /// truncation) — the common case for trace analyses and tests.
    pub fn new(name: impl Into<String>, states: u64) -> TargetSummary {
        TargetSummary {
            name: name.into(),
            states,
            pruned: 0,
            memo_hits: 0,
            truncated: false,
            depth_hits: 0,
        }
    }
}

/// The outcome of analyzing one or more targets.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Targets analyzed, in order, with each exploration's summary.
    pub targets: Vec<TargetSummary>,
    /// Findings, in discovery order.
    pub findings: Vec<Diagnostic>,
}

impl Report {
    /// Appends another report.
    pub fn merge(&mut self, other: Report) {
        self.targets.extend(other.targets);
        self.findings.extend(other.findings);
    }

    /// Findings at the given severity or above under `config`, counting
    /// only rules that are not allowed.
    pub fn reported<'a>(&'a self, config: &'a LintConfig) -> impl Iterator<Item = &'a Diagnostic> {
        self.findings
            .iter()
            .filter(|d| config.severity(d.code) != Severity::Allow)
    }

    /// Returns `true` if any reported finding is deny-severity.
    pub fn has_denials(&self, config: &LintConfig) -> bool {
        self.findings
            .iter()
            .any(|d| config.severity(d.code) == Severity::Deny)
    }

    /// Returns `true` if any target's exploration was cut at the depth
    /// budget (a clean verdict is then "clean but truncated").
    pub fn truncated(&self) -> bool {
        self.targets.iter().any(|t| t.truncated)
    }

    /// Renders the report as GitHub-flavored markdown (the bench-report
    /// dialect: `## section`, `| a | b |` tables).
    pub fn to_markdown(&self, config: &LintConfig) -> String {
        let mut out = String::from("## Analyzer report\n\n");
        out.push_str(
            "| target | states explored | pruned | memo hits | findings | notes |\n\
             |---|---|---|---|---|---|\n",
        );
        for summary in &self.targets {
            let count = self
                .reported(config)
                .filter(|d| d.target == summary.name)
                .count();
            let notes = if summary.truncated {
                format!("truncated (depth budget hit {}×)", summary.depth_hits)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {count} | {notes} |\n",
                summary.name, summary.states, summary.pruned, summary.memo_hits
            ));
        }
        if self.truncated() {
            let cut: Vec<&str> = self
                .targets
                .iter()
                .filter(|t| t.truncated)
                .map(|t| t.name.as_str())
                .collect();
            out.push_str(&format!(
                "\n**Warn:** exploration truncated at the depth budget for: {} — \
                 clean verdicts cover only the explored prefix.\n",
                cut.join(", ")
            ));
        }
        let reported: Vec<&Diagnostic> = self.reported(config).collect();
        if reported.is_empty() {
            out.push_str("\nNo findings.\n");
            return out;
        }
        out.push_str("\n## Findings\n\n");
        out.push_str("| code | severity | target | message |\n|---|---|---|---|\n");
        for d in &reported {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                d.code,
                config.severity(d.code),
                d.target,
                d.message
            ));
        }
        for d in &reported {
            out.push_str(&format!(
                "\n### {} on {}\n\n{}\n\nScope: {}\n\nRepro (branch choices from the initial state): `{}`\n",
                d.code, d.target, d.message, d.scope, d.repro
            ));
            if !d.counterexample.is_empty() {
                out.push_str(&format!("\n```text\n{}\n```\n", d.counterexample));
            }
        }
        out
    }

    /// Renders the report as CSV: a target-summary section
    /// (`target,states,pruned,memo_hits,truncated,depth_hits`) followed by
    /// a blank line and the findings section
    /// (`code,severity,target,scope,message`).
    pub fn to_csv(&self, config: &LintConfig) -> String {
        let mut out = String::from("target,states,pruned,memo_hits,truncated,depth_hits\n");
        for t in &self.targets {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                csv_escape(&t.name),
                t.states,
                t.pruned,
                t.memo_hits,
                t.truncated,
                t.depth_hits
            ));
        }
        out.push('\n');
        out.push_str("code,severity,target,scope,message\n");
        for d in self.reported(config) {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                d.code.code(),
                config.severity(d.code),
                d.target,
                csv_escape(&d.scope),
                csv_escape(&d.message)
            ));
        }
        out
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_parse() {
        for code in ALL_CODES {
            assert_eq!(LintCode::parse(code.code()), Some(code));
            assert_eq!(LintCode::parse(code.name()), Some(code));
            assert_eq!(LintCode::parse(&code.code().to_lowercase()), Some(code));
        }
        assert_eq!(LintCode::parse("SA999"), None);
    }

    #[test]
    fn codes_are_dense_and_ordered() {
        for (i, code) in ALL_CODES.into_iter().enumerate() {
            assert_eq!(code.code(), format!("SA{:03}", i + 1));
            assert!(!code.describe().is_empty());
        }
    }

    #[test]
    fn config_overrides_win() {
        let mut config = LintConfig::new();
        assert_eq!(config.severity(LintCode::SessionDeficit), Severity::Deny);
        config.set(LintCode::SessionDeficit, Severity::Allow);
        assert_eq!(config.severity(LintCode::SessionDeficit), Severity::Allow);
        config.set(LintCode::SessionDeficit, Severity::Warn);
        assert_eq!(config.severity(LintCode::SessionDeficit), Severity::Warn);
    }

    fn sample_report() -> Report {
        Report {
            targets: vec![TargetSummary::new("T", 42)],
            findings: vec![Diagnostic {
                code: LintCode::SessionDeficit,
                target: "T".to_string(),
                message: "only 1 of 2 sessions".to_string(),
                scope: "n=2 s=2".to_string(),
                repro: "0.1.0".to_string(),
                counterexample: "p0 | x".to_string(),
            }],
        }
    }

    #[test]
    fn allow_suppresses_findings_and_exit() {
        let report = sample_report();
        let mut config = LintConfig::new();
        assert!(report.has_denials(&config));
        config.set(LintCode::SessionDeficit, Severity::Allow);
        assert!(!report.has_denials(&config));
        assert_eq!(report.reported(&config).count(), 0);
        assert!(report.to_markdown(&config).contains("No findings."));
    }

    #[test]
    fn warn_reports_without_denying() {
        let report = sample_report();
        let mut config = LintConfig::new();
        config.set(LintCode::SessionDeficit, Severity::Warn);
        assert!(!report.has_denials(&config));
        assert_eq!(report.reported(&config).count(), 1);
    }

    #[test]
    fn markdown_includes_tables_and_counterexample() {
        let report = sample_report();
        let config = LintConfig::new();
        let md = report.to_markdown(&config);
        assert!(md.contains("| target | states explored | pruned | memo hits | findings | notes |"));
        assert!(md.contains("| T | 42 | 0 | 0 | 1 |  |"));
        assert!(md.contains("| SA001 session-deficit | deny | T | only 1 of 2 sessions |"));
        assert!(md.contains("```text\np0 | x\n```"));
        assert!(md.contains("Repro (branch choices from the initial state): `0.1.0`"));
    }

    #[test]
    fn truncation_is_a_warn_note_in_markdown_and_a_csv_column() {
        let mut report = sample_report();
        report.findings.clear();
        report.targets[0].truncated = true;
        report.targets[0].depth_hits = 7;
        assert!(report.truncated());
        let md = report.to_markdown(&LintConfig::new());
        assert!(md.contains("truncated (depth budget hit 7×)"), "{md}");
        assert!(md.contains("**Warn:** exploration truncated"), "{md}");
        assert!(md.contains("No findings."), "{md}");
        let csv = report.to_csv(&LintConfig::new());
        assert!(csv.contains("T,42,0,0,true,7"), "{csv}");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut report = sample_report();
        report.findings[0].message = "a, \"b\"".to_string();
        let csv = report.to_csv(&LintConfig::new());
        assert!(csv.contains("code,severity,target,scope,message"));
        assert!(csv.contains("SA001,deny,T,n=2 s=2,\"a, \"\"b\"\"\""));
    }
}
