//! Counterexample reconstruction and self-validation.
//!
//! A violation found by [`crate::explore`] is just a path of branch
//! choices. This module replays the path through a clone of the root
//! machine with trace recording on, producing a real
//! [`session_sim::Trace`] that can be rendered with
//! `session_sim::render_timeline` — and then *distrusts the checker
//! itself* twice over:
//!
//! * the rebuilt trace is checked against the timing model with
//!   `session_core::verify::check_admissible`, and its greedy session
//!   count is recomputed with the reference `count_sessions`, confirming
//!   the explorer's incremental counter agreed with it;
//! * for shared-memory machines, the path's step script is fed to the real
//!   [`SmEngine`] via `run_scripted` (which also exercises the
//!   `strict-invariants` debug assertions) and the engine's global state
//!   is compared with the machine's.
//!
//! Any disagreement is reported as `SA004 inadmissible-step`: it means the
//! checker's model of the system drifted from the system itself.

use session_core::verify::{check_admissible, count_sessions};
use session_smm::{PortBinding, SmEngine, SmProcess};
use session_types::{KnownBounds, PortId, ProcessId, Time, VarId};

use crate::explore::AnyMachine;

/// A reconstructed counterexample: the machine after the full path, the
/// rebuilt trace, and the step script (process steps only).
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The machine state after replaying the whole path.
    pub machine: AnyMachine,
    /// The rebuilt trace, identical to what the engine would have
    /// recorded along this schedule.
    pub trace: session_sim::Trace,
    /// The `(time, process)` script of process steps, replayable through
    /// `SmEngine::run_scripted`.
    pub script: Vec<(Time, ProcessId)>,
}

/// Replays `path` through a clone of `root` with trace recording on.
pub fn replay(root: &AnyMachine, path: &[usize]) -> Counterexample {
    let mut machine = root.clone();
    let mut trace = session_sim::Trace::new(num_processes(root));
    let mut script = Vec::new();
    for &choice in path {
        let info = machine.apply(choice, Some(&mut trace));
        if info.is_process_step {
            script.push((info.time, info.process));
        }
    }
    Counterexample {
        machine,
        trace,
        script,
    }
}

fn num_processes(machine: &AnyMachine) -> usize {
    match machine {
        AnyMachine::Sm(m) => m.algos().len(),
        AnyMachine::Mp(m) => m.fingerprints().len(),
    }
}

/// Renders the counterexample as a timeline, capped at `max_lines` lines.
pub fn render(counterexample: &Counterexample, max_lines: usize) -> String {
    session_sim::render_timeline(&counterexample.trace, max_lines)
}

/// Self-checks a counterexample against the reference implementations.
/// Returns the problems found (empty = the counterexample is confirmed).
///
/// * The rebuilt trace must be admissible under `bounds` — otherwise the
///   "counterexample" proves nothing about the algorithm.
/// * The reference greedy counter must agree with the explorer's
///   incremental count (`expected_sessions`, when the violation fired at a
///   quiescent leaf and the full-trace count is meaningful).
/// * A shared-memory path must replay through the real engine to the same
///   global state.
pub fn self_check(
    root: &AnyMachine,
    counterexample: &Counterexample,
    bounds: &KnownBounds,
    expected_sessions: Option<u64>,
) -> Vec<String> {
    let mut problems = Vec::new();
    if let Err(err) = check_admissible(&counterexample.trace, bounds) {
        problems.push(format!("rebuilt trace is not admissible: {err}"));
    }
    if let Some(expected) = expected_sessions {
        let n = match root {
            AnyMachine::Sm(m) => m.n_ports(),
            AnyMachine::Mp(m) => m.fingerprints().len(),
        };
        let counted = match root {
            AnyMachine::Sm(_) => count_sessions(&counterexample.trace, n, |_| None),
            AnyMachine::Mp(_) => count_sessions(&counterexample.trace, n, |p: ProcessId| {
                (p.index() < n).then(|| PortId::new(p.index()))
            }),
        };
        if counted != expected {
            problems.push(format!(
                "reference session counter disagrees: counted {counted}, explorer saw {expected}"
            ));
        }
    }
    if let AnyMachine::Sm(machine) = root {
        if let Err(err) = replay_through_engine(machine, counterexample) {
            problems.push(err);
        }
    }
    problems
}

/// Feeds the counterexample's step script to a freshly built real
/// [`SmEngine`] and compares global states with the machine.
fn replay_through_engine(
    root: &crate::machine::SmMachine,
    counterexample: &Counterexample,
) -> Result<(), String> {
    let AnyMachine::Sm(end) = &counterexample.machine else {
        return Err("shared-memory root replayed to a message-passing machine".to_string());
    };
    let processes: Vec<Box<dyn SmProcess<session_smm::Knowledge>>> = root
        .algos()
        .iter()
        .map(|algo| Box::new((**algo).clone()) as Box<dyn SmProcess<session_smm::Knowledge>>)
        .collect();
    let bindings = (0..root.n_ports())
        .map(|i| PortBinding {
            port: PortId::new(i),
            var: VarId::new(i),
            process: ProcessId::new(i),
        })
        .collect();
    let initial = vec![session_smm::Knowledge::new(); root.memory().len()];
    let mut engine = SmEngine::new(initial, processes, root.b(), bindings)
        .map_err(|err| format!("engine rebuild failed: {err}"))?;
    let outcome = engine
        .run_scripted(&counterexample.script)
        .map_err(|err| format!("engine replay failed: {err}"))?;
    let state = engine.global_state();
    let machine_vars_match = state.vars.len() == end.memory().len()
        && state
            .vars
            .iter()
            .zip(end.memory())
            .all(|(engine_value, machine_value)| engine_value == machine_value.as_ref());
    if !machine_vars_match {
        return Err("engine replay reached different variable values".to_string());
    }
    if state.process_fingerprints != end.fingerprints() {
        return Err("engine replay reached different process states".to_string());
    }
    if outcome.trace.events().len() != counterexample.script.len() {
        return Err("engine replay recorded a different number of steps".to_string());
    }
    Ok(())
}

/// Renders a repro string: the root index and the branch-choice path,
/// enough to replay the counterexample deterministically.
pub fn repro_string(root_index: usize, path: &[usize]) -> String {
    let choices: Vec<String> = path.iter().map(ToString::to_string).collect();
    format!("root={} path={}", root_index, choices.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{sm_system_algos, GapMode, SmAlgo, SmMachine};
    use session_core::algorithms::SyncSmPort;
    use session_types::Dur;

    fn sync_root(n: usize, s: u64) -> AnyMachine {
        let ports: Vec<SmAlgo> = (0..n)
            .map(|i| SmAlgo::Sync(SyncSmPort::new(VarId::new(i), s)))
            .collect();
        let (algos, num_vars) = sm_system_algos(ports, n, 2);
        let k = algos.len();
        let gap = Dur::from_int(1);
        AnyMachine::Sm(SmMachine::new(
            algos,
            num_vars,
            2,
            n,
            GapMode::PerStep(vec![gap]),
            vec![Time::ZERO + gap; k],
        ))
    }

    #[test]
    fn replay_rebuilds_trace_and_script() {
        let root = sync_root(2, 1);
        // Round-robin everything once: choices 0, 0, 0 step p0, p1, relay.
        let counterexample = replay(&root, &[0, 0, 0]);
        assert_eq!(counterexample.trace.events().len(), 3);
        assert_eq!(counterexample.script.len(), 3);
        assert!(!render(&counterexample, 10).is_empty());
    }

    #[test]
    fn self_check_confirms_a_clean_replay() {
        let root = sync_root(2, 1);
        let counterexample = replay(&root, &[0, 0]);
        let bounds =
            KnownBounds::synchronous(Dur::from_int(1), Dur::from_int(1)).expect("valid bounds");
        let problems = self_check(&root, &counterexample, &bounds, Some(1));
        assert!(problems.is_empty(), "problems: {problems:?}");
    }

    #[test]
    fn self_check_catches_wrong_session_expectation() {
        let root = sync_root(2, 1);
        let counterexample = replay(&root, &[0, 0]);
        let bounds =
            KnownBounds::synchronous(Dur::from_int(1), Dur::from_int(1)).expect("valid bounds");
        let problems = self_check(&root, &counterexample, &bounds, Some(7));
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("disagrees"));
    }

    #[test]
    fn repro_string_is_deterministic() {
        assert_eq!(repro_string(2, &[0, 3, 1]), "root=2 path=0.3.1");
        assert_eq!(repro_string(0, &[]), "root=0 path=");
    }
}
