//! Multi-core exploration: the hash-partitioned ownership explorer,
//! whose findings *and counters* are bit-identical to the serial DFS in
//! [`crate::explore`].
//!
//! # Architecture (DESIGN.md §13)
//!
//! Exploration runs in phases, all orchestrated here and implemented in
//! [`crate::partition`]:
//!
//! * **Phase A — parallel ownership walk.** Each worker *owns* a shard
//!   of the 64-bit fingerprint space ([`crate::partition::owner_of`]).
//!   Expanding a state routes each successor to its owner over bounded
//!   SPSC ring queues; the owner's memo is a thread-local hash set, so
//!   there are no memo locks and — by first-arrival acceptance — no
//!   duplicate expansions. Every expansion appends an annotated edge
//!   record to a per-worker log. Quiescence is detected by a Safra-style
//!   termination token circulating the worker ring.
//! * **Serial replay.** After the join, the serial DFS is re-run over
//!   the *logged key-graph* (no machine clones, no step application):
//!   the exact budget-aware memo, lasso check, depth accounting and POR
//!   ample/proviso logic of [`crate::explore`], in the serial visit
//!   order. Every reported number — `states`, `pruned`, `memo_hits`,
//!   `truncated`, the code set — is therefore *the serial explorer's
//!   number*, at every thread count, for every reduction combo.
//! * **Phase B — serial witness re-derivation.** The replayed code set
//!   is handed to [`crate::explore::explore_witnesses`], which re-runs
//!   the serial DFS in canonical order and stops once every code has a
//!   witness — same codes, same roots, same paths as `threads = 1`.
//!   Clean targets skip Phase B entirely.
//!
//! # POR across owners
//!
//! Phase A walks ample-reduced menus (a pure function of the state), so
//! reachability matches any thread count. The cycle proviso, however,
//! depends on the DFS path; it is evaluated only during replay. When the
//! proviso demands a full menu at a state whose log holds only the ample
//! slice, the state is flagged and Phase A re-runs with it forced to
//! full expansion — a monotone fixpoint that converges deterministically
//! (see DESIGN.md §13). Acyclic reduced spaces finish in one round.
//!
//! # Depth cuts
//!
//! The serial `truncated` flag is visit-order-dependent, so a space the
//! serial DFS truncates has no order-independent parallel rendering.
//! The ownership walk detects the first over-budget arrival, aborts the
//! round, and falls back to the serial explorer — verdict fidelity over
//! parallelism for depth-limited scopes, which were never parallel wins.

use std::time::{Duration, Instant};

use session_obs::Recorder;

use crate::diag::LintCode;
use crate::explore::{
    check_step, explore_witnesses, AnyMachine, Exploration, ExploreOpts, ReductionStats,
    SessionCounter,
};
use crate::partition;
use crate::profile::{ExploreProfile, FlightOpts};

/// Progress updates are batched: workers publish to the shared
/// [`session_obs::ProgressBoard`] once per this many expanded states,
/// amortizing the atomic traffic to nothing.
pub(crate) const PROGRESS_BATCH: u64 = 256;

pub(crate) fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A successor edge's result: pruned at a step-level lint, or an open
/// child state (with its advanced counter when the step was visible to
/// the session counter).
pub(crate) enum Child {
    Pruned(LintCode),
    Open(AnyMachine, Option<SessionCounter>),
}

pub(crate) fn make_child(
    machine: &AnyMachine,
    counter: &SessionCounter,
    choice: usize,
) -> Child {
    let mut next = machine.clone();
    let info = next.apply(choice, None);
    let next_counter = info.port.is_some().then(|| {
        let mut cloned = counter.clone();
        cloned.observe(&info);
        cloned
    });
    let effective = next_counter.as_ref().unwrap_or(counter);
    match check_step(&info, &next, effective) {
        Some((code, _message)) => Child::Pruned(code),
        None => Child::Open(next, next_counter),
    }
}

/// The ownership-partitioned parallel explorer behind
/// `ExploreOpts { threads > 1 }` — see the module docs for the phase
/// split. Every field of the returned [`Exploration`] (codes, witness
/// roots, witness paths, `states`, `truncated`, `depth_hits`, reduction
/// stats) is bit-identical to [`crate::explore::explore_recorded_opts`]
/// at `threads = 1`.
///
/// The flight recorder rides along: when `flight.profile` is set, the
/// per-worker routing [`ExploreProfile`] is returned alongside the
/// (unchanged) exploration; when `flight.progress` carries a board,
/// workers publish batched progress to it. Neither influences a single
/// exploration decision.
#[allow(clippy::cast_precision_loss)]
pub(crate) fn explore_parallel_flight(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    recorder: &mut dyn Recorder,
    flight: &FlightOpts,
) -> (Exploration, Option<ExploreProfile>) {
    debug_assert!(opts.threads > 1);
    // wslint: allow(ws001): flight profiler measures real elapsed time by design
    let epoch = Instant::now();
    let progress = flight.progress.as_deref();

    let Some(mut run) = partition::explore_partitioned(
        roots,
        n,
        s,
        max_depth,
        opts,
        flight.profile,
        progress,
        epoch,
    ) else {
        // A depth cut fired: the space is truncated at this budget, and
        // the serial `truncated` verdict is visit-order-dependent. Run
        // the serial explorer for exact fidelity (DESIGN.md §13).
        let serial = ExploreOpts { threads: 1, ..opts };
        let (exploration, profile) =
            crate::explore::explore_flight(roots, n, s, max_depth, serial, recorder, flight);
        let profile = profile.map(|mut profile| {
            profile.threads = opts.threads;
            profile.fallback = true;
            profile
        });
        return (exploration, profile);
    };
    let pre_b_ns = nanos(epoch.elapsed());
    let phase_a_ns = pre_b_ns.saturating_sub(run.replay_ns);

    // Phase B: canonical witnesses, serially — free when nothing fired.
    // wslint: allow(ws001): flight profiler measures real elapsed time by design
    let phase_b_started = Instant::now();
    let violations = explore_witnesses(roots, n, s, max_depth, opts, &run.codes);
    let phase_b_ns = nanos(phase_b_started.elapsed());
    debug_assert_eq!(
        violations.len(),
        run.codes.len(),
        "witness re-derivation must find every code Phase A found"
    );

    if recorder.is_enabled() {
        recorder.counter("explore.memo_hits", run.memo_hits);
        recorder.counter("explore.memo_misses", run.memo_misses);
        recorder.counter("explore.pruned_choices", run.pruned);
        recorder.counter("explore.duplicate_expansions", run.duplicates);
        recorder.counter("explore.route_send", run.route_send);
        recorder.counter("explore.route_recv", run.route_recv);
        recorder.counter("explore.local_msgs", run.local_msgs);
        recorder.counter("explore.queue_full_spins", run.queue_full_spins);
        recorder.counter("explore.rounds", run.rounds);
        recorder.gauge("explore.states", run.states as f64);
        recorder.gauge("explore.memo_entries", run.unique_states as f64);
        recorder.gauge("explore.threads", opts.threads as f64);
        let routed = run.local_msgs + run.route_send;
        if routed > 0 {
            recorder.gauge(
                "explore.owner_local_ratio",
                run.local_msgs as f64 / routed as f64,
            );
        }
        let elapsed = epoch.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            recorder.gauge("explore.states_per_sec", run.states as f64 / elapsed);
        }
        if let Some(workers) = &run.workers {
            let expand: u64 = workers.iter().map(|w| w.expand_ns).sum();
            let idle: u64 = workers.iter().map(|w| w.idle_ns).sum();
            recorder.counter("explore.expand_ns", expand);
            recorder.counter("explore.idle_ns", idle);
            recorder.gauge("explore.phase_a_ms", phase_a_ns as f64 / 1e6);
            recorder.gauge("explore.replay_ms", run.replay_ns as f64 / 1e6);
            recorder.gauge("explore.phase_b_ms", phase_b_ns as f64 / 1e6);
        }
    }

    let profile = run.workers.take().map(|workers| ExploreProfile {
        target: String::new(),
        n,
        s,
        threads: opts.threads,
        max_depth,
        por: opts.por,
        symmetry: opts.symmetry,
        states: run.states,
        unique_states: run.unique_states,
        duplicate_expansions: run.duplicates,
        route_send: run.route_send,
        route_recv: run.route_recv,
        local_msgs: run.local_msgs,
        queue_full_spins: run.queue_full_spins,
        rounds: run.rounds,
        fallback: false,
        wall_ns: nanos(epoch.elapsed()),
        phase_a_ns,
        replay_ns: run.replay_ns,
        phase_b_ns,
        workers,
    });

    let exploration = Exploration {
        states: run.states,
        violations,
        truncated: run.depth_hits > 0,
        depth_hits: run.depth_hits,
        stats: ReductionStats {
            pruned: run.pruned,
            memo_hits: run.memo_hits,
        },
    };
    (exploration, profile)
}
