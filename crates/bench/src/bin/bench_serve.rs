//! Session-service scale benchmark: drive `crates/serve` to ≥100k
//! concurrent `(s, n)`-session instances over TCP loopback and measure
//! session throughput and close latency.
//!
//! ```text
//! cargo run --release -p session-bench --bin bench_serve
//! cargo run --release -p session-bench --bin bench_serve -- --quick
//! cargo run --release -p session-bench --bin bench_serve -- --json
//! cargo run --release -p session-bench --bin bench_serve -- --json out.json
//! ```
//!
//! Shape: a handful of client connections open `SESSIONS` periodic
//! `(s=2, n=2)` instances as fast as the sockets accept them. The
//! nominal unit is sized so every instance outlives the whole open ramp
//! (close at `s·c2 + d2 = 8` units), which forces the live-session
//! high-water mark to the full target — the service really holds that
//! many concurrently ticking instances, it does not just churn through
//! them. One in `sample_every` instances replays through
//! `net::verify_conformance` at close (DESIGN.md §16).
//!
//! Report schema: `session-bench/serve/v1` — open/close throughput,
//! client-observed close-latency percentiles (exact, computed from every
//! `Closed.elapsed_us`, not bucketed), close lag (elapsed − nominal)
//! percentiles, the server's `serve.*` counter snapshot, and the
//! `host_threads` / `skewed` pair: when the host has fewer hardware
//! threads than shards + clients the numbers measure oversubscription,
//! not service capacity, and the report says `SKEWED` loudly.
//!
//! Exit status: `1` when any conformance sample fails or the run is
//! incomplete (a session never closed); throughput and latency are
//! recorded, never asserted — CI judges them from the JSON on its own
//! hardware.

use std::time::{Duration, Instant};

use session_bench::json_report::json_flag;
use session_obs::json::JsonWriter;
use session_serve::{ConformanceVerdict, ServeClient, ServeConfig, Server, ServerFrame};
use session_types::TimingModel;

/// The version tag written into every serve-bench report.
const SCHEMA: &str = "session-bench/serve/v1";

/// Concurrent-session target for the full run (the acceptance floor is
/// 100k; the extra headroom proves the peak is not grazing the cap).
const SESSIONS: u64 = 110_000;
/// `--quick` target for smoke runs.
const SESSIONS_QUICK: u64 = 8_000;

/// Client connections sharing the open load.
const CLIENTS: u64 = 4;

/// Real microseconds per nominal unit, full run. Close happens at
/// `s·c2 + d2 = 8` nominal units, so the instance lifetime (16 s) must
/// comfortably exceed the open ramp for the peak to reach the target.
const UNIT_US: u32 = 2_000_000;
/// `--quick` unit: lifetime 2.4 s.
const UNIT_US_QUICK: u32 = 300_000;

/// One client's view of the run.
struct ClientOutcome {
    opened: u64,
    closed: u64,
    rejected: u64,
    samples: u64,
    failures: u64,
    /// Client-observed close latency (`Closed.elapsed_us`), one entry
    /// per closed session.
    elapsed_us: Vec<u64>,
    /// Close lag (`elapsed_us − nominal_close_us`), one per close.
    lag_us: Vec<i64>,
}

/// Opens `count` sessions and drains every close.
fn drive_client(
    addr: std::net::SocketAddr,
    count: u64,
    unit_us: u32,
    seed_base: u64,
    deadline: Instant,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        opened: 0,
        closed: 0,
        rejected: 0,
        samples: 0,
        failures: 0,
        elapsed_us: Vec::with_capacity(count as usize),
        lag_us: Vec::with_capacity(count as usize),
    };
    let mut client = ServeClient::connect(addr).expect("connect to loopback service");
    client
        .hello(0, Duration::from_secs(10))
        .expect("service answers Hello");
    for req in 0..count {
        client
            .open(req, TimingModel::Periodic, 2, 2, unit_us, seed_base + req)
            .expect("write Open");
        if req % 4096 == 4095 {
            client.flush().expect("flush Opens");
        }
    }
    client.flush().expect("flush Opens");
    outcome.opened = count;
    let mut done = 0u64;
    while done < count && Instant::now() < deadline {
        match client.recv_timeout(Duration::from_secs(1)) {
            Some(ServerFrame::Closed {
                nominal_close_us,
                elapsed_us,
                conformance,
                ..
            }) => {
                done += 1;
                outcome.closed += 1;
                outcome.elapsed_us.push(elapsed_us);
                outcome
                    .lag_us
                    .push(elapsed_us as i64 - nominal_close_us as i64);
                match conformance {
                    ConformanceVerdict::Pass => outcome.samples += 1,
                    ConformanceVerdict::Fail | ConformanceVerdict::Watchdog => {
                        outcome.samples += 1;
                        outcome.failures += 1;
                    }
                    ConformanceVerdict::NotSampled => {}
                }
            }
            Some(ServerFrame::Reject { .. }) => {
                done += 1;
                outcome.rejected += 1;
            }
            Some(_) => {}
            // Silence is expected: the first close arrives one whole
            // instance lifetime after the opens. Keep waiting until the
            // shared deadline; the sleep caps the spin if the connection
            // died (the channel then reports empty immediately).
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    outcome
}

/// Exact percentile of a sorted sample (nearest-rank).
fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct BenchResult {
    sessions_target: u64,
    opened: u64,
    closed: u64,
    rejected: u64,
    samples: u64,
    failures: u64,
    peak_live: u64,
    open_ramp_secs: f64,
    wall_secs: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    lag_p50_ms: f64,
    lag_p99_ms: f64,
    lag_max_ms: f64,
    counters: Vec<(&'static str, u64)>,
}

fn run(sessions: u64, unit_us: u32, shards: usize) -> BenchResult {
    let config = ServeConfig {
        shards,
        // Capacity headroom above the per-shard share so admission
        // control never load-sheds the benchmark's own opens even if the
        // router's balance is a few opens off under the burst.
        max_sessions_per_shard: (sessions as usize / shards) + (sessions as usize / 10) + 64,
        // The benchmark client is maximally bursty on purpose; the
        // peer-hardening knobs are opened up so the run measures the
        // service, not its own abuse throttles (the hardening tests in
        // crates/serve own that behavior).
        open_rate: 10_000_000.0,
        open_burst: sessions as f64,
        egress_capacity: 1 << 18,
        ban_threshold: u32::MAX,
        sample_every: 64,
        ..ServeConfig::default()
    };
    config.validate().expect("bench config is valid");
    let server = Server::start(config).expect("bind loopback service");
    let addr = server.addr();

    let start = Instant::now();
    let deadline = start + Duration::from_secs(300);
    let per_client = sessions / CLIENTS;
    let remainder = sessions - per_client * CLIENTS;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut open_ramp_secs = 0.0;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let count = per_client + u64::from(i == 0) * remainder;
                scope.spawn(move || drive_client(addr, count, unit_us, i * 1_000_000_000, deadline))
            })
            .collect();
        // Ramp monitor: the moment the live count last grew is when the
        // open ramp effectively ended (after it, sessions only tick and
        // close).
        let monitor = scope.spawn(|| {
            let mut peak = 0u64;
            let mut t_peak = 0.0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let live = server.live_sessions();
                if live > peak {
                    peak = live;
                    t_peak = start.elapsed().as_secs_f64();
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            t_peak
        });
        outcomes = workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        open_ramp_secs = monitor.join().expect("monitor thread");
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let report = server.shutdown();

    let mut elapsed: Vec<u64> = outcomes.iter().flat_map(|o| o.elapsed_us.clone()).collect();
    elapsed.sort_unstable();
    let mut lag: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.lag_us.iter().map(|&l| l.max(0) as u64))
        .collect();
    lag.sort_unstable();

    let counters = [
        "serve.sessions_opened",
        "serve.sessions_closed",
        "serve.sessions_shed",
        "serve.conformance_samples",
        "serve.conformance_failures",
        "serve.frames_in",
        "serve.frames_out",
        "serve.frames_dropped",
        "serve.rate_limited",
        "serve.peers_connected",
        "serve.peers_banned",
    ]
    .iter()
    .map(|&name| (name, report.metrics.counter(name)))
    .collect();

    BenchResult {
        sessions_target: sessions,
        opened: outcomes.iter().map(|o| o.opened).sum(),
        closed: outcomes.iter().map(|o| o.closed).sum(),
        rejected: outcomes.iter().map(|o| o.rejected).sum(),
        samples: outcomes.iter().map(|o| o.samples).sum(),
        failures: outcomes.iter().map(|o| o.failures).sum(),
        peak_live: report.peak_live_sessions,
        open_ramp_secs,
        wall_secs,
        p50_ms: percentile_sorted(&elapsed, 50.0) as f64 / 1e3,
        p90_ms: percentile_sorted(&elapsed, 90.0) as f64 / 1e3,
        p99_ms: percentile_sorted(&elapsed, 99.0) as f64 / 1e3,
        max_ms: elapsed.last().copied().unwrap_or(0) as f64 / 1e3,
        lag_p50_ms: percentile_sorted(&lag, 50.0) as f64 / 1e3,
        lag_p99_ms: percentile_sorted(&lag, 99.0) as f64 / 1e3,
        lag_max_ms: lag.last().copied().unwrap_or(0) as f64 / 1e3,
        counters,
    }
}

fn to_json(r: &BenchResult, shards: usize, host_threads: usize, skewed: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_str("transport", "tcp");
    w.field_u64("shards", shards as u64);
    w.field_u64("clients", CLIENTS);
    w.field_u64("sessions_target", r.sessions_target);
    w.field_u64("sessions_opened", r.opened);
    w.field_u64("sessions_closed", r.closed);
    w.field_u64("sessions_rejected", r.rejected);
    w.field_u64("peak_live_sessions", r.peak_live);
    w.field_u64("conformance_samples", r.samples);
    w.field_u64("conformance_failures", r.failures);
    w.field_f64("open_ramp_secs", r.open_ramp_secs);
    w.field_f64("wall_secs", r.wall_secs);
    w.field_f64(
        "opens_per_sec",
        r.opened as f64 / r.open_ramp_secs.max(1e-9),
    );
    w.field_f64("closes_per_sec", r.closed as f64 / r.wall_secs.max(1e-9));
    w.field_f64("close_p50_ms", r.p50_ms);
    w.field_f64("close_p90_ms", r.p90_ms);
    w.field_f64("close_p99_ms", r.p99_ms);
    w.field_f64("close_max_ms", r.max_ms);
    w.field_f64("close_lag_p50_ms", r.lag_p50_ms);
    w.field_f64("close_lag_p99_ms", r.lag_p99_ms);
    w.field_f64("close_lag_max_ms", r.lag_max_ms);
    w.field_u64("host_threads", host_threads as u64);
    w.field_bool("skewed", skewed);
    w.key("counters");
    w.begin_object();
    for (name, value) in &r.counters {
        w.field_u64(name, *value);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = json_flag(args.iter(), "BENCH_serve.json");
    let quick = args.iter().any(|a| a == "--quick");
    let (sessions, unit_us) = if quick {
        (SESSIONS_QUICK, UNIT_US_QUICK)
    } else {
        (SESSIONS, UNIT_US)
    };
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let shards = host_threads.clamp(2, 4);
    // Shards + client drivers + readers all want their own core; below
    // that the latency tail measures the scheduler, not the service.
    let skewed = host_threads < shards + CLIENTS as usize;

    println!("# Session service — {sessions} periodic (s=2, n=2) instances over TCP loopback\n");
    println!(
        "{CLIENTS} clients, {shards} shards, nominal unit {} ms (close at 8 units), \
         conformance-sampling 1 in 64. Host reports {host_threads} hardware thread(s).\n",
        unit_us / 1000
    );

    let result = run(sessions, unit_us, shards);

    println!("| metric | value |");
    println!("|---|---:|");
    println!("| sessions opened | {} |", result.opened);
    println!("| sessions closed | {} |", result.closed);
    println!("| sessions rejected | {} |", result.rejected);
    println!("| peak live sessions | {} |", result.peak_live);
    println!(
        "| open ramp | {:.2} s ({:.0} opens/s) |",
        result.open_ramp_secs,
        result.opened as f64 / result.open_ramp_secs.max(1e-9)
    );
    println!(
        "| wall clock | {:.2} s ({:.0} closes/s) |",
        result.wall_secs,
        result.closed as f64 / result.wall_secs.max(1e-9)
    );
    println!(
        "| close latency p50 / p90 / p99 / max | {:.1} / {:.1} / {:.1} / {:.1} ms |",
        result.p50_ms, result.p90_ms, result.p99_ms, result.max_ms
    );
    println!(
        "| close lag (elapsed − nominal) p50 / p99 / max | {:.1} / {:.1} / {:.1} ms |",
        result.lag_p50_ms, result.lag_p99_ms, result.lag_max_ms
    );
    println!(
        "| conformance samples / failures | {} / {} |",
        result.samples, result.failures
    );
    println!("\n## server counters\n");
    println!("| counter | value |");
    println!("|---|---:|");
    for (name, value) in &result.counters {
        println!("| {name} | {value} |");
    }

    if skewed {
        // A 1-core container timesharing shards, client writers and
        // readers measures the scheduler's mercy, not service capacity;
        // say so loudly so nobody quotes these numbers as throughput.
        println!(
            "\nSKEWED: host reports {host_threads} hardware thread(s) for {shards} shards + \
             {CLIENTS} clients; throughput and latency tails measure oversubscription, not \
             service capacity. Re-run on a multicore host before comparing runs."
        );
    }

    let mut failed = false;
    if result.failures > 0 {
        eprintln!(
            "CONFORMANCE: {} of {} sampled sessions failed verification",
            result.failures, result.samples
        );
        failed = true;
    }
    if result.closed + result.rejected < result.opened {
        eprintln!(
            "INCOMPLETE: {} sessions never closed (opened {}, closed {}, rejected {})",
            result.opened - result.closed - result.rejected,
            result.opened,
            result.closed,
            result.rejected
        );
        failed = true;
    }
    if !quick && result.peak_live < 100_000 {
        // Not a conformance failure, but the headline claim; keep it
        // loud without failing slow hosts that simply could not ramp
        // fast enough.
        println!(
            "\nPEAK BELOW TARGET: peak live sessions {} < 100000 — the open ramp ({:.1} s) \
             did not beat the instance lifetime on this host.",
            result.peak_live, result.open_ramp_secs
        );
    }

    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, to_json(&result, shards, host_threads, skewed)) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
}
