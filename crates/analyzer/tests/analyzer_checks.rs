//! End-to-end checks of the analyzer's verdicts: every correct algorithm
//! of the paper explores clean at its scope, every naive witness is
//! flagged with the lint code matching its lower-bound violation, and the
//! checker's machines agree with the real engines on random schedules.

use session_analyzer::{analyze_target, LintCode, TARGET_NAMES};

/// The nine cheap correct targets; `SporadicMp` explores ~170k states and
/// gets its own `#[ignore]`d test below so debug-profile `cargo test`
/// stays fast.
const FAST_CORRECT_TARGETS: [&str; 9] = [
    "SyncSm",
    "PeriodicSm",
    "SemiSyncSm",
    "SporadicSm",
    "AsyncSm",
    "SyncMp",
    "PeriodicMp",
    "SemiSyncMp",
    "AsyncMp",
];

fn assert_clean(name: &str) {
    let report = analyze_target(name).expect("known target");
    assert!(
        report.findings.is_empty(),
        "{name} must be clean, found: {:#?}",
        report
            .findings
            .iter()
            .map(|d| format!("{} {}", d.code, d.message))
            .collect::<Vec<_>>()
    );
    assert!(
        report.targets[0].states > 0,
        "{name} exploration must visit states"
    );
}

/// Every algorithm of the paper explores its complete state space at scope
/// with zero findings.
#[test]
fn correct_algorithms_are_clean() {
    for name in FAST_CORRECT_TARGETS {
        assert_clean(name);
    }
}

/// `A(sp)` over message passing, the largest clean exploration (~170k
/// states). Slow under the debug profile; `scripts/static-analysis.sh`
/// runs it in release with `--include-ignored`.
#[test]
#[ignore = "large exploration; run in release via scripts/static-analysis.sh"]
fn sporadic_mp_is_clean() {
    assert_clean("SporadicMp");
}

fn codes(name: &str) -> Vec<LintCode> {
    let report = analyze_target(name).expect("known target");
    assert!(
        !report.findings.is_empty(),
        "{name} must be flagged, explored {} states clean",
        report.targets[0].states
    );
    for finding in &report.findings {
        assert!(
            !finding.message.contains("self-check failed"),
            "{name} counterexample failed its self-check: {}",
            finding.message
        );
        assert!(
            finding.repro.starts_with("root="),
            "finding must carry a deterministic repro"
        );
        assert!(
            finding.scope.contains("n=") && finding.scope.contains("max_depth="),
            "finding must carry its scope line"
        );
    }
    report.findings.iter().map(|d| d.code).collect()
}

/// The silent periodic witness under-delivers sessions.
#[test]
fn naive_periodic_sm_is_flagged_with_session_deficit() {
    assert!(codes("NaivePeriodicSm").contains(&LintCode::SessionDeficit));
}

/// The halved-block step counter under-delivers sessions.
#[test]
fn naive_semisync_sm_is_flagged_with_session_deficit() {
    assert!(codes("NaiveSemiSyncSm").contains(&LintCode::SessionDeficit));
}

/// The `B = 0` sporadic witness certifies sessions from stale evidence.
/// The exploration is ~1.4M states (the witness forces a wide schedule
/// menu); `scripts/static-analysis.sh` runs it in release with
/// `--include-ignored`, and the `analyze --all` CLI gate covers it too.
#[test]
#[ignore = "large exploration; run in release via scripts/static-analysis.sh"]
fn naive_sporadic_mp_is_flagged_with_stale_evidence() {
    assert!(codes("NaiveSporadicMp").contains(&LintCode::StaleEvidence));
}

/// Counterexamples are rendered as timelines.
#[test]
fn naive_findings_carry_rendered_counterexamples() {
    let report = analyze_target("NaivePeriodicSm").expect("known target");
    let finding = report
        .findings
        .iter()
        .find(|d| d.code == LintCode::SessionDeficit)
        .expect("session deficit finding");
    assert!(
        !finding.counterexample.is_empty(),
        "finding must render a timeline"
    );
}

/// Unknown names are rejected, known names are exactly the thirteen.
#[test]
fn target_registry_is_exact() {
    assert_eq!(TARGET_NAMES.len(), 13);
    assert!(analyze_target("NoSuchTarget").is_none());
}
