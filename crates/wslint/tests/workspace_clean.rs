//! The workspace's own sources must lint clean, and the stats counters
//! must prove the registry checks actually scanned the real registries
//! (an accidentally-moved diag.rs or metrics.rs would otherwise turn
//! WS005–WS007 into silent no-ops).

use std::path::PathBuf;

use session_wslint::{checks, Config};

#[test]
fn workspace_lints_clean_with_nonempty_registries() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = checks::run(&Config::workspace(root)).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "the workspace must be WSxxx-clean:\n{}",
        report.to_markdown()
    );
    let s = &report.stats;
    assert!(
        s.files_scanned >= 100,
        "scanned only {} files",
        s.files_scanned
    );
    assert!(
        s.lint_variants >= 12,
        "only {} LintCode variants",
        s.lint_variants
    );
    assert!(
        s.registry_codes >= 12,
        "only {} SAxxx codes",
        s.registry_codes
    );
    assert!(s.metric_names >= 45, "only {} metric names", s.metric_names);
    assert!(
        s.serve_metrics_emitted >= 20,
        "only {} emitted serve.* strings",
        s.serve_metrics_emitted
    );
}
