//! Criterion benches, one group per Table 1 block: wall-clock cost of the
//! full measurement (build system, simulate, verify) at growing instance
//! sizes. The *simulated* times these runs produce are reported by the
//! `table1` binary; these benches track the harness's own performance so
//! regressions in the engines show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use session_bench::measure;
use session_types::Dur;
use std::time::Duration;

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/synchronous");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for s in [2u64, 8, 32] {
        group.bench_with_input(BenchmarkId::new("sm", s), &s, |b, &s| {
            b.iter(|| measure::sync_sm(s, 8, d(3)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mp", s), &s, |b, &s| {
            b.iter(|| measure::sync_mp(s, 8, d(3), d(5)).unwrap());
        });
    }
    group.finish();
}

fn bench_periodic(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/periodic");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("sm-upper", n), &n, |b, &n| {
            b.iter(|| measure::periodic_sm_upper(4, n, 2, d(3)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mp-upper", n), &n, |b, &n| {
            b.iter(|| measure::periodic_mp_upper(4, n, d(3), d(20)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("sm-lower-adversary", n), &n, |b, &n| {
            b.iter(|| measure::periodic_sm_lower(4, n, 2).unwrap());
        });
    }
    group.finish();
}

fn bench_semisync(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/semisync");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for ratio in [2i128, 8, 32] {
        group.bench_with_input(BenchmarkId::new("sm-upper", ratio), &ratio, |b, &r| {
            b.iter(|| measure::semisync_sm_upper(4, 8, 2, d(1), d(r)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mp-upper", ratio), &ratio, |b, &r| {
            b.iter(|| measure::semisync_mp_upper(4, 8, d(1), d(r), d(20)).unwrap());
        });
    }
    group.bench_function("sm-lower-retiming", |b| {
        b.iter(|| measure::semisync_sm_lower(3, 8, d(1), d(8)).unwrap());
    });
    group.finish();
}

fn bench_sporadic(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/sporadic");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for u in [4i128, 12, 24] {
        group.bench_with_input(BenchmarkId::new("mp-upper", u), &u, |b, &u| {
            b.iter(|| measure::sporadic_mp_upper(4, 4, d(1), d(0), d(u)).unwrap());
        });
    }
    group.bench_function("mp-lower-rescaling", |b| {
        b.iter(|| measure::sporadic_mp_lower(4, 3, d(1), d(0), d(16)).unwrap());
    });
    group.finish();
}

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/async");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("sm-upper", n), &n, |b, &n| {
            b.iter(|| measure::async_sm_upper(4, n, 2).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mp-upper", n), &n, |b, &n| {
            b.iter(|| measure::async_mp_upper(4, n, d(2), d(9)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sync,
    bench_periodic,
    bench_semisync,
    bench_sporadic,
    bench_async
);
criterion_main!(benches);
