//! Positive: a bare unwrap on a runtime path with no justification.

fn main() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap();
}
