//! `session-wslint`: a dependency-free, token-level static analyzer for
//! the workspace's own time & concurrency discipline (DESIGN.md §17).
//!
//! Where the analyzer crate lints *session traces* (SAxxx), this crate
//! lints *the workspace's Rust sources* (WSxxx): wall-clock discipline,
//! bounded channels, lock ordering, panic paths, and the three registry
//! gates that `scripts/static-analysis.sh` used to approximate with
//! awk/grep. A hand-rolled lexer (no `syn`, consistent with the
//! vendored-deps policy) keeps string literals, char literals and
//! comments from masquerading as code.

pub mod checks;
pub mod config;
pub mod lexer;
pub mod report;
pub mod source;

pub use checks::run;
pub use config::Config;
pub use report::{Finding, Report, Stats, WsCode, ALL_CODES};
