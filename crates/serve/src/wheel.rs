//! A hashed time wheel: the shard's replacement for one sleeping thread
//! per process.
//!
//! `crates/net` realizes nominal step times by giving every process its
//! own OS thread and calling `thread::sleep`. At 100k+ concurrent
//! sessions that is hundreds of thousands of threads — not a thing. The
//! wheel inverts it: each scheduled step is hashed by its due tick into
//! one of a fixed ring of slots, and a single shard thread advances the
//! wheel to "now", firing every entry whose tick has arrived. Insert is
//! O(1); advancing does O(entries in touched slots) work; memory is one
//! `(tick, item)` pair per scheduled step — exactly one per live
//! process, since a process schedules its next step only when the
//! current one fires.
//!
//! Ticks are wall-clock microseconds divided by the configured tick
//! width. Entries further out than one ring circumference simply stay in
//! their slot across multiple passes (the due-tick check skips them
//! until their round arrives), so the wheel needs no overflow hierarchy.

/// A hashed time wheel over `u64` microsecond timestamps.
#[derive(Debug)]
pub struct TimeWheel<T> {
    slots: Vec<Vec<(u64, T)>>,
    tick_us: u64,
    /// The last tick `advance` fired (all ticks ≤ cursor are in the
    /// past; new entries clamp to it).
    cursor: u64,
    len: usize,
}

impl<T> TimeWheel<T> {
    /// A wheel with `slots` ring slots of `tick_us`-microsecond ticks.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `tick_us` is zero.
    pub fn new(slots: usize, tick_us: u64) -> TimeWheel<T> {
        assert!(slots > 0 && tick_us > 0, "degenerate time wheel");
        TimeWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick_us,
            cursor: 0,
            len: 0,
        }
    }

    /// Scheduled entries not yet fired.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's tick width in microseconds.
    pub fn tick_us(&self) -> u64 {
        self.tick_us
    }

    /// Schedules `item` at absolute time `at_us`. Times already in the
    /// past fire on the next [`TimeWheel::advance`].
    pub fn schedule(&mut self, at_us: u64, item: T) {
        let tick = (at_us / self.tick_us).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((tick, item));
        self.len += 1;
    }

    /// Advances the wheel to `now_us`, appending every due entry to
    /// `due` in nondecreasing tick order.
    pub fn advance(&mut self, now_us: u64, due: &mut Vec<T>) {
        let target = now_us / self.tick_us;
        if target < self.cursor {
            return;
        }
        let ring = self.slots.len() as u64;
        // If the interval spans the whole ring, one pass over every slot
        // covers it; otherwise only the slots of ticks in
        // `cursor..=target` can hold due entries.
        let span = (target - self.cursor + 1).min(ring);
        let mut fired: Vec<(u64, T)> = Vec::new();
        for step in 0..span {
            let slot = ((self.cursor + step) % ring) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].0 <= target {
                    fired.push(entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.len -= fired.len();
        fired.sort_by_key(|&(tick, _)| tick);
        due.extend(fired.into_iter().map(|(_, item)| item));
        self.cursor = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimeWheel<u32>, now_us: u64) -> Vec<u32> {
        let mut due = Vec::new();
        wheel.advance(now_us, &mut due);
        due
    }

    #[test]
    fn fires_in_tick_order_and_only_when_due() {
        let mut wheel = TimeWheel::new(8, 100);
        wheel.schedule(250, 3);
        wheel.schedule(50, 1);
        wheel.schedule(199, 2);
        assert_eq!(wheel.len(), 3);
        assert_eq!(drain(&mut wheel, 99), vec![1]);
        assert_eq!(drain(&mut wheel, 199), vec![2]);
        assert_eq!(drain(&mut wheel, 199), Vec::<u32>::new());
        assert_eq!(drain(&mut wheel, 10_000), vec![3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn entries_beyond_one_ring_circumference_wait_their_round() {
        let mut wheel = TimeWheel::new(4, 10);
        // Tick 1 and tick 5 hash to the same slot of the 4-slot ring.
        wheel.schedule(10, 1);
        wheel.schedule(50, 5);
        assert_eq!(drain(&mut wheel, 19), vec![1]);
        assert_eq!(drain(&mut wheel, 39), Vec::<u32>::new());
        assert_eq!(drain(&mut wheel, 59), vec![5]);
    }

    #[test]
    fn past_times_fire_on_the_next_advance() {
        let mut wheel = TimeWheel::new(4, 10);
        assert_eq!(drain(&mut wheel, 500), Vec::<u32>::new());
        wheel.schedule(0, 7); // already in the past
        assert_eq!(drain(&mut wheel, 500), vec![7]);
    }

    #[test]
    fn a_big_jump_fires_everything_once() {
        let mut wheel = TimeWheel::new(8, 10);
        for i in 0..100u32 {
            wheel.schedule(u64::from(i) * 7, i);
        }
        let due = drain(&mut wheel, 1_000_000);
        assert_eq!(due.len(), 100);
        assert!(wheel.is_empty());
        // Nondecreasing tick order.
        let ticks: Vec<u64> = due.iter().map(|&i| u64::from(i) * 7 / 10).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
    }
}
