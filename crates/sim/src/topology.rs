//! Point-to-point network topologies as delay policies.
//!
//! The paper's message-passing model subsumes the network diameter into
//! `d2` ("that paper considers point-to-point networks; thus the results
//! include a factor of the network diameter. In our model, d2 subsumes the
//! diameter factor" — Table 1 conversion note (1)). This module restores
//! the original \[4\] formulation for the diameter experiments: a message
//! from `p` to `q` takes `hops(p, q) · per_hop`, so the effective `d2` of a
//! topology is `diameter · per_hop`.

use session_types::{Dur, Error, ProcessId, Result, Time};

use crate::delay::DelayPolicy;

/// A delay policy driven by a hop-count matrix: the delay of a message from
/// `p` to `q` is `hops[p][q] · per_hop`.
///
/// # Examples
///
/// ```
/// use session_sim::{DelayPolicy, HopDelay};
/// use session_types::{Dur, ProcessId, Time};
///
/// # fn main() -> Result<(), session_types::Error> {
/// let mut ring = HopDelay::ring(5, Dur::from_int(3))?;
/// assert_eq!(ring.diameter(), 2);
/// assert_eq!(ring.max_delay(), Dur::from_int(6)); // the effective d2
/// // Two hops around the 5-ring from p0 to p2:
/// let d = ring.delay(ProcessId::new(0), ProcessId::new(2), Time::ZERO);
/// assert_eq!(d, Dur::from_int(6));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct HopDelay {
    hops: Vec<Vec<u32>>,
    per_hop: Dur,
}

impl HopDelay {
    /// Creates a policy from an explicit hop matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if the matrix is empty or not
    /// square, any diagonal entry is nonzero (self-delivery is local), or
    /// `per_hop < 0`.
    pub fn new(hops: Vec<Vec<u32>>, per_hop: Dur) -> Result<HopDelay> {
        let n = hops.len();
        if n == 0 {
            return Err(Error::invalid_params("hop matrix must be nonempty"));
        }
        if hops.iter().any(|row| row.len() != n) {
            return Err(Error::invalid_params("hop matrix must be square"));
        }
        if (0..n).any(|i| hops[i][i] != 0) {
            return Err(Error::invalid_params(
                "hop matrix diagonal must be zero (self-delivery is local)",
            ));
        }
        if per_hop.is_negative() {
            return Err(Error::invalid_params("per_hop must be nonnegative"));
        }
        Ok(HopDelay { hops, per_hop })
    }

    /// A bidirectional ring of `n` processes: `hops(p, q)` is the shorter
    /// way around, diameter `⌊n/2⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `n == 0` or `per_hop < 0`.
    pub fn ring(n: usize, per_hop: Dur) -> Result<HopDelay> {
        if n == 0 {
            return Err(Error::invalid_params("ring requires n >= 1"));
        }
        let hops = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        let forward = (j + n - i) % n;
                        let backward = (i + n - j) % n;
                        forward.min(backward) as u32
                    })
                    .collect()
            })
            .collect();
        HopDelay::new(hops, per_hop)
    }

    /// A line `p0 — p1 — … — p(n-1)`: `hops(p, q) = |p − q|`, diameter
    /// `n − 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `n == 0` or `per_hop < 0`.
    pub fn line(n: usize, per_hop: Dur) -> Result<HopDelay> {
        if n == 0 {
            return Err(Error::invalid_params("line requires n >= 1"));
        }
        let hops = (0..n)
            .map(|i| (0..n).map(|j| i.abs_diff(j) as u32).collect())
            .collect();
        HopDelay::new(hops, per_hop)
    }

    /// A star centered at `p0`: diameter 2 (leaf to leaf through the hub).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `n == 0` or `per_hop < 0`.
    pub fn star(n: usize, per_hop: Dur) -> Result<HopDelay> {
        if n == 0 {
            return Err(Error::invalid_params("star requires n >= 1"));
        }
        let hops = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            0
                        } else if i == 0 || j == 0 {
                            1
                        } else {
                            2
                        }
                    })
                    .collect()
            })
            .collect();
        HopDelay::new(hops, per_hop)
    }

    /// The complete graph: every pair one hop apart, diameter 1 (0 for a
    /// single process).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `n == 0` or `per_hop < 0`.
    pub fn complete(n: usize, per_hop: Dur) -> Result<HopDelay> {
        if n == 0 {
            return Err(Error::invalid_params("complete graph requires n >= 1"));
        }
        let hops = (0..n)
            .map(|i| (0..n).map(|j| u32::from(i != j)).collect())
            .collect();
        HopDelay::new(hops, per_hop)
    }

    /// The largest hop count in the matrix.
    pub fn diameter(&self) -> u32 {
        self.hops
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// The effective delay bound `d2 = diameter · per_hop`.
    pub fn max_delay(&self) -> Dur {
        self.per_hop * self.diameter() as i128
    }

    /// The per-hop latency.
    pub fn per_hop(&self) -> Dur {
        self.per_hop
    }
}

impl DelayPolicy for HopDelay {
    fn delay(&mut self, from: ProcessId, to: ProcessId, _sent_at: Time) -> Dur {
        let hops = self.hops[from.index()][to.index()];
        self.per_hop * hops as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn ring_hops_take_the_short_way() {
        let mut ring = HopDelay::ring(6, Dur::from_int(1)).unwrap();
        assert_eq!(ring.delay(p(0), p(1), Time::ZERO), Dur::from_int(1));
        assert_eq!(ring.delay(p(0), p(5), Time::ZERO), Dur::from_int(1)); // backwards
        assert_eq!(ring.delay(p(0), p(3), Time::ZERO), Dur::from_int(3)); // antipode
        assert_eq!(ring.diameter(), 3);
    }

    #[test]
    fn line_diameter_is_n_minus_1() {
        let line = HopDelay::line(5, Dur::from_int(2)).unwrap();
        assert_eq!(line.diameter(), 4);
        assert_eq!(line.max_delay(), Dur::from_int(8));
    }

    #[test]
    fn star_and_complete_have_small_diameter() {
        assert_eq!(HopDelay::star(9, Dur::ONE).unwrap().diameter(), 2);
        assert_eq!(HopDelay::complete(9, Dur::ONE).unwrap().diameter(), 1);
        assert_eq!(HopDelay::complete(1, Dur::ONE).unwrap().diameter(), 0);
        let mut star = HopDelay::star(4, Dur::from_int(5)).unwrap();
        assert_eq!(star.delay(p(0), p(3), Time::ZERO), Dur::from_int(5)); // hub out
        assert_eq!(star.delay(p(2), p(3), Time::ZERO), Dur::from_int(10)); // via hub
    }

    #[test]
    fn self_delivery_is_free() {
        let mut ring = HopDelay::ring(4, Dur::from_int(7)).unwrap();
        assert_eq!(ring.delay(p(2), p(2), Time::ZERO), Dur::ZERO);
    }

    #[test]
    fn validation() {
        assert!(HopDelay::new(vec![], Dur::ONE).is_err());
        assert!(HopDelay::new(vec![vec![0, 1]], Dur::ONE).is_err()); // not square
        assert!(HopDelay::new(vec![vec![1]], Dur::ONE).is_err()); // diag nonzero
        assert!(HopDelay::new(vec![vec![0]], Dur::from_int(-1)).is_err());
        assert!(HopDelay::ring(0, Dur::ONE).is_err());
        assert!(HopDelay::line(0, Dur::ONE).is_err());
        assert!(HopDelay::star(0, Dur::ONE).is_err());
        assert!(HopDelay::complete(0, Dur::ONE).is_err());
    }

    #[test]
    fn per_hop_accessor() {
        let ring = HopDelay::ring(3, Dur::from_int(4)).unwrap();
        assert_eq!(ring.per_hop(), Dur::from_int(4));
    }
}
