fn sa001_positive_interleaving() {}
fn sa001_negative_serial() {}
fn sa002_positive_overrun() {}
fn sa002_negative_in_window() {}
