//! Task models: periodic and sporadic uniprocessor tasks.

use std::fmt;

use session_types::{Dur, Error, Ratio, Result};

/// Identifies a task within a [`TaskSet`] (dense, zero-based).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates the identifier with the given dense index.
    pub const fn new(index: usize) -> TaskId {
        TaskId(index)
    }

    /// The dense zero-based index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A periodic task: a job of cost `wcet` is released every `period`, due by
/// the next release (implicit deadline) or an explicit earlier `deadline`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodicTask {
    period: Dur,
    wcet: Dur,
    deadline: Dur,
}

impl PeriodicTask {
    /// Creates a task with an implicit deadline (= period).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `period <= 0`, `wcet <= 0` or
    /// `wcet > period`.
    pub fn new(period: Dur, wcet: Dur) -> Result<PeriodicTask> {
        PeriodicTask::with_deadline(period, wcet, period)
    }

    /// Creates a task with an explicit (constrained) deadline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] unless
    /// `0 < wcet <= deadline <= period`.
    pub fn with_deadline(period: Dur, wcet: Dur, deadline: Dur) -> Result<PeriodicTask> {
        if !period.is_positive() || !wcet.is_positive() {
            return Err(Error::invalid_params(
                "periodic task requires period > 0 and wcet > 0",
            ));
        }
        if wcet > deadline || deadline > period {
            return Err(Error::invalid_params(
                "periodic task requires wcet <= deadline <= period",
            ));
        }
        Ok(PeriodicTask {
            period,
            wcet,
            deadline,
        })
    }

    /// The release period `T`.
    pub fn period(&self) -> Dur {
        self.period
    }

    /// The worst-case execution time `C`.
    pub fn wcet(&self) -> Dur {
        self.wcet
    }

    /// The relative deadline `D`.
    pub fn deadline(&self) -> Dur {
        self.deadline
    }

    /// The utilization `C / T`.
    pub fn utilization(&self) -> Ratio {
        self.wcet.div_exact(self.period)
    }
}

/// A sporadic task: consecutive releases are at least `min_separation`
/// apart, with no upper bound — the event-driven pattern the paper's
/// sporadic timing constraint models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SporadicTask {
    min_separation: Dur,
    wcet: Dur,
    deadline: Dur,
}

impl SporadicTask {
    /// Creates a task with an implicit deadline (= minimum separation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `min_separation <= 0`,
    /// `wcet <= 0` or `wcet > min_separation`.
    pub fn new(min_separation: Dur, wcet: Dur) -> Result<SporadicTask> {
        if !min_separation.is_positive() || !wcet.is_positive() {
            return Err(Error::invalid_params(
                "sporadic task requires min_separation > 0 and wcet > 0",
            ));
        }
        if wcet > min_separation {
            return Err(Error::invalid_params(
                "sporadic task requires wcet <= min_separation",
            ));
        }
        Ok(SporadicTask {
            min_separation,
            wcet,
            deadline: min_separation,
        })
    }

    /// The minimum inter-release separation `p`.
    pub fn min_separation(&self) -> Dur {
        self.min_separation
    }

    /// The worst-case execution time `C`.
    pub fn wcet(&self) -> Dur {
        self.wcet
    }

    /// The relative deadline `D`.
    pub fn deadline(&self) -> Dur {
        self.deadline
    }

    /// The worst-case utilization `C / p` (releases as fast as allowed).
    pub fn utilization(&self) -> Ratio {
        self.wcet.div_exact(self.min_separation)
    }

    /// The worst-case periodic task equivalent: releases every
    /// `min_separation` exactly. Schedulability of this periodic task set
    /// is sufficient for the sporadic set (the classical reduction).
    pub fn worst_case_periodic(&self) -> PeriodicTask {
        PeriodicTask {
            period: self.min_separation,
            wcet: self.wcet,
            deadline: self.deadline,
        }
    }
}

/// A set of periodic tasks (sporadic sets are analyzed through their
/// worst-case periodic equivalents).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Creates a set of periodic tasks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if the set is empty.
    pub fn periodic(tasks: Vec<PeriodicTask>) -> Result<TaskSet> {
        if tasks.is_empty() {
            return Err(Error::invalid_params("task set must be nonempty"));
        }
        Ok(TaskSet { tasks })
    }

    /// Creates a set from sporadic tasks via their worst-case periodic
    /// equivalents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if the set is empty.
    pub fn sporadic(tasks: Vec<SporadicTask>) -> Result<TaskSet> {
        TaskSet::periodic(
            tasks
                .iter()
                .map(SporadicTask::worst_case_periodic)
                .collect(),
        )
    }

    /// The number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the set has no tasks (never: construction forbids
    /// it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &PeriodicTask {
        &self.tasks[id.index()]
    }

    /// Iterates over `(id, task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &PeriodicTask)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i), t))
    }

    /// Total utilization `U = Σ C_i / T_i` (exact).
    pub fn utilization(&self) -> Ratio {
        self.tasks
            .iter()
            .map(PeriodicTask::utilization)
            .fold(Ratio::ZERO, |acc, u| acc + u)
    }

    /// Task ids sorted by rate-monotonic priority (shorter period first,
    /// ties by index).
    pub fn rm_priority_order(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.tasks.len()).map(TaskId::new).collect();
        ids.sort_by_key(|id| (self.tasks[id.index()].period(), id.index()));
        ids
    }

    /// Task ids sorted by deadline-monotonic priority (shorter relative
    /// deadline first, ties by index) — the optimal fixed-priority
    /// assignment for constrained deadlines (`D <= T`).
    pub fn dm_priority_order(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.tasks.len()).map(TaskId::new).collect();
        ids.sort_by_key(|id| (self.tasks[id.index()].deadline(), id.index()));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    #[test]
    fn periodic_task_validation() {
        assert!(PeriodicTask::new(d(4), d(1)).is_ok());
        assert!(PeriodicTask::new(d(0), d(1)).is_err());
        assert!(PeriodicTask::new(d(4), d(0)).is_err());
        assert!(PeriodicTask::new(d(4), d(5)).is_err());
        assert!(PeriodicTask::with_deadline(d(4), d(2), d(3)).is_ok());
        assert!(PeriodicTask::with_deadline(d(4), d(2), d(1)).is_err());
        assert!(PeriodicTask::with_deadline(d(4), d(2), d(5)).is_err());
    }

    #[test]
    fn sporadic_task_validation_and_reduction() {
        let t = SporadicTask::new(d(10), d(3)).unwrap();
        assert_eq!(t.utilization(), session_types::Ratio::new(3, 10));
        let p = t.worst_case_periodic();
        assert_eq!(p.period(), d(10));
        assert_eq!(p.wcet(), d(3));
        assert!(SporadicTask::new(d(2), d(3)).is_err());
    }

    #[test]
    fn utilization_is_exact() {
        let ts = TaskSet::periodic(vec![
            PeriodicTask::new(d(3), d(1)).unwrap(),
            PeriodicTask::new(d(6), d(2)).unwrap(),
        ])
        .unwrap();
        assert_eq!(ts.utilization(), session_types::Ratio::new(2, 3));
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
    }

    #[test]
    fn empty_sets_are_rejected() {
        assert!(TaskSet::periodic(vec![]).is_err());
        assert!(TaskSet::sporadic(vec![]).is_err());
    }

    #[test]
    fn rm_order_is_by_period() {
        let ts = TaskSet::periodic(vec![
            PeriodicTask::new(d(10), d(1)).unwrap(),
            PeriodicTask::new(d(4), d(1)).unwrap(),
            PeriodicTask::new(d(10), d(2)).unwrap(),
        ])
        .unwrap();
        let order = ts.rm_priority_order();
        assert_eq!(order, vec![TaskId::new(1), TaskId::new(0), TaskId::new(2)]);
        assert_eq!(ts.task(TaskId::new(1)).period(), d(4));
    }

    #[test]
    fn dm_order_is_by_deadline() {
        let ts = TaskSet::periodic(vec![
            PeriodicTask::with_deadline(d(10), d(1), d(5)).unwrap(),
            PeriodicTask::new(d(8), d(1)).unwrap(), // D = 8
        ])
        .unwrap();
        assert_eq!(ts.rm_priority_order(), vec![TaskId::new(1), TaskId::new(0)]);
        assert_eq!(ts.dm_priority_order(), vec![TaskId::new(0), TaskId::new(1)]);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId::new(2).to_string(), "τ2");
        assert_eq!(format!("{:?}", TaskId::new(2)), "τ2");
        assert_eq!(TaskId::new(2).index(), 2);
    }
}
