//! The thirteen named analysis targets: the paper's ten algorithms (five
//! timing models × two substrates) plus the three naive cheating
//! witnesses from `session-adversary`.
//!
//! Each target fixes a small scope — system size, required sessions, and
//! finite menus of admissible step gaps and message delays derived from
//! the timing parameters — and a set of exploration roots (one per
//! first-step assignment, and for the periodic model one per period
//! assignment). [`analyze_target`] explores the complete reachable state
//! space of every root, reconstructs a rendered counterexample for each
//! violation found, and self-checks the counterexample against the
//! reference admissibility checker, the reference session counter and (for
//! shared memory) a replay through the real engine.
//!
//! Menu choices follow the lower-bound adversaries of the paper: each menu
//! contains the fastest admissible gap and a much slower one (for the
//! sporadic model a pause long enough to outlive the waiting constant
//! `B`), and the delay menus contain the extremes `d1` and `d2`. For the
//! models with no upper bound on gaps (sporadic, asynchronous) the slow
//! menu entry plays the role of a bounded-unfairness window: exhaustive at
//! this scope, representative beyond it.
//!
//! [`target_space`] exposes a target's scope, bounds and roots without
//! analyzing it, and [`scoped_target_space`] rebuilds a target at a
//! different `(n, s)` — the differential harness uses both to compare the
//! reduced and unreduced explorations of the same space.

use session_adversary::naive::{
    naive_periodic_sm_port, naive_semisync_sm_port, naive_sporadic_mp_port,
};
use session_core::algorithms::{
    AsyncMpPort, AsyncSmPort, PeriodicMpPort, PeriodicSmPort, SemiSyncMpPort, SemiSyncSmPort,
    SporadicMpPort, SyncMpPort, SyncSmPort,
};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, ProcessId, SessionSpec, Time, TimingModel, VarId};

use crate::diag::{Diagnostic, LintCode, Report, TargetSummary};
use crate::explore::{explore_flight, AnyMachine, ExploreOpts, SessionCounter};
use crate::machine::{assignments, sm_system_algos, GapMode, MpAlgo, MpMachine, SmAlgo, SmMachine};
use crate::profile::{ExploreProfile, FlightOpts};
use crate::replay;
use crate::scope::Scope;

/// Maximum timeline lines rendered into a diagnostic.
const RENDER_LINES: usize = 60;

/// The names of all analysis targets, in report order: the ten algorithms
/// of the paper first, then the three naive witnesses.
pub const TARGET_NAMES: [&str; 13] = [
    "SyncSm",
    "PeriodicSm",
    "SemiSyncSm",
    "SporadicSm",
    "AsyncSm",
    "SyncMp",
    "PeriodicMp",
    "SemiSyncMp",
    "SporadicMp",
    "AsyncMp",
    "NaivePeriodicSm",
    "NaiveSemiSyncSm",
    "NaiveSporadicMp",
];

/// The names of all analysis targets.
pub fn target_names() -> &'static [&'static str] {
    &TARGET_NAMES
}

/// A target ready to explore: its scope, the timing bounds counterexample
/// traces must satisfy, and the exploration roots (one per first-step or
/// period assignment).
#[derive(Debug)]
pub struct TargetSpace {
    /// The explored scope: dimensions, menus and the depth budget.
    pub scope: Scope,
    /// The timing bounds every counterexample trace must satisfy.
    pub bounds: KnownBounds,
    /// The exploration roots.
    pub roots: Vec<AnyMachine>,
}

impl TargetSpace {
    /// Runs the full analysis pipeline over this space — exploration with
    /// `opts`, counterexample reconstruction and self-check — reporting
    /// the target under `name`.
    pub fn analyze(&self, name: &str, opts: ExploreOpts) -> Report {
        analyze_space(name, self, opts, &mut session_obs::NullRecorder)
    }
}

fn dur(value: i64) -> Dur {
    Dur::from_int(value.into())
}

/// Shared-memory roots, one per assignment of first step times from the
/// gap menu (every later step re-picks its gap from the same menu).
fn sm_per_step_roots(ports: Vec<SmAlgo>, n: usize, b: usize, gaps: &[Dur]) -> Vec<AnyMachine> {
    let (algos, num_vars) = sm_system_algos(ports, n, b);
    let k = algos.len();
    assignments(gaps, k)
        .into_iter()
        .map(|firsts| {
            AnyMachine::Sm(SmMachine::new(
                algos.clone(),
                num_vars,
                b,
                n,
                GapMode::PerStep(gaps.to_vec()),
                firsts.into_iter().map(|g| Time::ZERO + g).collect(),
            ))
        })
        .collect()
}

/// Shared-memory roots for the periodic model, one per assignment of a
/// fixed period to every process (the period is also the first step time).
fn sm_periodic_roots(ports: Vec<SmAlgo>, n: usize, b: usize, periods: &[Dur]) -> Vec<AnyMachine> {
    let (algos, num_vars) = sm_system_algos(ports, n, b);
    let k = algos.len();
    assignments(periods, k)
        .into_iter()
        .map(|assigned| {
            let firsts = assigned.iter().map(|&p| Time::ZERO + p).collect();
            AnyMachine::Sm(SmMachine::new(
                algos.clone(),
                num_vars,
                b,
                n,
                GapMode::FixedPerProcess(assigned),
                firsts,
            ))
        })
        .collect()
}

/// Message-passing roots, one per assignment of first step times from
/// `firsts` (usually the gap menu itself; the sporadic targets use a
/// separate first-step menu because the stale-evidence schedules need a
/// first step that is neither the fastest gap nor the pause).
fn mp_per_step_roots(
    algos: Vec<MpAlgo>,
    firsts: &[Dur],
    gaps: &[Dur],
    delays: &[Dur],
) -> Vec<AnyMachine> {
    let k = algos.len();
    assignments(firsts, k)
        .into_iter()
        .map(|firsts| {
            AnyMachine::Mp(MpMachine::new(
                algos.clone(),
                GapMode::PerStep(gaps.to_vec()),
                delays.to_vec(),
                firsts.into_iter().map(|g| Time::ZERO + g).collect(),
            ))
        })
        .collect()
}

/// Message-passing roots for the periodic model, one per period
/// assignment.
fn mp_periodic_roots(algos: Vec<MpAlgo>, periods: &[Dur], delays: &[Dur]) -> Vec<AnyMachine> {
    let k = algos.len();
    assignments(periods, k)
        .into_iter()
        .map(|assigned| {
            let firsts = assigned.iter().map(|&p| Time::ZERO + p).collect();
            AnyMachine::Mp(MpMachine::new(
                algos.clone(),
                GapMode::FixedPerProcess(assigned),
                delays.to_vec(),
                firsts,
            ))
        })
        .collect()
}

fn scope(
    n: usize,
    s: u64,
    b: usize,
    model: TimingModel,
    gaps: &[Dur],
    delays: &[Dur],
    max_depth: usize,
) -> Scope {
    Scope {
        n,
        s,
        b,
        model,
        gaps: gaps.to_vec(),
        delays: delays.to_vec(),
        max_depth,
    }
}

/// The registry's default dimensions `(n, s)` for the named target.
fn default_dims(name: &str) -> Option<(usize, u64)> {
    match name {
        "SyncSm" | "SyncMp" => Some((4, 3)),
        "NaiveSporadicMp" => Some((2, 3)),
        "PeriodicSm" | "SemiSyncSm" | "SporadicSm" | "AsyncSm" | "PeriodicMp" | "SemiSyncMp"
        | "SporadicMp" | "AsyncMp" | "NaivePeriodicSm" | "NaiveSemiSyncSm" => Some((2, 2)),
        _ => None,
    }
}

/// Depth budgets scale with the dimensions: `base` is the hand-tuned
/// budget at the registry's default `(n, s)`, and rebuilding the target
/// at another scope rescales it proportionally (events per quiescent run
/// grow like `n·s` for every target here), floored so tiny scopes still
/// get room to quiesce.
fn scaled_depth(base: usize, n: usize, s: u64, defaults: (usize, u64)) -> usize {
    let (dn, ds) = defaults;
    let s = usize::try_from(s).expect("tiny scope");
    let ds = usize::try_from(ds).expect("tiny scope");
    ((base * n * s) / (dn * ds)).max(12)
}

/// Builds the named target at dimensions `(n, s)`, or `None` for an
/// unknown name. All other scope constants (the `b`-bound, the timing
/// parameters and the derived gap/delay menus) are per-target fixtures.
#[allow(clippy::too_many_lines)]
fn build_target_at(name: &str, n: usize, s: u64) -> Option<TargetSpace> {
    let expect_bounds = "scope constants are valid bounds";
    let expect_algo = "scope constants are valid algorithm parameters";
    let defaults = default_dims(name)?;
    let depth = |base: usize| scaled_depth(base, n, s, defaults);
    match name {
        // A(syn), shared memory: s silent steps each; gap forced to c2.
        "SyncSm" => {
            let b = 2;
            let gaps = [dur(1)];
            let ports = (0..n)
                .map(|i| SmAlgo::Sync(SyncSmPort::new(VarId::new(i), s)))
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, b, TimingModel::Synchronous, &gaps, &[], depth(40)),
                bounds: KnownBounds::synchronous(dur(1), dur(1)).expect(expect_bounds),
                roots: sm_per_step_roots(ports, n, b, &gaps),
            })
        }
        // A(p), shared memory: announce step counts over the tree; each
        // process runs at one of the candidate periods.
        "PeriodicSm" => {
            let b = 2;
            let periods = [dur(1), dur(2)];
            let ports = (0..n)
                .map(|i| {
                    SmAlgo::Periodic(PeriodicSmPort::new(ProcessId::new(i), VarId::new(i), s, n))
                })
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, b, TimingModel::Periodic, &periods, &[], depth(160)),
                bounds: KnownBounds::periodic(dur(1)).expect(expect_bounds),
                roots: sm_periodic_roots(ports, n, b, &periods),
            })
        }
        // A(ss), shared memory: at c1=1, c2=3 the step-counting arm wins
        // (block 4 <= the tree flood bound); gaps range over {c1, c2}.
        "SemiSyncSm" => {
            let b = 2;
            let (c1, c2) = (dur(1), dur(3));
            let gaps = [c1, c2];
            let comm_rounds = TreeSpec::build(n, b).flood_rounds_bound();
            let ports = (0..n)
                .map(|i| {
                    SmAlgo::SemiSync(
                        SemiSyncSmPort::new(
                            ProcessId::new(i),
                            VarId::new(i),
                            s,
                            n,
                            c1,
                            c2,
                            comm_rounds,
                        )
                        .expect(expect_algo),
                    )
                })
                .collect();
            Some(TargetSpace {
                scope: scope(
                    n,
                    s,
                    b,
                    TimingModel::SemiSynchronous,
                    &gaps,
                    &[],
                    depth(100),
                ),
                bounds: KnownBounds::semi_synchronous(c1, c2, dur(1)).expect(expect_bounds),
                roots: sm_per_step_roots(ports, n, b, &gaps),
            })
        }
        // Sporadic shared memory runs the wave protocol A(a) (only c1 is
        // known); the slow gap is the bounded-unfairness window.
        "SporadicSm" => {
            let b = 2;
            let gaps = [dur(1), dur(3)];
            let ports = (0..n)
                .map(|i| SmAlgo::Async(AsyncSmPort::new(ProcessId::new(i), VarId::new(i), s, n)))
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, b, TimingModel::Sporadic, &gaps, &[], depth(160)),
                bounds: KnownBounds::sporadic(dur(1), Dur::ZERO, dur(1)).expect(expect_bounds),
                roots: sm_per_step_roots(ports, n, b, &gaps),
            })
        }
        // A(a), shared memory: the wave protocol with nothing known.
        "AsyncSm" => {
            let b = 2;
            let gaps = [dur(1), dur(3)];
            let ports = (0..n)
                .map(|i| SmAlgo::Async(AsyncSmPort::new(ProcessId::new(i), VarId::new(i), s, n)))
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, b, TimingModel::Asynchronous, &gaps, &[], depth(160)),
                bounds: KnownBounds::asynchronous(),
                roots: sm_per_step_roots(ports, n, b, &gaps),
            })
        }
        // A(syn), message passing: silent; gap and delay both forced.
        "SyncMp" => {
            let gaps = [dur(1)];
            let delays = [dur(1)];
            let algos = (0..n).map(|_| MpAlgo::Sync(SyncMpPort::new(s))).collect();
            Some(TargetSpace {
                scope: scope(n, s, 0, TimingModel::Synchronous, &gaps, &delays, depth(40)),
                bounds: KnownBounds::synchronous(dur(1), dur(1)).expect(expect_bounds),
                roots: mp_per_step_roots(algos, &gaps, &gaps, &delays),
            })
        }
        // A(p), message passing: broadcast the (s-1)-th step.
        "PeriodicMp" => {
            let periods = [dur(1), dur(2)];
            let delays = [Dur::ZERO, dur(1)];
            let algos = (0..n)
                .map(|_| MpAlgo::Periodic(PeriodicMpPort::new(s, n)))
                .collect();
            Some(TargetSpace {
                scope: scope(
                    n,
                    s,
                    0,
                    TimingModel::Periodic,
                    &periods,
                    &delays,
                    depth(120),
                ),
                bounds: KnownBounds::periodic(dur(1)).expect(expect_bounds),
                roots: mp_periodic_roots(algos, &periods, &delays),
            })
        }
        // A(ss), message passing: at c1=1, c2=2, d2=1 the communicating
        // arm wins (c2·block = 6 > d2 + c2 = 3).
        "SemiSyncMp" => {
            let (c1, c2, d2) = (dur(1), dur(2), dur(1));
            let gaps = [c1, c2];
            let delays = [Dur::ZERO, d2];
            let algos = (0..n)
                .map(|_| {
                    MpAlgo::SemiSync(SemiSyncMpPort::new(s, n, c1, c2, d2).expect(expect_algo))
                })
                .collect();
            Some(TargetSpace {
                scope: scope(
                    n,
                    s,
                    0,
                    TimingModel::SemiSynchronous,
                    &gaps,
                    &delays,
                    depth(120),
                ),
                bounds: KnownBounds::semi_synchronous(c1, c2, d2).expect(expect_bounds),
                roots: mp_per_step_roots(algos, &gaps, &gaps, &delays),
            })
        }
        // A(sp): freshness evidence with B = floor(u/c1) + 1 = 2; the slow
        // gap (3 > d2 + c1) lets one process outwait the other's in-flight
        // evidence, which is exactly what conditions 1/2 must survive.
        "SporadicMp" => {
            let (c1, d1, d2) = (dur(1), Dur::ZERO, dur(1));
            let firsts = [c1, dur(2)];
            let gaps = [c1, dur(3)];
            let delays = [d1, d2];
            let algos = (0..n)
                .map(|i| {
                    MpAlgo::Sporadic(
                        SporadicMpPort::new(ProcessId::new(i), s, n, c1, d1, d2)
                            .expect(expect_algo),
                    )
                })
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, 0, TimingModel::Sporadic, &gaps, &delays, depth(80)),
                bounds: KnownBounds::sporadic(c1, d1, d2).expect(expect_bounds),
                roots: mp_per_step_roots(algos, &firsts, &gaps, &delays),
            })
        }
        // A(a), message passing: the wave protocol with nothing known.
        "AsyncMp" => {
            let gaps = [dur(1), dur(3)];
            let delays = [Dur::ZERO, dur(2)];
            let algos = (0..n)
                .map(|_| MpAlgo::Async(AsyncMpPort::new(s, n)))
                .collect();
            Some(TargetSpace {
                scope: scope(
                    n,
                    s,
                    0,
                    TimingModel::Asynchronous,
                    &gaps,
                    &delays,
                    depth(120),
                ),
                bounds: KnownBounds::asynchronous(),
                roots: mp_per_step_roots(algos, &gaps, &gaps, &delays),
            })
        }
        // Witness: s silent steps under the periodic model, ignoring that
        // other processes may run at a different period → SA001.
        "NaivePeriodicSm" => {
            let b = 2;
            let periods = [dur(1), dur(2)];
            let ports = (0..n)
                .map(|i| SmAlgo::Naive(naive_periodic_sm_port(VarId::new(i), s)))
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, b, TimingModel::Periodic, &periods, &[], depth(160)),
                bounds: KnownBounds::periodic(dur(1)).expect(expect_bounds),
                roots: sm_periodic_roots(ports, n, b, &periods),
            })
        }
        // Witness: step counting with a halved block constant: at c1=1,
        // c2=3 the cheat needs 3 steps where 5 are required → SA001. (At
        // c2=2 the halved block happens to still suffice for n=2 — the
        // borderline the analyzer itself surfaced.)
        "NaiveSemiSyncSm" => {
            let b = 2;
            let (c1, c2) = (dur(1), dur(3));
            let gaps = [c1, c2];
            let ports = (0..n)
                .map(|i| {
                    SmAlgo::CheatStepCounting(
                        naive_semisync_sm_port(VarId::new(i), s, c1, c2).expect(expect_algo),
                    )
                })
                .collect();
            Some(TargetSpace {
                scope: scope(
                    n,
                    s,
                    b,
                    TimingModel::SemiSynchronous,
                    &gaps,
                    &[],
                    depth(100),
                ),
                bounds: KnownBounds::semi_synchronous(c1, c2, dur(1)).expect(expect_bounds),
                roots: sm_per_step_roots(ports, n, b, &gaps),
            })
        }
        // Witness: A(sp) with the waiting constant overridden to B = 0,
        // certifying sessions from stale evidence → SA003.
        "NaiveSporadicMp" => {
            let (c1, d1, d2) = (dur(1), Dur::ZERO, dur(2));
            let firsts = [c1, dur(2)];
            let gaps = [c1, dur(3)];
            // A single-delay menu keeps the space tractable; the staleness
            // schedule only needs a delivery ordered after the claiming
            // step at the same instant, not a delay spread.
            let delays = [d2];
            let algos = (0..n)
                .map(|i| MpAlgo::Sporadic(naive_sporadic_mp_port(ProcessId::new(i), s, n)))
                .collect();
            Some(TargetSpace {
                scope: scope(n, s, 0, TimingModel::Sporadic, &gaps, &delays, depth(60)),
                bounds: KnownBounds::sporadic(c1, d1, d2).expect(expect_bounds),
                roots: mp_per_step_roots(algos, &firsts, &gaps, &delays),
            })
        }
        _ => None,
    }
}

/// The named target's scope, bounds and roots at the registry's default
/// dimensions, without analyzing it. `None` for an unknown name.
pub fn target_space(name: &str) -> Option<TargetSpace> {
    let (n, s) = default_dims(name)?;
    build_target_at(name, n, s)
}

/// The named target rebuilt at dimensions `(n, s)` — same algorithms,
/// same timing menus, proportionally rescaled depth budget. `None` for an
/// unknown name. The differential harness uses this to compare reduced
/// and unreduced explorations across scopes.
pub fn scoped_target_space(name: &str, n: usize, s: u64) -> Option<TargetSpace> {
    build_target_at(name, n, s)
}

/// The periodic message-passing target at dimensions `(n, s)` with a
/// caller-chosen delay menu (the period menu stays the registry fixture
/// `[1, 2]`). The symbolic bench widens the delay menu through this:
/// the explicit explorer enumerates one remaining-delay value per menu
/// entry for every in-flight message, so its state count grows with the
/// menu's size, while the zone walker only records the menu's hull
/// `[d1, d2]` as a DBM bound and is insensitive to how finely the
/// window is sampled — that widening gap is exactly what the bench
/// measures.
pub fn periodic_mp_space_with_delays(n: usize, s: u64, delays: &[Dur]) -> TargetSpace {
    let periods = [dur(1), dur(2)];
    let d2 = delays
        .iter()
        .copied()
        .max()
        .unwrap_or(Dur::ZERO)
        .max(dur(1));
    let algos = (0..n)
        .map(|_| MpAlgo::Periodic(PeriodicMpPort::new(s, n)))
        .collect();
    TargetSpace {
        scope: scope(
            n,
            s,
            0,
            TimingModel::Periodic,
            &periods,
            delays,
            scaled_depth(120, n, s, (2, 2)),
        ),
        bounds: KnownBounds::periodic(d2).expect("a positive delay bound is valid"),
        roots: mp_periodic_roots(algos, &periods, delays),
    }
}

/// Recomputes the incremental session count along `path`, for
/// cross-checking against the reference counter in the self-check.
fn incremental_sessions(root: &AnyMachine, path: &[usize], n: usize, s: u64) -> u64 {
    let mut machine = root.clone();
    let mut counter = SessionCounter::new(n, s);
    for &choice in path {
        let info = machine.apply(choice, None);
        counter.observe(&info);
    }
    counter.sessions()
}

/// The shared analysis pipeline: explores `built` under `opts`,
/// reconstructs and self-checks a counterexample for every violation, and
/// returns the report with the exploration's summary row.
fn analyze_space(
    name: &str,
    built: &TargetSpace,
    opts: ExploreOpts,
    recorder: &mut dyn session_obs::Recorder,
) -> Report {
    analyze_space_flight(name, built, opts, recorder, &FlightOpts::default()).0
}

/// [`analyze_space`] with the flight recorder attached: the second return
/// is the exploration's [`ExploreProfile`] (target name filled in) when
/// `flight.profile` asked for one.
fn analyze_space_flight(
    name: &str,
    built: &TargetSpace,
    opts: ExploreOpts,
    recorder: &mut dyn session_obs::Recorder,
    flight: &FlightOpts,
) -> (Report, Option<ExploreProfile>) {
    let (exploration, mut profile) = explore_flight(
        &built.roots,
        built.scope.n,
        built.scope.s,
        built.scope.max_depth,
        opts,
        recorder,
        flight,
    );
    if let Some(profile) = &mut profile {
        profile.target = name.to_string();
    }
    let mut report = Report::default();
    report.targets.push(TargetSummary {
        name: name.to_string(),
        states: exploration.states,
        pruned: exploration.stats.pruned,
        memo_hits: exploration.stats.memo_hits,
        truncated: exploration.truncated,
        depth_hits: exploration.depth_hits,
    });
    for violation in &exploration.violations {
        let root = &built.roots[violation.root];
        let counterexample = replay::replay(root, &violation.path);
        // The explorer's count is only the full-trace count at a quiescent
        // leaf; mid-path violations skip the counter cross-check.
        let expected = (violation.code == LintCode::SessionDeficit)
            .then(|| incremental_sessions(root, &violation.path, built.scope.n, built.scope.s));
        let problems = replay::self_check(root, &counterexample, &built.bounds, expected);
        let repro = replay::repro_string(violation.root, &violation.path);
        report.findings.push(Diagnostic {
            code: violation.code,
            target: name.to_string(),
            message: violation.message.clone(),
            scope: built.scope.describe(),
            repro: repro.clone(),
            counterexample: replay::render(&counterexample, RENDER_LINES),
        });
        // A failed self-check means the checker's model drifted from the
        // system itself: report it loudly rather than trusting the finding.
        for problem in problems {
            report.findings.push(Diagnostic {
                code: LintCode::InadmissibleStep,
                target: name.to_string(),
                message: format!("counterexample self-check failed: {problem}"),
                scope: built.scope.describe(),
                repro: repro.clone(),
                counterexample: String::new(),
            });
        }
    }
    (report, profile)
}

/// Analyzes one named target: explores its complete state space at scope,
/// reconstructs and self-checks a counterexample for every violation, and
/// returns the report. `None` for an unknown target name.
pub fn analyze_target(name: &str) -> Option<Report> {
    analyze_target_recorded(name, &mut session_obs::NullRecorder)
}

/// [`analyze_target`] with instrumentation: forwards the explorer's
/// `explore.*` metrics (memo hit/miss counters, frontier-depth histogram,
/// states and states/sec gauges) to `recorder`.
pub fn analyze_target_recorded(
    name: &str,
    recorder: &mut dyn session_obs::Recorder,
) -> Option<Report> {
    analyze_target_with(name, ExploreOpts::default(), recorder)
}

/// [`analyze_target_recorded`] with reduction layers enabled per `opts`.
/// The differential harness in `tests/reduction_diff.rs` proves every
/// `opts` combination yields the same verdicts.
pub fn analyze_target_with(
    name: &str,
    opts: ExploreOpts,
    recorder: &mut dyn session_obs::Recorder,
) -> Option<Report> {
    let built = target_space(name)?;
    Some(analyze_space(name, &built, opts, recorder))
}

/// [`analyze_target_with`] with the flight recorder attached (DESIGN.md
/// §15): the second return is the exploration's [`ExploreProfile`] when
/// `flight.profile` asked for one; a progress board in `flight.progress`
/// receives batched live updates either way. The report is bit-identical
/// with or without the flight recorder (asserted by the invariance test
/// in `tests/full_pipeline.rs`).
pub fn analyze_target_flight(
    name: &str,
    opts: ExploreOpts,
    recorder: &mut dyn session_obs::Recorder,
    flight: &FlightOpts,
) -> Option<(Report, Option<ExploreProfile>)> {
    let built = target_space(name)?;
    Some(analyze_space_flight(name, &built, opts, recorder, flight))
}

/// [`analyze_target_flight`] over the target rebuilt at dimensions
/// `(n, s)` (see [`scoped_target_space`]) — the CLI's `n=`/`s=` options.
pub fn analyze_scoped_target_flight(
    name: &str,
    n: usize,
    s: u64,
    opts: ExploreOpts,
    recorder: &mut dyn session_obs::Recorder,
    flight: &FlightOpts,
) -> Option<(Report, Option<ExploreProfile>)> {
    let built = scoped_target_space(name, n, s)?;
    Some(analyze_space_flight(name, &built, opts, recorder, flight))
}

/// Analyzes every target in [`TARGET_NAMES`] order and merges the reports.
pub fn analyze_all() -> Report {
    analyze_all_with(ExploreOpts::default())
}

/// [`analyze_all`] with reduction layers enabled per `opts`.
pub fn analyze_all_with(opts: ExploreOpts) -> Report {
    let mut report = Report::default();
    for name in TARGET_NAMES {
        let target_report = analyze_target_with(name, opts, &mut session_obs::NullRecorder)
            .expect("TARGET_NAMES entries are buildable");
        report.merge(target_report);
    }
    report
}

/// The paper's Table 1 closing-time bound for the named target, as an
/// exact value plus the formula it instantiates, or `None` for targets
/// whose Table 1 row is not a real-time bound at this scope: the
/// asynchronous rows (round-counted, not timed), sporadic shared memory
/// (runs the asynchronous wave protocol), and the naive witnesses (which
/// have no bound to honor — they are supposed to be flagged).
///
/// `c_max` is the largest period/gap in the scope's menu: at a finite
/// menu scope it plays the role of the model's `c2`/period upper bound.
pub fn table1_bound(name: &str, scope: &Scope, bounds: &KnownBounds) -> Option<(Dur, String)> {
    let expect_c2 = "timed models know c2";
    let expect_d2 = "message-passing timed models know d2";
    let c_max = scope.gaps.iter().copied().max()?;
    match name {
        "SyncSm" | "SyncMp" => {
            let c2 = bounds.c2().expect(expect_c2);
            Some((
                session_core::bounds::sync_time(scope.s, c2),
                "c2*s".to_string(),
            ))
        }
        "PeriodicSm" => {
            let spec = SessionSpec::new(scope.s, scope.n, scope.b).expect("scope is a valid spec");
            let rounds = TreeSpec::build(scope.n, scope.b).flood_rounds_bound();
            Some((
                session_core::bounds::periodic_sm_upper(&spec, c_max, rounds),
                format!("c_max*s + c_max*R (R = {rounds} flood rounds)"),
            ))
        }
        "PeriodicMp" => {
            let d2 = bounds.d2().expect(expect_d2);
            Some((
                session_core::bounds::periodic_mp_upper(scope.s, c_max, d2),
                "c_max*s + d2".to_string(),
            ))
        }
        "SemiSyncSm" => {
            let c1 = bounds.c1().expect("semi-synchronous model knows c1");
            let c2 = bounds.c2().expect(expect_c2);
            let rounds = TreeSpec::build(scope.n, scope.b).flood_rounds_bound();
            Some((
                session_core::bounds::semisync_sm_upper(scope.s, c1, c2, rounds),
                format!("min(floor(c2/c1)+1, R)*c2*(s-1) + c2 (R = {rounds})"),
            ))
        }
        "SemiSyncMp" => {
            let c1 = bounds.c1().expect("semi-synchronous model knows c1");
            let c2 = bounds.c2().expect(expect_c2);
            let d2 = bounds.d2().expect(expect_d2);
            Some((
                session_core::bounds::semisync_mp_upper(scope.s, c1, c2, d2),
                "min(c2*(floor(c2/c1)+1), d2+c2)*(s-1) + c2".to_string(),
            ))
        }
        "SporadicMp" => {
            let c1 = bounds.c1().expect("sporadic model knows c1");
            let d1 = bounds.d1().expect("sporadic model knows d1");
            let d2 = bounds.d2().expect(expect_d2);
            Some((
                session_core::bounds::sporadic_mp_upper(scope.s, c1, d1, d2, c_max),
                "min(gamma*(floor(u/c1)+3)+u, d2+gamma)*(s-1) + gamma (u = d2-d1, gamma = slowest menu gap)"
                    .to_string(),
            ))
        }
        _ => None,
    }
}

/// The zone walker's depth budget for the named target. Almost every
/// target uses the explicit explorer's budget, so an untruncated walk
/// certifies the same horizon. The exception is the naive sporadic
/// witness: it streams messages without ever going idle, and the zone
/// graph over the accumulating in-flight clocks grows far faster than
/// the explicit space — a clamped budget still reaches its `SA003`
/// violation (that is what a witness is for) and the truncation is
/// reported, which also correctly disables the SA011/SA012 clean
/// verdicts for it.
pub fn symbolic_depth(name: &str, scope: &Scope) -> usize {
    match name {
        "NaiveSporadicMp" => scope.max_depth.min(16),
        _ => scope.max_depth,
    }
}

/// Runs the symbolic pipeline over an already-built space — dead-branch
/// scan, zone-graph walk, Table 1 comparison and the explicit/symbolic
/// reachability cross-check — reporting the target under
/// `"{name} (symbolic)"`. Symbolic findings carry no repro or rendered
/// counterexample: the zone graph collapses all schedules with one event
/// order, so there is no single timed trace to replay.
pub fn analyze_space_symbolic(name: &str, built: &TargetSpace) -> Report {
    analyze_space_symbolic_recorded(name, built, &mut session_obs::NullRecorder)
}

/// [`analyze_space_symbolic`] with instrumentation: emits the zone
/// walker's `zones.*` counters (zone states, explicit mirror states, DBM
/// guard-zone closures, worst-close memo hits) and — because an enabled
/// recorder switches the walk into its timed mode — the per-closure
/// `zones.dbm_close_us` histogram, so `session-cli stats` can render the
/// symbolic engine in the unified snapshot.
pub fn analyze_space_symbolic_recorded(
    name: &str,
    built: &TargetSpace,
    recorder: &mut dyn session_obs::Recorder,
) -> Report {
    let mut scope = built.scope.clone();
    scope.max_depth = symbolic_depth(name, &built.scope);
    let table1 = table1_bound(name, &scope, &built.bounds);
    let timed = recorder.is_enabled();
    let analysis =
        crate::zones::analyze_symbolic_timed(&built.roots, &scope, &built.bounds, table1, timed);
    if recorder.is_enabled() {
        recorder.counter("zones.zone_states", analysis.zone_states);
        recorder.counter("zones.explicit_states", analysis.explicit_states);
        recorder.counter("zones.dbm_closures", analysis.dbm_closures);
        recorder.counter(
            "zones.worst_close_memo_hits",
            analysis.worst_close_memo_hits,
        );
        recorder.merge_histogram("zones.dbm_close_us", &analysis.dbm_close);
    }
    let mut report = Report::default();
    report.targets.push(TargetSummary {
        name: format!("{name} (symbolic)"),
        states: analysis.zone_states,
        pruned: 0,
        memo_hits: 0,
        truncated: analysis.truncated,
        depth_hits: 0,
    });
    let scope_desc = format!("{} engine=symbolic", scope.describe());
    for (code, message) in &analysis.findings {
        report.findings.push(Diagnostic {
            code: *code,
            target: name.to_string(),
            message: message.clone(),
            scope: scope_desc.clone(),
            repro: String::new(),
            counterexample: String::new(),
        });
    }
    report
}

/// Analyzes one named target with the symbolic engine only: walks the
/// zone graph at the registry's default dimensions and reports `SA010`
/// (dead timing branches), `SA011` (symbolic worst-case session-close
/// time beyond the Table 1 bound) and `SA012` (explicit/symbolic
/// reachability divergence). `None` for an unknown target name.
pub fn analyze_target_symbolic(name: &str) -> Option<Report> {
    let built = target_space(name)?;
    Some(analyze_space_symbolic(name, &built))
}

/// [`analyze_target_symbolic`] with instrumentation (see
/// [`analyze_space_symbolic_recorded`]).
pub fn analyze_target_symbolic_recorded(
    name: &str,
    recorder: &mut dyn session_obs::Recorder,
) -> Option<Report> {
    let built = target_space(name)?;
    Some(analyze_space_symbolic_recorded(name, &built, recorder))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in TARGET_NAMES {
            assert!(target_space(name).is_some(), "{name} must build");
        }
        assert!(target_space("NoSuchTarget").is_none());
        assert!(scoped_target_space("NoSuchTarget", 2, 2).is_none());
    }

    #[test]
    fn root_counts_stay_small() {
        for name in TARGET_NAMES {
            let built = target_space(name).expect("known name");
            assert!(
                (1..=8).contains(&built.roots.len()),
                "{name} has {} roots",
                built.roots.len()
            );
        }
    }

    #[test]
    fn scoped_spaces_rescale_dimensions_and_depth() {
        let default = target_space("SyncMp").expect("known name");
        assert_eq!((default.scope.n, default.scope.s), (4, 3));
        let scoped = scoped_target_space("SyncMp", 3, 3).expect("known name");
        assert_eq!((scoped.scope.n, scoped.scope.s), (3, 3));
        assert_eq!(scoped.roots.len(), 1, "single-gap menu has one root");
        assert!(
            scoped.scope.max_depth < default.scope.max_depth,
            "smaller scope gets a proportionally smaller budget"
        );
        assert!(scoped.scope.max_depth >= 12, "budget floor holds");
    }

    #[test]
    fn sync_sm_is_clean() {
        let report = analyze_target("SyncSm").expect("known name");
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
        assert!(report.targets[0].states > 0, "must have explored states");
    }
}
