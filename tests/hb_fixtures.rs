//! Fixture tests for the happens-before trace analyzer (`SA007`–`SA009`),
//! driven end to end through the `analyze trace=` command surface: each
//! positive fixture is a crafted JSONL stream firing exactly one causality
//! lint, each negative fixture is a conformant stream that stays clean
//! (exit code 0).

use session_problem::analyze::AnalyzeConfig;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn analyze(name: &str) -> (String, i32) {
    let config = AnalyzeConfig::parse([format!("trace={}", fixture(name))]).expect("trace= parses");
    config.execute().expect("fixture parses as an event stream")
}

#[test]
fn positive_fixtures_fire_their_lint_and_only_it() {
    for (name, code) in [
        ("sa007_session_race.jsonl", "SA007"),
        ("sa008_unordered_close.jsonl", "SA008"),
        ("sa009_model_mismatch.jsonl", "SA009"),
    ] {
        let (out, exit) = analyze(name);
        assert_eq!(exit, 1, "{name} must deny: {out}");
        assert!(out.contains(code), "{name} must fire {code}: {out}");
        for other in ["SA007", "SA008", "SA009"] {
            if other != code {
                assert!(
                    !out.contains(other),
                    "{name} must fire only {code}, also got {other}: {out}"
                );
            }
        }
    }
}

#[test]
fn negative_fixtures_stay_clean() {
    for name in [
        "clean_message_trace.jsonl",
        "clean_sporadic_claim.jsonl",
        "clean_rational_times.jsonl",
    ] {
        let (out, exit) = analyze(name);
        assert_eq!(exit, 0, "{name} must be clean: {out}");
        assert!(out.contains("No findings."), "{name}: {out}");
    }
}

#[test]
fn model_override_flips_a_clean_trace() {
    // The rational-times fixture carries no claim, so SA009 cannot fire —
    // but its two steps have no gaps at all, so any override stays clean
    // too; use the lockstep fixture's shape instead: overriding the
    // sporadic fixture's claim to asynchronous keeps it clean (gaps and
    // delays are varied), while the SA009 fixture minus its claim is
    // clean until a model override restores the mismatch.
    let path = fixture("sa009_model_mismatch.jsonl");
    let config =
        AnalyzeConfig::parse([format!("trace={path}"), "model=synchronous".to_owned()]).unwrap();
    let (out, exit) = config.execute().unwrap();
    assert_eq!(exit, 0, "a lockstep trace really is synchronous: {out}");

    let config =
        AnalyzeConfig::parse([format!("trace={path}"), "model=sporadic".to_owned()]).unwrap();
    let (out, exit) = config.execute().unwrap();
    assert_eq!(exit, 1, "lockstep under a sporadic claim mismatches: {out}");
    assert!(out.contains("SA009"), "{out}");
}

#[test]
fn trace_and_targets_combine_into_one_report() {
    let config = AnalyzeConfig::parse([
        "SyncSm".to_owned(),
        format!("trace={}", fixture("clean_message_trace.jsonl")),
    ])
    .unwrap();
    let (out, exit) = config.execute().unwrap();
    assert_eq!(exit, 0, "{out}");
    assert!(out.contains("| SyncSm |"), "{out}");
    assert!(out.contains("clean_message_trace.jsonl"), "{out}");
}
