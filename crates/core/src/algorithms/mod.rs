//! The session algorithms, one per cell of Table 1.
//!
//! | Timing model | Shared memory | Message passing |
//! |---|---|---|
//! | Synchronous | [`SyncSmPort`] | [`SyncMpPort`] |
//! | Periodic | [`PeriodicSmPort`] (the paper's `A(p)`) | [`PeriodicMpPort`] (`A(p)`) |
//! | Semi-synchronous | [`SemiSyncSmPort`] | [`SemiSyncMpPort`] |
//! | Sporadic | [`SporadicSmPort`] (≡ asynchronous, §1) | [`SporadicMpPort`] (the paper's `A(sp)`) |
//! | Asynchronous | [`AsyncSmPort`] | [`AsyncMpPort`] |
//!
//! Every type here implements a *port process*; the surrounding system
//! (tree network for shared memory, broadcast network for message passing)
//! is assembled by [`crate::system`]. None of the algorithms ever sees a
//! clock: their inputs are their own state, what they read or receive, and
//! the model constants of [`session_types::KnownBounds`].

mod mp_async;
mod mp_periodic;
mod mp_semisync;
mod mp_sporadic;
mod mp_sync;
mod sm_async;
mod sm_periodic;
mod sm_semisync;
mod sm_sync;

pub use mp_async::AsyncMpPort;
pub use mp_periodic::PeriodicMpPort;
pub use mp_semisync::{MpStrategy, SemiSyncMpPort, StepCountingMpPort};
pub use mp_sporadic::SporadicMpPort;
pub use mp_sync::SyncMpPort;
pub use sm_async::AsyncSmPort;
pub use sm_periodic::PeriodicSmPort;
pub use sm_semisync::{SemiSyncSmPort, SmStrategy, StepCountingSmPort};
pub use sm_sync::SyncSmPort;

/// The sporadic shared-memory model is "essentially equal to the
/// asynchronous shared memory model" (§1) — the sporadic constraint adds a
/// lower bound on step time but no upper bound and no messages, so nothing
/// a shared-memory algorithm could exploit. The paper's Table 1 says
/// "See Async. SM"; so do we.
pub type SporadicSmPort = AsyncSmPort;
