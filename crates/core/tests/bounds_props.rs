//! Property-based sanity of the Table 1 closed forms: lower bounds never
//! exceed upper bounds, and each formula is monotone in the parameters the
//! paper's discussion says it should be.

use proptest::prelude::*;
use session_core::bounds;
use session_types::{Dur, SessionSpec};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

proptest! {
    /// Every row's L <= U at matching parameters (with a generous concrete
    /// flood constant for the O(log) terms and γ >= the slowest step).
    #[test]
    fn lower_bounds_never_exceed_upper_bounds(
        s in 1u64..12,
        n in 1usize..64,
        b in 2usize..6,
        c1 in 1i128..6,
        extra in 0i128..12,
        d1 in 0i128..8,
        du in 0i128..12,
    ) {
        let spec = SessionSpec::new(s, n, b).unwrap();
        let c2 = d(c1 + extra);
        let c1 = d(c1);
        let d2v = d(d1 + du);
        let d1v = d(d1);
        // A concrete flood bound at least as large as the paper's floor-log
        // term, as the tree construction guarantees.
        let flood = (2 * (b as u64) * (spec.log_b_n_floor() as u64 + 1)).max(2);

        prop_assert!(bounds::periodic_sm_lower(&spec, c1, c2)
            <= bounds::periodic_sm_upper(&spec, c2, flood) + c2 * 2);
        prop_assert!(bounds::periodic_mp_lower(s, c2, d2v)
            <= bounds::periodic_mp_upper(s, c2, d2v));
        prop_assert!(bounds::semisync_sm_lower(&spec, c1, c2)
            <= bounds::semisync_sm_upper(s, c1, c2, flood));
        prop_assert!(bounds::semisync_mp_lower(s, c1, c2, d2v)
            <= bounds::semisync_mp_upper(s, c1, c2, d2v));
        // Sporadic: γ can be as small as the actual slowest gap; with γ = c1
        // the upper bound is the tightest meaningful instantiation... the
        // paper's L uses K <= 2c1·d2/(d2/2) <= 4c1, so compare with γ = 4c1
        // to stay within the regime where the forms are comparable.
        let gamma = c1 * 4;
        prop_assert!(
            bounds::sporadic_mp_lower(s, c1, d1v, d2v)
                <= bounds::sporadic_mp_upper(s, c1, d1v, d2v, gamma) + d2v + gamma * 2,
            "sporadic L > U at s={s}, c1={c1}, d1={d1v}, d2={d2v}"
        );
        prop_assert!(bounds::async_sm_lower_rounds(&spec)
            <= bounds::async_sm_upper_rounds(s, flood));
        prop_assert!(bounds::async_mp_lower(s, d2v)
            <= bounds::async_mp_upper(s, c2, d2v));
    }

    /// Monotonicity in s: more sessions never cost less.
    #[test]
    fn bounds_are_monotone_in_s(
        s in 1u64..12,
        n in 1usize..32,
        c1 in 1i128..4,
        extra in 0i128..8,
        d2 in 0i128..12,
    ) {
        let c2 = d(c1 + extra);
        let c1 = d(c1);
        let d2v = d(d2);
        let spec_a = SessionSpec::new(s, n, 2).unwrap();
        let spec_b = SessionSpec::new(s + 1, n, 2).unwrap();
        prop_assert!(bounds::sync_time(s, c2) <= bounds::sync_time(s + 1, c2));
        prop_assert!(bounds::periodic_mp_upper(s, c2, d2v)
            <= bounds::periodic_mp_upper(s + 1, c2, d2v));
        prop_assert!(bounds::periodic_sm_lower(&spec_a, c1, c2)
            <= bounds::periodic_sm_lower(&spec_b, c1, c2));
        prop_assert!(bounds::semisync_mp_upper(s, c1, c2, d2v)
            <= bounds::semisync_mp_upper(s + 1, c1, c2, d2v));
        prop_assert!(bounds::sporadic_mp_lower(s, c1, Dur::ZERO, d2v)
            <= bounds::sporadic_mp_lower(s + 1, c1, Dur::ZERO, d2v));
        prop_assert!(bounds::async_mp_lower(s, d2v) <= bounds::async_mp_lower(s + 1, d2v));
    }

    /// The sporadic lower bound interpolates monotonically in the delay
    /// uncertainty: growing u (shrinking d1 at fixed d2) never lowers it.
    #[test]
    fn sporadic_lower_is_monotone_in_uncertainty(
        s in 2u64..8,
        c1 in 1i128..4,
        d2 in 4i128..32,
        d1a in 0i128..32,
        d1b in 0i128..32,
    ) {
        let (lo, hi) = if d1a <= d1b { (d1a, d1b) } else { (d1b, d1a) };
        prop_assume!(hi <= d2);
        let c1 = d(c1);
        // Smaller d1 (= larger u) => bound at least as large.
        let more_uncertain = bounds::sporadic_mp_lower(s, c1, d(lo), d(d2));
        let less_uncertain = bounds::sporadic_mp_lower(s, c1, d(hi), d(d2));
        prop_assert!(
            more_uncertain >= less_uncertain,
            "u larger but bound smaller: d1={lo} gives {more_uncertain}, d1={hi} gives {less_uncertain}"
        );
    }
}
