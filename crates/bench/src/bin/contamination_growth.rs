//! Lemma 4.4, tabulated: the measured contamination spread after slowing
//! one port process, against the paper's bound `P_t = ((2b−1)^t − 1)/2`,
//! across fan-in bounds `b`.
//!
//! ```text
//! cargo run -p session-bench --bin contamination_growth
//! cargo run -p session-bench --bin contamination_growth -- --json
//! ```

use session_adversary::contamination::{contamination_analysis, lemma_bound};
use session_bench::format::{section, Row};
use session_bench::json_report::{json_flag, JsonReport};
use session_core::system::build_sm_system;
use session_types::{Dur, KnownBounds, ProcessId, SessionSpec};

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_contamination_growth.json");
    let headers = [
        "subround t",
        "|P(t)| measured",
        "P_t bound",
        "new contaminated vars",
    ];
    let mut json_sections =
        JsonReport::new("Lemma 4.4 — contamination growth vs the paper's bound");
    println!("# Lemma 4.4 — contamination growth vs the paper's bound\n");
    for (n, b) in [(16usize, 2usize), (16, 3), (25, 4)] {
        let spec = SessionSpec::new(3, n, b).expect("valid spec");
        let bounds = KnownBounds::periodic(Dur::from_int(1)).expect("valid bounds");
        let report = contamination_analysis(
            || build_sm_system(&spec, &bounds),
            n,
            ProcessId::new(n - 1),
            8,
            b,
        )
        .expect("analysis succeeds");
        assert!(report.lemma_holds);
        let rows: Vec<Row> = report
            .subrounds
            .iter()
            .map(|sub| {
                Row::new([
                    sub.subround.to_string(),
                    sub.contaminated_processes.len().to_string(),
                    lemma_bound(sub.subround, b).to_string(),
                    sub.newly_contaminated_vars.len().to_string(),
                ])
            })
            .collect();
        let title = format!(
            "n = {n}, b = {b} (slowed: p{}; contamination depth ⌊log_(2b−1)(2n−1)⌋ = {})",
            n - 1,
            spec.contamination_depth()
        );
        json_sections.section(&title, &headers, &rows);
        print!("{}", section(&title, &headers, &rows));
    }
    println!(
        "Every measured |P(t)| sits at or below the bound; until t reaches the\n\
         contamination depth some port process remains untouched — the paper's\n\
         lower-bound mechanism, visible."
    );
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, json_sections.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
