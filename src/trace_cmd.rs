//! The `session-cli trace` subcommand: run one configuration and export
//! the recorded timed computation as a Chrome trace-event / Perfetto JSON
//! file, a structured JSONL event stream, or both.
//!
//! ```text
//! session-cli trace model=periodic comm=mp s=3 n=3 d2=8 \
//!                   schedule=uniform:2 delay=const:8 out=run.perfetto.json
//! session-cli trace model=sync comm=sm s=2 n=2 jsonl=run.jsonl
//! ```
//!
//! The Perfetto file opens directly in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one track per process, step and delivery instants,
//! flow arrows per delivered message, and a `sessions` track with one
//! duration event per closed session.

use std::path::PathBuf;

use session_core::analysis::analyze;
use session_core::system::port_of;
use session_obs::export::{perfetto_json, trace_jsonl, ExportMeta};
use session_obs::NullRecorder;
use session_types::{Error, Result};

use crate::cli::CliConfig;

/// A fully parsed `trace` command line.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// The run configuration (everything `session-cli` itself accepts).
    pub run: CliConfig,
    /// Where to write the Perfetto JSON, if requested.
    pub out: Option<PathBuf>,
    /// Where to write the JSONL event stream, if requested.
    pub jsonl: Option<PathBuf>,
    /// Trace title (defaults to a description of the configuration).
    pub title: Option<String>,
}

/// The rendered exports, before any file I/O.
#[derive(Clone, Debug)]
pub struct TraceArtifacts {
    /// The Perfetto JSON document, when `out=` was given.
    pub perfetto: Option<String>,
    /// The JSONL event stream, when `jsonl=` was given.
    pub jsonl: Option<String>,
    /// One-paragraph run summary for stdout.
    pub summary: String,
}

impl TraceConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli trace [key=value ...]
  out=PATH     write Chrome trace-event / Perfetto JSON (open in ui.perfetto.dev)
  jsonl=PATH   write the structured JSONL event stream
  title=TEXT   trace title (default: the configuration description)
plus every `session-cli` run option (model=, comm=, s=, n=, schedule=,
delay=, seed=, max-steps=, ...). At least one of out= / jsonl= is required.";

    /// Parses the arguments after the `trace` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) when
    /// neither output is requested or a run option is malformed.
    pub fn parse<I, S>(args: I) -> Result<TraceConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = None;
        let mut jsonl = None;
        let mut title = None;
        let mut run_args: Vec<String> = Vec::new();
        for arg in args {
            let arg = arg.as_ref();
            match arg.split_once('=') {
                Some(("out", path)) => out = Some(PathBuf::from(path)),
                Some(("jsonl", path)) => jsonl = Some(PathBuf::from(path)),
                Some(("title", text)) => title = Some(text.to_string()),
                _ => run_args.push(arg.to_string()),
            }
        }
        if out.is_none() && jsonl.is_none() {
            return Err(Error::invalid_params(format!(
                "pass out=PATH and/or jsonl=PATH\n{}",
                TraceConfig::USAGE
            )));
        }
        let run = CliConfig::parse(&run_args)
            .map_err(|err| Error::invalid_params(format!("{err}\n{}", TraceConfig::USAGE)))?;
        Ok(TraceConfig {
            run,
            out,
            jsonl,
            title,
        })
    }

    /// Runs the configuration and renders the requested exports, without
    /// touching the filesystem (the binary writes the files; tests assert
    /// on the strings).
    ///
    /// # Errors
    ///
    /// Propagates parameter and engine errors from the run.
    pub fn render(&self) -> Result<TraceArtifacts> {
        let (report, _bounds) = self.run.run_recorded(&mut NullRecorder)?;
        let spec = self.run.spec;
        let analysis = analyze(&report.trace, spec.n(), port_of(&spec));
        let title = self
            .title
            .clone()
            .unwrap_or_else(|| format!("{} / {} — {}", self.run.model, self.run.comm, spec));
        let meta = ExportMeta::new(title)
            .with_ports(self.run.port_labels(report.trace.num_processes()))
            .with_sessions(analysis.session_close_times.clone());
        let perfetto = self
            .out
            .is_some()
            .then(|| perfetto_json(&report.trace, &meta));
        let jsonl = self
            .jsonl
            .is_some()
            .then(|| trace_jsonl(&report.trace, &meta));
        let summary = format!(
            "{}\nevents: {}   messages: {}   sessions closed: {}\n",
            meta.title,
            report.trace.len(),
            report.trace.messages().len(),
            analysis.session_close_times.len(),
        );
        Ok(TraceArtifacts {
            perfetto,
            jsonl,
            summary,
        })
    }

    /// Runs the configuration, writes the requested files and returns the
    /// printable summary.
    ///
    /// # Errors
    ///
    /// Propagates run errors and I/O errors (as [`Error::InvalidParams`]
    /// naming the path).
    pub fn execute(&self) -> Result<String> {
        let artifacts = self.render()?;
        let mut summary = artifacts.summary;
        let write = |path: &PathBuf, contents: &str| {
            std::fs::write(path, contents).map_err(|err| {
                Error::invalid_params(format!("cannot write {}: {err}", path.display()))
            })
        };
        if let (Some(path), Some(contents)) = (&self.out, &artifacts.perfetto) {
            write(path, contents)?;
            summary.push_str(&format!(
                "wrote {} (open in https://ui.perfetto.dev)\n",
                path.display()
            ));
        }
        if let (Some(path), Some(contents)) = (&self.jsonl, &artifacts.jsonl) {
            write(path, contents)?;
            summary.push_str(&format!("wrote {}\n", path.display()));
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;

    const ACCEPTANCE: [&str; 7] = [
        "model=periodic",
        "comm=mp",
        "s=3",
        "n=3",
        "d2=8",
        "schedule=uniform:2",
        "delay=const:8",
    ];

    fn acceptance_args(extra: &str) -> Vec<String> {
        ACCEPTANCE
            .iter()
            .map(ToString::to_string)
            .chain([extra.to_string()])
            .collect()
    }

    #[test]
    fn requires_an_output() {
        let err = TraceConfig::parse(ACCEPTANCE).unwrap_err();
        assert!(err.to_string().contains("usage: session-cli trace"));
    }

    #[test]
    fn bad_run_options_carry_the_trace_usage() {
        let err = TraceConfig::parse(["out=x.json", "model=quantum"]).unwrap_err();
        assert!(err.to_string().contains("usage: session-cli trace"));
    }

    #[test]
    fn acceptance_config_produces_valid_perfetto_json() {
        let config = TraceConfig::parse(acceptance_args("out=run.perfetto.json")).unwrap();
        let artifacts = config.render().unwrap();
        let perfetto = artifacts.perfetto.expect("out= requested");
        json::validate(&perfetto).expect("must parse as JSON");
        // One named track per process and the sessions track.
        for p in 0..3 {
            assert!(
                perfetto.contains(&format!("\"name\":\"p{p} (y{p})\"")),
                "{perfetto}"
            );
        }
        assert!(perfetto.contains("\"name\":\"sessions\""), "{perfetto}");
        assert!(perfetto.contains("\"name\":\"session 1\""), "{perfetto}");
        assert!(perfetto.contains("\"name\":\"session 3\""), "{perfetto}");
        assert!(artifacts.jsonl.is_none());
        // The greedy analysis counts every realized session, which can
        // exceed the required s = 3.
        assert!(artifacts.summary.contains("sessions closed: "));
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let config = TraceConfig::parse(acceptance_args("jsonl=run.jsonl")).unwrap();
        let artifacts = config.render().unwrap();
        let jsonl = artifacts.jsonl.expect("jsonl= requested");
        assert!(jsonl.lines().count() > 10);
        for line in jsonl.lines() {
            json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(jsonl.contains("\"type\":\"session\""), "{jsonl}");
    }

    #[test]
    fn title_overrides_the_default() {
        let mut args = acceptance_args("out=x.json");
        args.push("title=my run".to_string());
        let config = TraceConfig::parse(args).unwrap();
        assert_eq!(config.title.as_deref(), Some("my run"));
        let artifacts = config.render().unwrap();
        assert!(artifacts.perfetto.unwrap().contains("\"name\":\"my run\""));
    }

    #[test]
    fn sm_traces_export_without_a_port_map() {
        let config =
            TraceConfig::parse(["model=sync", "comm=sm", "s=2", "n=2", "out=sm.json"]).unwrap();
        let artifacts = config.render().unwrap();
        let perfetto = artifacts.perfetto.unwrap();
        json::validate(&perfetto).unwrap();
        assert!(perfetto.contains("\"name\":\"port step\""), "{perfetto}");
    }
}
