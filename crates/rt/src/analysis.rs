//! Classic uniprocessor schedulability analyses.

use session_types::{Dur, Ratio};

use crate::task::TaskSet;

/// The Liu–Layland rate-monotonic utilization bound `n(2^{1/n} − 1)` \[11\].
///
/// Any set of `n` implicit-deadline periodic tasks with utilization at or
/// below this bound is RM-schedulable. (The bound is irrational, so this is
/// the one place the crate returns `f64`; the exact response-time analysis
/// below should be preferred for decisions near the boundary.)
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rm_utilization_bound(n: usize) -> f64 {
    assert!(n > 0, "bound is defined for n >= 1 tasks");
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// The sufficient Liu–Layland test: `U <= n(2^{1/n} − 1)`.
pub fn rm_utilization_test(tasks: &TaskSet) -> bool {
    tasks.utilization().to_f64() <= rm_utilization_bound(tasks.len()) + 1e-12
}

/// Exact response-time analysis for an arbitrary fixed-priority order
/// (highest priority first): iterate
/// `R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j` to a fixed point; the set
/// is schedulable under that order iff every `R_i <= D_i`.
///
/// Returns the response time per task (indexed by task id), or `None` for
/// a task whose iteration exceeds its deadline.
pub fn response_times_with_order(tasks: &TaskSet, order: &[crate::TaskId]) -> Vec<Option<Dur>> {
    let mut results = vec![None; tasks.len()];
    for (rank, &id) in order.iter().enumerate() {
        let task = tasks.task(id);
        let mut response = task.wcet();
        loop {
            let mut demand = task.wcet();
            for &hp in &order[..rank] {
                let hp_task = tasks.task(hp);
                let jobs = response.div_exact(hp_task.period()).ceil();
                demand += hp_task.wcet() * jobs;
            }
            if demand == response {
                results[id.index()] = Some(response);
                break;
            }
            if demand > task.deadline() {
                results[id.index()] = None;
                break;
            }
            response = demand;
        }
    }
    results
}

/// Exact response-time analysis under rate-monotonic priorities.
pub fn response_times(tasks: &TaskSet) -> Vec<Option<Dur>> {
    response_times_with_order(tasks, &tasks.rm_priority_order())
}

/// Exact response-time analysis under deadline-monotonic priorities.
pub fn dm_response_times(tasks: &TaskSet) -> Vec<Option<Dur>> {
    response_times_with_order(tasks, &tasks.dm_priority_order())
}

/// Exact DM schedulability: every response time exists and meets its
/// deadline under deadline-monotonic priorities.
pub fn dm_schedulable(tasks: &TaskSet) -> bool {
    dm_response_times(tasks)
        .iter()
        .zip(tasks.iter())
        .all(|(r, (_, t))| r.is_some_and(|r| r <= t.deadline()))
}

/// Exact RM schedulability: every response time exists and meets its
/// deadline.
pub fn rm_schedulable(tasks: &TaskSet) -> bool {
    response_times(tasks)
        .iter()
        .zip(tasks.iter())
        .all(|(r, (_, t))| r.is_some_and(|r| r <= t.deadline()))
}

/// EDF schedulability for implicit-deadline periodic tasks: `U <= 1`
/// (necessary and sufficient, Liu & Layland \[11\]).
pub fn edf_schedulable(tasks: &TaskSet) -> bool {
    tasks.utilization() <= Ratio::ONE
}

/// The Jeffay–Stanat–Martel conditions for **non-preemptive** EDF of
/// periodic/sporadic tasks with integral parameters \[10\], necessary and
/// sufficient (tasks sorted by period `T_1 <= … <= T_n`):
///
/// 1. `U <= 1`;
/// 2. for every task `i` and every integer `L` with `T_1 < L < T_i`:
///    `L >= C_i + Σ_{j < i} ⌊(L − 1)/T_j⌋ · C_j`.
///
/// # Panics
///
/// Panics if any period or cost is not an integer (the theorem is stated
/// over integral time; all experiments here use integral parameters).
pub fn np_edf_schedulable(tasks: &TaskSet) -> bool {
    if tasks.utilization() > Ratio::ONE {
        return false;
    }
    let order = tasks.rm_priority_order(); // sorted by period
    let as_int = |d: Dur| -> i128 {
        let r = d.as_ratio();
        assert!(
            r.is_integer(),
            "non-preemptive analysis needs integral times"
        );
        r.numer()
    };
    let t1 = as_int(tasks.task(order[0]).period());
    for (rank, &id) in order.iter().enumerate() {
        let ti = as_int(tasks.task(id).period());
        let ci = as_int(tasks.task(id).wcet());
        let mut l = t1 + 1;
        while l < ti {
            let mut demand = ci;
            for &shorter in &order[..rank] {
                let tj = as_int(tasks.task(shorter).period());
                let cj = as_int(tasks.task(shorter).wcet());
                demand += ((l - 1) / tj) * cj;
            }
            if l < demand {
                return false;
            }
            l += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PeriodicTask;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    fn ts(tasks: &[(i128, i128)]) -> TaskSet {
        TaskSet::periodic(
            tasks
                .iter()
                .map(|&(t, c)| PeriodicTask::new(d(t), d(c)).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn liu_layland_bound_values() {
        assert!((rm_utilization_bound(1) - 1.0).abs() < 1e-12);
        assert!((rm_utilization_bound(2) - 0.8284271247461903).abs() < 1e-9);
        // Approaches ln 2 as n grows.
        assert!((rm_utilization_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn rm_utilization_test_accepts_and_rejects() {
        assert!(rm_utilization_test(&ts(&[(4, 1), (6, 2)]))); // 7/12 ≈ 0.58
        assert!(!rm_utilization_test(&ts(&[(4, 2), (6, 3)]))); // 1.0 > 0.828
    }

    #[test]
    fn response_time_analysis_classic_example() {
        // T = (4,1), (6,2), (12,3): R = 1, 3, 10 — all within deadlines.
        let tasks = ts(&[(4, 1), (6, 2), (12, 3)]);
        let r = response_times(&tasks);
        assert_eq!(r[0], Some(d(1)));
        assert_eq!(r[1], Some(d(3)));
        assert_eq!(r[2], Some(d(10)));
        assert!(rm_schedulable(&tasks));
    }

    #[test]
    fn rta_catches_rm_infeasible_but_edf_feasible_sets() {
        // U = 34/35: EDF fine, RM fails for the long task
        // (R iterates 4 -> 6 -> 8 > D = 7).
        let tasks = ts(&[(5, 2), (7, 4)]);
        assert!(edf_schedulable(&tasks));
        let r = response_times(&tasks);
        assert_eq!(r[0], Some(d(2)));
        assert_eq!(r[1], None, "RM cannot fit the second task");
        assert!(!rm_schedulable(&tasks));
    }

    #[test]
    fn harmonic_full_utilization_is_rm_schedulable() {
        // Harmonic periods at U = 1: RM fits exactly (R2 = D2 = 8).
        let tasks = ts(&[(4, 2), (8, 4)]);
        let r = response_times(&tasks);
        assert_eq!(r[1], Some(d(8)));
        assert!(rm_schedulable(&tasks));
    }

    #[test]
    fn edf_requires_u_at_most_one() {
        assert!(edf_schedulable(&ts(&[(2, 1), (4, 2)]))); // U = 1
        assert!(!edf_schedulable(&ts(&[(2, 1), (4, 3)]))); // U = 5/4
    }

    #[test]
    fn dm_beats_rm_on_constrained_deadlines() {
        // τ1 = (T=10, C=3, D=5), τ2 = (T=8, C=3, D=8): RM (by period) puts
        // τ2 first and τ1 misses (R = 6 > 5); DM (by deadline) puts τ1
        // first and both fit.
        let tasks = TaskSet::periodic(vec![
            PeriodicTask::with_deadline(d(10), d(3), d(5)).unwrap(),
            PeriodicTask::new(d(8), d(3)).unwrap(),
        ])
        .unwrap();
        assert!(!rm_schedulable(&tasks));
        assert!(dm_schedulable(&tasks));
        let r = dm_response_times(&tasks);
        assert_eq!(r[0], Some(d(3)));
        assert_eq!(r[1], Some(d(6)));
    }

    #[test]
    fn dm_equals_rm_for_implicit_deadlines() {
        let tasks = ts(&[(4, 1), (6, 2), (12, 3)]);
        assert_eq!(response_times(&tasks), dm_response_times(&tasks));
        assert_eq!(rm_schedulable(&tasks), dm_schedulable(&tasks));
    }

    #[test]
    fn np_edf_conditions() {
        // Jeffay et al.'s style example: non-preemptive feasible set.
        assert!(np_edf_schedulable(&ts(&[(5, 1), (10, 2), (20, 4)])));
        // A long job that blocks a short period: condition 2 fails.
        // T1 = 3, C1 = 1; T2 = 100, C2 = 50: at L = 4 the demand is
        // 50 + floor(3/3)*1 = 51 > 4.
        assert!(!np_edf_schedulable(&ts(&[(3, 1), (100, 50)])));
        // Over-utilized sets fail condition 1.
        assert!(!np_edf_schedulable(&ts(&[(2, 1), (4, 3)])));
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn bound_for_zero_tasks_panics() {
        let _ = rm_utilization_bound(0);
    }
}
