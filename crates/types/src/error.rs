//! The workspace error type.

use std::error;
use std::fmt;

use crate::ids::{ProcessId, VarId};

/// A convenient alias for results carrying [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the session-problem workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A constructor received parameters that violate a model or problem
    /// precondition.
    InvalidParams {
        /// What was violated.
        reason: String,
    },
    /// More than `b` distinct processes attempted to access one shared
    /// variable (§2.1.1).
    BBoundViolation {
        /// The oversubscribed variable.
        var: VarId,
        /// The configured bound `b`.
        bound: usize,
        /// The process whose access exceeded the bound.
        process: ProcessId,
    },
    /// A timed computation violates the timing constraints of its model
    /// (§2.2) — produced by the admissibility checkers.
    Inadmissible {
        /// Human-readable description of the first violation found.
        reason: String,
    },
    /// A simulation exceeded its step or time budget without all port
    /// processes reaching idle states.
    LimitExceeded {
        /// Number of steps executed before giving up.
        steps: u64,
    },
    /// An engine was asked about a process or variable that does not exist.
    UnknownId {
        /// Description of the missing identifier.
        what: String,
    },
}

impl Error {
    /// Creates an [`Error::InvalidParams`] with the given reason.
    pub fn invalid_params(reason: impl Into<String>) -> Error {
        Error::InvalidParams {
            reason: reason.into(),
        }
    }

    /// Creates an [`Error::Inadmissible`] with the given reason.
    pub fn inadmissible(reason: impl Into<String>) -> Error {
        Error::Inadmissible {
            reason: reason.into(),
        }
    }

    /// Creates an [`Error::UnknownId`] with the given description.
    pub fn unknown_id(what: impl Into<String>) -> Error {
        Error::UnknownId { what: what.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            Error::BBoundViolation {
                var,
                bound,
                process,
            } => write!(
                f,
                "variable {var} already has {bound} accessors; {process} may not access it"
            ),
            Error::Inadmissible { reason } => write!(f, "timed computation inadmissible: {reason}"),
            Error::LimitExceeded { steps } => write!(
                f,
                "simulation budget exhausted after {steps} steps without termination"
            ),
            Error::UnknownId { what } => write!(f, "unknown identifier: {what}"),
        }
    }
}

impl error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_descriptive() {
        let e = Error::invalid_params("s must be positive");
        assert_eq!(e.to_string(), "invalid parameters: s must be positive");

        let e = Error::BBoundViolation {
            var: VarId::new(3),
            bound: 2,
            process: ProcessId::new(7),
        };
        assert!(e.to_string().contains("x3"));
        assert!(e.to_string().contains("p7"));

        let e = Error::inadmissible("step gap below c1");
        assert!(e.to_string().contains("inadmissible"));

        let e = Error::LimitExceeded { steps: 10 };
        assert!(e.to_string().contains("10 steps"));

        let e = Error::unknown_id("process p9");
        assert!(e.to_string().contains("p9"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
    }

    #[test]
    fn errors_compare_equal_structurally() {
        assert_eq!(
            Error::invalid_params("x"),
            Error::InvalidParams {
                reason: "x".to_owned()
            }
        );
    }
}
