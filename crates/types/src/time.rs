//! Instants and durations of simulated real time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::ratio::Ratio;

/// An instant of simulated real time, measured from the start of the
/// computation at time 0 (the paper assumes all processes start at time 0 and
/// that *every* step, including the first, obeys the timing constraints
/// measured from time 0).
///
/// # Examples
///
/// ```
/// use session_types::{Dur, Time};
///
/// let t = Time::ZERO + Dur::from_int(3);
/// assert_eq!(t - Time::from_int(1), Dur::from_int(2));
/// assert!(t > Time::ZERO);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(Ratio);

/// A (possibly negative) span of simulated real time.
///
/// Negative durations appear transiently inside the lower-bound retiming
/// machinery (steps may be retimed earlier); the admissibility checkers
/// enforce non-negativity wherever the models require it.
///
/// # Examples
///
/// ```
/// use session_types::{Dur, Ratio};
///
/// let c1 = Dur::from_int(2);
/// let c2 = Dur::from_int(7);
/// // The step-counting constant floor(c2 / c1) used throughout the paper:
/// assert_eq!(c2.div_floor(c1), 3);
/// assert_eq!((c2 - c1).as_ratio(), Ratio::from_int(5));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dur(Ratio);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(Ratio::ZERO);

    /// Creates an instant `value` time units after the origin.
    pub const fn from_int(value: i128) -> Time {
        Time(Ratio::from_int(value))
    }

    /// Creates an instant from an exact rational offset from the origin.
    pub const fn from_ratio(value: Ratio) -> Time {
        Time(value)
    }

    /// The exact rational offset from the origin.
    pub const fn as_ratio(self) -> Ratio {
        self.0
    }

    /// The duration from the origin to this instant.
    pub const fn since_origin(self) -> Dur {
        Dur(self.0)
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximates the offset from the origin as `f64` (reporting only).
    pub fn to_f64(self) -> f64 {
        self.0.to_f64()
    }
}

impl Dur {
    /// The zero duration.
    pub const ZERO: Dur = Dur(Ratio::ZERO);
    /// One time unit.
    pub const ONE: Dur = Dur(Ratio::ONE);

    /// Creates a duration of `value` time units.
    pub const fn from_int(value: i128) -> Dur {
        Dur(Ratio::from_int(value))
    }

    /// Creates a duration from an exact rational number of time units.
    pub const fn from_ratio(value: Ratio) -> Dur {
        Dur(value)
    }

    /// The exact rational number of time units.
    pub const fn as_ratio(self) -> Ratio {
        self.0
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// Returns `true` if this duration is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0.is_positive()
    }

    /// Returns `true` if this duration is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0.is_negative()
    }

    /// `⌊self / other⌋`, the floored quotient used pervasively by the paper
    /// (e.g. `⌊c2/c1⌋`, `⌊u/4c1⌋`).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_floor(self, other: Dur) -> i128 {
        (self.0 / other.0).floor()
    }

    /// The exact rational quotient `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_exact(self, other: Dur) -> Ratio {
        self.0 / other.0
    }

    /// The shorter of two durations.
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The longer of two durations.
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The absolute value of this duration.
    pub fn abs(self) -> Dur {
        Dur(self.0.abs())
    }

    /// Approximates the duration as `f64` (reporting only).
    pub fn to_f64(self) -> f64 {
        self.0.to_f64()
    }
}

impl Add<Dur> for Time {
    type Output = Time;

    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}

impl Sub<Dur> for Time {
    type Output = Time;

    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.0)
    }
}

impl Sub for Time {
    type Output = Dur;

    fn sub(self, other: Time) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl SubAssign<Dur> for Time {
    fn sub_assign(&mut self, d: Dur) {
        self.0 -= d.0;
    }
}

impl Add for Dur {
    type Output = Dur;

    fn add(self, other: Dur) -> Dur {
        Dur(self.0 + other.0)
    }
}

impl Sub for Dur {
    type Output = Dur;

    fn sub(self, other: Dur) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, other: Dur) {
        self.0 += other.0;
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, other: Dur) {
        self.0 -= other.0;
    }
}

impl Neg for Dur {
    type Output = Dur;

    fn neg(self) -> Dur {
        Dur(-self.0)
    }
}

impl Mul<i128> for Dur {
    type Output = Dur;

    fn mul(self, k: i128) -> Dur {
        Dur(self.0 * Ratio::from_int(k))
    }
}

impl Mul<Ratio> for Dur {
    type Output = Dur;

    fn mul(self, k: Ratio) -> Dur {
        Dur(self.0 * k)
    }
}

impl Div<i128> for Dur {
    type Output = Dur;

    fn div(self, k: i128) -> Dur {
        Dur(self.0 / Ratio::from_int(k))
    }
}

impl Div<Ratio> for Dur {
    type Output = Dur;

    fn div(self, k: Ratio) -> Dur {
        Dur(self.0 / k)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl From<Ratio> for Dur {
    fn from(value: Ratio) -> Dur {
        Dur(value)
    }
}

impl From<Ratio> for Time {
    fn from(value: Ratio) -> Time {
        Time(value)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_dur_arithmetic() {
        let t = Time::from_int(10);
        let d = Dur::from_int(4);
        assert_eq!(t + d, Time::from_int(14));
        assert_eq!(t - d, Time::from_int(6));
        assert_eq!(Time::from_int(14) - t, d);
    }

    #[test]
    fn assign_ops() {
        let mut t = Time::ZERO;
        t += Dur::from_int(5);
        t -= Dur::from_int(2);
        assert_eq!(t, Time::from_int(3));

        let mut d = Dur::from_int(5);
        d += Dur::from_int(1);
        d -= Dur::from_int(3);
        assert_eq!(d, Dur::from_int(3));
    }

    #[test]
    fn dur_scaling() {
        let d = Dur::from_int(6);
        assert_eq!(d * 2, Dur::from_int(12));
        assert_eq!(d / 4, Dur::from_ratio(Ratio::new(3, 2)));
        assert_eq!(d * Ratio::new(1, 3), Dur::from_int(2));
        assert_eq!(d / Ratio::new(1, 2), Dur::from_int(12));
    }

    #[test]
    fn div_floor_matches_paper_usage() {
        // floor(c2 / c1) with c2 = 7, c1 = 2 is 3.
        assert_eq!(Dur::from_int(7).div_floor(Dur::from_int(2)), 3);
        // floor(u / 4c1) with u = 10, c1 = 1: floor(10/4) = 2.
        assert_eq!(Dur::from_int(10).div_floor(Dur::from_int(4)), 2);
        assert_eq!(
            Dur::from_int(7).div_exact(Dur::from_int(2)),
            Ratio::new(7, 2)
        );
    }

    #[test]
    fn negative_durations() {
        let d = Dur::from_int(2) - Dur::from_int(5);
        assert!(d.is_negative());
        assert_eq!(-d, Dur::from_int(3));
        assert_eq!(d.abs(), Dur::from_int(3));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Time::from_int(1) < Time::from_int(2));
        assert_eq!(Time::from_int(1).max(Time::from_int(2)), Time::from_int(2));
        assert_eq!(Dur::from_int(1).min(Dur::from_int(2)), Dur::from_int(1));
        assert_eq!(Dur::from_int(1).max(Dur::from_int(2)), Dur::from_int(2));
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = (1..=4).map(Dur::from_int).sum();
        assert_eq!(total, Dur::from_int(10));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Time::from_int(3).to_string(), "3");
        assert_eq!(format!("{:?}", Time::from_int(3)), "t=3");
        assert_eq!(Dur::from_ratio(Ratio::new(1, 2)).to_string(), "1/2");
        assert_eq!(format!("{:?}", Dur::from_int(2)), "Δ2");
    }

    #[test]
    fn since_origin_roundtrip() {
        let t = Time::from_ratio(Ratio::new(7, 3));
        assert_eq!(Time::ZERO + t.since_origin(), t);
        assert_eq!(t.as_ratio(), Ratio::new(7, 3));
    }
}
