//! Differential harness for the symbolic engine: the zone graph must
//! *cover* the explicit explorer on every registered target — `SA012`
//! (the one-sided reachability cross-check, see `zones.rs`) must never
//! fire — the ten clean paper algorithms must verify symbolically with
//! zero findings, and the naive witnesses must stay flagged through the
//! symbolic engine too.
//!
//! Every target runs at its registry dimensions clamped to `n ≤ 3`,
//! `s ≤ 3` (only the synchronous pair defaults above that). The
//! heavyweight sporadic MP spaces and the analyzer-bench headline scope
//! are `#[ignore]`d here for the same reason as in `reduction_diff.rs`:
//! minutes in debug builds. `scripts/static-analysis.sh` runs them in
//! release with `--include-ignored` (the CI `symbolic-diff` job).

use session_analyzer::{analyze_space_symbolic, scoped_target_space, Report, TARGET_NAMES};

/// Targets cheap enough to walk symbolically in a debug build.
const FAST_TARGETS: [&str; 11] = [
    "SyncSm",
    "PeriodicSm",
    "SemiSyncSm",
    "SporadicSm",
    "AsyncSm",
    "SyncMp",
    "PeriodicMp",
    "SemiSyncMp",
    "AsyncMp",
    "NaivePeriodicSm",
    "NaiveSemiSyncSm",
];

const SLOW_TARGETS: [&str; 2] = ["SporadicMp", "NaiveSporadicMp"];

/// The registry's default dimensions clamped to the `n ≤ 3`, `s ≤ 3`
/// differential scope.
fn clamped_dims(name: &str) -> (usize, u64) {
    match name {
        "SyncSm" | "SyncMp" => (3, 3),
        "NaiveSporadicMp" => (2, 3),
        _ => (2, 2),
    }
}

/// The lint codes a symbolic run of the named target must produce at
/// the clamped scope. Clean algorithms verify with zero findings; the
/// shared-memory witnesses trip `SA001` symbolically. The naive
/// sporadic witness needs `s = 3` for its stale-evidence `SA003`, which
/// its clamped dims provide.
fn expected_codes(name: &str) -> &'static [&'static str] {
    match name {
        "NaivePeriodicSm" | "NaiveSemiSyncSm" => &["SA001"],
        "NaiveSporadicMp" => &["SA003"],
        _ => &[],
    }
}

fn codes(report: &Report) -> Vec<String> {
    let mut codes: Vec<String> = report
        .findings
        .iter()
        .map(|d| d.code.code().to_owned())
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

fn diff_one(name: &str) {
    let (n, s) = clamped_dims(name);
    let space = scoped_target_space(name, n, s).expect("registry target");
    let report = analyze_space_symbolic(name, &space);
    let codes = codes(&report);
    assert!(
        !codes.iter().any(|c| c == "SA012"),
        "{name} (n={n}, s={s}): the zone graph failed to cover the explicit explorer: {codes:?}"
    );
    assert_eq!(
        codes,
        expected_codes(name),
        "{name} (n={n}, s={s}): symbolic verdict diverged from the registry expectation"
    );
}

#[test]
fn fast_targets_have_no_symbolic_divergence() {
    for name in FAST_TARGETS {
        diff_one(name);
    }
}

#[test]
#[ignore = "minutes in debug; run in release via scripts/static-analysis.sh"]
fn slow_targets_have_no_symbolic_divergence() {
    for name in SLOW_TARGETS {
        diff_one(name);
    }
}

/// The analyzer bench's headline scope: `PeriodicMp` at `n = 3, s = 3`
/// (109k zones / 325k explicit states) must verify symbolically and be
/// covered, exactly like the registry scope.
#[test]
#[ignore = "minutes in debug; run in release via scripts/static-analysis.sh"]
fn headline_scope_has_no_symbolic_divergence() {
    let space = scoped_target_space("PeriodicMp", 3, 3).expect("registry target");
    let report = analyze_space_symbolic("PeriodicMp", &space);
    let codes = codes(&report);
    assert_eq!(codes, Vec::<String>::new(), "PeriodicMp (n=3, s=3)");
}

/// The fast set plus the slow set is exactly the registry — a new
/// target cannot silently skip the symbolic differential.
#[test]
fn every_registry_target_is_classified() {
    let mut classified: Vec<&str> = FAST_TARGETS
        .iter()
        .chain(SLOW_TARGETS.iter())
        .copied()
        .collect();
    classified.sort_unstable();
    let mut registry: Vec<&str> = TARGET_NAMES.to_vec();
    registry.sort_unstable();
    assert_eq!(classified, registry);
}
