//! Differential harness: the ownership-partitioned parallel explorer
//! must be *bit-identical* to the serial one.
//!
//! `reduction_diff.rs` only demands code-set equality across reductions,
//! because a reduction may legitimately find a violation along a
//! different representative interleaving. The thread count is held to a
//! stricter standard: the parallel explorer replays the serial DFS over
//! the ownership walk's logged key-graph and re-derives its witnesses
//! through the serial DFS (see `parallel.rs`), so not just the codes but
//! the *witness roots, paths, messages, their order*, the truncation
//! flag, the `states` count and the reduction stats must match the
//! serial run exactly, at every thread count, under every reduction
//! combination. In particular `states(threads=N) == states(threads=1)`
//! is the guarantee that killed the donation-era inflation (325k → 346k
//! at 8 threads).

use proptest::prelude::*;
use session_analyzer::explore::{explore_with_opts, Exploration};
use session_analyzer::machine::{GapMode, SmAlgo, SmMachine};
use session_analyzer::{scoped_target_space, ExploreOpts, TARGET_NAMES};
use session_smm::RelayProcess;
use session_types::{Dur, Time, VarId};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Every reduce= combination, serial; the thread sweep is layered on top.
const REDUCTIONS: [(&str, ExploreOpts); 4] = [
    (
        "none",
        ExploreOpts {
            por: false,
            symmetry: false,
            threads: 1,
        },
    ),
    (
        "por",
        ExploreOpts {
            por: true,
            symmetry: false,
            threads: 1,
        },
    ),
    (
        "symmetry",
        ExploreOpts {
            por: false,
            symmetry: true,
            threads: 1,
        },
    ),
    (
        "por+symmetry",
        ExploreOpts {
            por: true,
            symmetry: true,
            threads: 1,
        },
    ),
];

/// The full identity of every finding, in report order.
fn findings(exploration: &Exploration) -> Vec<(String, usize, Vec<usize>, String)> {
    exploration
        .violations
        .iter()
        .map(|v| {
            (
                v.code.code().to_owned(),
                v.root,
                v.path.clone(),
                v.message.clone(),
            )
        })
        .collect()
}

/// Asserts that `parallel` is the same exploration as `serial`, field by
/// field: findings, truncation, and — the ownership explorer's headline
/// invariant — the `states` count and reduction stats.
#[track_caller]
fn assert_identical(serial: &Exploration, parallel: &Exploration, context: &str) {
    assert_eq!(
        findings(parallel),
        findings(serial),
        "{context}: findings diverged"
    );
    assert_eq!(
        parallel.truncated, serial.truncated,
        "{context}: truncation diverged"
    );
    assert_eq!(
        parallel.states, serial.states,
        "{context}: states(threads=N) != states(threads=1)"
    );
    assert_eq!(
        parallel.depth_hits, serial.depth_hits,
        "{context}: depth_hits diverged"
    );
    assert_eq!(
        parallel.stats, serial.stats,
        "{context}: reduction stats diverged"
    );
}

/// Explores `name` at `(n, s, depth)` serially and at every thread count,
/// asserting an identical exploration everywhere.
fn assert_thread_invariant(name: &str, n: usize, s: u64, depth: usize) {
    let space = scoped_target_space(name, n, s).expect("registered target");
    for (label, serial_opts) in REDUCTIONS {
        let serial = explore_with_opts(&space.roots, n, s, depth, serial_opts);
        for threads in THREAD_COUNTS {
            let parallel = explore_with_opts(
                &space.roots,
                n,
                s,
                depth,
                ExploreOpts {
                    threads,
                    ..serial_opts
                },
            );
            assert_identical(
                &serial,
                &parallel,
                &format!("{name} n={n} s={s} depth={depth} reduce={label} threads={threads}"),
            );
        }
    }
}

/// A violating SM target, a violating MP target and a clean target of
/// each substrate, pinned at a scope where every reduction combination
/// still finishes quickly in a debug build.
#[test]
fn representative_targets_are_thread_invariant_at_small_scope() {
    for name in ["SyncSm", "NaivePeriodicSm", "SyncMp", "NaiveSporadicMp"] {
        assert_thread_invariant(name, 2, 2, 10);
    }
}

/// The session-guarantee (`SA001`) and stale-evidence (`SA003`) registry
/// witnesses at their default-ish scopes: thread invariance must hold on
/// the actual finding-bearing spaces, not just tiny slices of them.
#[test]
fn witness_targets_are_thread_invariant() {
    assert_thread_invariant("NaivePeriodicSm", 2, 2, 24);
    assert_thread_invariant("NaiveSemiSyncSm", 2, 2, 20);
    assert_thread_invariant("NaiveSporadicMp", 2, 2, 16);
}

/// A relay hosted as the only "port": relays never idle, so the machine
/// can never quiesce, and its normalized state repeats after one cycle —
/// the admissible lasso `SA005` names. Lassos are the cross-owner case
/// the replay pass exists for (on-path detection is path-dependent), so
/// the witness must survive every thread count bit for bit.
#[test]
fn sa005_lasso_is_thread_invariant() {
    let algos = vec![SmAlgo::Relay(RelayProcess::new(vec![VarId::new(0)]))];
    let roots = [session_analyzer::explore::AnyMachine::Sm(SmMachine::new(
        algos,
        1,
        1,
        1,
        GapMode::PerStep(vec![Dur::from_int(1)]),
        vec![Time::ZERO + Dur::from_int(1)],
    ))];
    for (label, serial_opts) in REDUCTIONS {
        let serial = explore_with_opts(&roots, 1, 1, 12, serial_opts);
        assert!(
            findings(&serial).iter().any(|(code, ..)| code == "SA005"),
            "fixture must produce the lasso"
        );
        for threads in THREAD_COUNTS {
            let parallel = explore_with_opts(
                &roots,
                1,
                1,
                12,
                ExploreOpts {
                    threads,
                    ..serial_opts
                },
            );
            assert_identical(
                &serial,
                &parallel,
                &format!("relay lasso reduce={label} threads={threads}"),
            );
        }
    }
}

/// One deeper exhaustive run (full default depth) on a target whose
/// space is large enough for real routing to happen.
#[test]
fn periodic_mp_is_thread_invariant_at_full_depth() {
    let name = "PeriodicMp";
    let space = scoped_target_space(name, 2, 2).expect("registered target");
    let depth = space.scope.max_depth;
    for (label, serial_opts) in REDUCTIONS {
        let serial = explore_with_opts(&space.roots, 2, 2, depth, serial_opts);
        for threads in THREAD_COUNTS {
            let parallel = explore_with_opts(
                &space.roots,
                2,
                2,
                depth,
                ExploreOpts {
                    threads,
                    ..serial_opts
                },
            );
            assert_identical(
                &serial,
                &parallel,
                &format!("PeriodicMp reduce={label} threads={threads}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small scopes over every registered target: the whole
    /// exploration must be identical for threads in {1, 2, 4, 8} under
    /// every reduce= combination — including when the random depth
    /// truncates the space and the parallel path falls back to the
    /// serial explorer.
    #[test]
    fn random_small_scopes_are_thread_invariant(
        target_idx in 0usize..TARGET_NAMES.len(),
        n in 1usize..=3,
        s in 1u64..=3,
        depth in 4usize..=12,
    ) {
        let name = TARGET_NAMES[target_idx];
        let space = scoped_target_space(name, n, s).expect("registered target");
        for (label, serial_opts) in REDUCTIONS {
            let serial = explore_with_opts(&space.roots, n, s, depth, serial_opts);
            let expected = findings(&serial);
            for threads in THREAD_COUNTS {
                let parallel = explore_with_opts(
                    &space.roots,
                    n,
                    s,
                    depth,
                    ExploreOpts { threads, ..serial_opts },
                );
                prop_assert_eq!(
                    findings(&parallel),
                    expected.clone(),
                    "{} at n={} s={} depth={} reduce={} threads={}",
                    name, n, s, depth, label, threads
                );
                prop_assert_eq!(parallel.truncated, serial.truncated);
                prop_assert_eq!(
                    parallel.states,
                    serial.states,
                    "states at n={} s={} depth={} reduce={} threads={}",
                    n, s, depth, label, threads
                );
                prop_assert_eq!(parallel.stats, serial.stats);
            }
        }
    }
}
