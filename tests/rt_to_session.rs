//! Integration of the real-time substrate with the session layer: the
//! paper's claim that periodic/sporadic task systems *are* the source of
//! its timing models, made executable end to end.

use session_problem::core::system::{build_mp_system, port_of};
use session_problem::core::verify::count_sessions;
use session_problem::rt::bridge::{completion_gap_window, completion_step_schedule};
use session_problem::rt::sched::{simulate, simulate_releases, Policy};
use session_problem::rt::{analysis, PeriodicTask, SporadicTask, TaskId, TaskSet};
use session_problem::sim::{ConstantDelay, RunLimits};
use session_problem::types::{Dur, KnownBounds, ProcessId, SessionSpec, Time};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

#[test]
fn edf_completions_drive_a_periodic_session_layer() {
    let tasks = TaskSet::periodic(vec![
        PeriodicTask::new(d(6), d(1)).unwrap(),
        PeriodicTask::new(d(8), d(2)).unwrap(),
        PeriodicTask::new(d(12), d(3)).unwrap(),
    ])
    .unwrap();
    assert!(analysis::edf_schedulable(&tasks));
    let outcome = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(600)).unwrap();
    assert!(outcome.all_deadlines_met());

    let spec = SessionSpec::new(5, 3, 2).unwrap();
    let d2 = d(4);
    let bounds = KnownBounds::periodic(d2).unwrap();
    let mut engine = build_mp_system(&spec, &bounds).unwrap();
    let mut schedule = completion_step_schedule(&tasks, &outcome, d(12)).unwrap();
    let mut delays = ConstantDelay::new(d2).unwrap();
    let run = engine
        .run(&mut schedule, &mut delays, RunLimits::default())
        .unwrap();
    assert!(run.terminated);
    let sessions = count_sessions(&run.trace, spec.n(), port_of(&spec));
    assert!(
        sessions >= spec.s(),
        "session layer got {sessions} of {} sessions",
        spec.s()
    );
}

#[test]
fn schedulability_analyses_agree_with_simulation() {
    // A deterministic sweep of small task sets: the analytic verdicts must
    // match what actually happens on the simulated processor.
    let candidates: &[&[(i128, i128)]] = &[
        &[(4, 1), (6, 2)],
        &[(4, 2), (6, 3)],
        &[(2, 1), (4, 2)],
        &[(5, 2), (7, 4)],
        &[(4, 1), (6, 2), (12, 3)],
        &[(3, 1), (100, 50)],
        &[(5, 1), (10, 2), (20, 4)],
    ];
    for &set in candidates {
        let tasks = TaskSet::periodic(
            set.iter()
                .map(|&(t, c)| PeriodicTask::new(d(t), d(c)).unwrap())
                .collect(),
        )
        .unwrap();
        let horizon = Time::from_int(set.iter().map(|&(t, _)| t).product::<i128>().min(5_000) * 2);
        if analysis::edf_schedulable(&tasks) {
            let edf = simulate(&tasks, Policy::EdfPreemptive, horizon).unwrap();
            assert!(edf.all_deadlines_met(), "EDF missed on {set:?}");
        }
        let rm = simulate(&tasks, Policy::RmPreemptive, horizon).unwrap();
        assert_eq!(
            analysis::rm_schedulable(&tasks),
            rm.all_deadlines_met(),
            "RTA vs RM simulation disagree on {set:?}"
        );
        let np = simulate(&tasks, Policy::EdfNonPreemptive, horizon).unwrap();
        if analysis::np_edf_schedulable(&tasks) {
            assert!(np.all_deadlines_met(), "NP-EDF missed on feasible {set:?}");
        }
    }
}

#[test]
fn sporadic_releases_produce_sporadic_step_gaps() {
    // Releases separated by at least p but sometimes much more: the
    // completion stream has a positive minimum gap and a large maximum gap
    // — exactly the paper's sporadic constraint.
    let tasks = TaskSet::sporadic(vec![SporadicTask::new(d(5), d(1)).unwrap()]).unwrap();
    let releases = vec![vec![
        Time::ZERO,
        Time::from_int(5),
        Time::from_int(40), // long pause
        Time::from_int(45),
    ]];
    let outcome =
        simulate_releases(&tasks, &releases, Policy::EdfPreemptive, Time::from_int(60)).unwrap();
    assert!(outcome.all_deadlines_met());
    let (min_gap, max_gap) = completion_gap_window(&outcome, TaskId::new(0)).unwrap();
    assert!(min_gap >= d(1), "gaps bounded below (c1-like): {min_gap}");
    assert!(max_gap >= d(30), "long pauses survive to the step stream");
}

#[test]
fn session_layer_processes_map_one_to_one_to_tasks() {
    let tasks = TaskSet::periodic(vec![
        PeriodicTask::new(d(4), d(1)).unwrap(),
        PeriodicTask::new(d(5), d(1)).unwrap(),
    ])
    .unwrap();
    let outcome = simulate(&tasks, Policy::RmPreemptive, Time::from_int(100)).unwrap();
    let mut schedule = completion_step_schedule(&tasks, &outcome, d(5)).unwrap();
    use session_problem::sim::StepSchedule;
    // Process 0's first step is task 0's first completion (t = 1).
    assert_eq!(schedule.first_step(ProcessId::new(0)), Time::from_int(1));
    // Process 1's first step is task 1's first completion (preempted by
    // task 0, so t = 2).
    assert_eq!(schedule.first_step(ProcessId::new(1)), Time::from_int(2));
}
