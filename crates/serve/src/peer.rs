//! Peer hardening: bounded egress, token buckets, reputation, bans.
//!
//! The service's isolation invariant is that *a misbehaving or slow
//! client must never stall an honest session*. Three mechanisms enforce
//! it, all local to the offending peer:
//!
//! - **Bounded egress** ([`PeerHandle::send`]): every peer owns a
//!   fixed-capacity queue drained by its writer. Shards never block on a
//!   send — a full queue (a peer that stopped reading) drops the frame,
//!   counts it, and scores misbehavior. Session state machines advance
//!   on the time wheel regardless of whether their owner ever reads a
//!   `Closed` frame.
//! - **Token buckets** ([`TokenBucket`]): `Open` admission is rate
//!   limited per peer, so one flooding client exhausts its own bucket,
//!   not the shards' capacity.
//! - **Reputation and bans** ([`PeerManager`]): protocol violations,
//!   rate-limit hits and egress overflow accumulate a misbehavior
//!   score; past the configured threshold the peer's address is banned
//!   and the connection is cut.

use std::collections::HashSet;
use std::net::{IpAddr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::wire::{RejectCode, ServerFrame};

/// A per-peer token bucket; owned by the peer's reader, no locking.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens/second up to `burst`.
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// Takes one token if available; `false` means rate-limited.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[derive(Debug)]
struct PeerInner {
    addr: SocketAddr,
    egress: SyncSender<ServerFrame>,
    dropped: AtomicU64,
    misbehavior: AtomicU32,
    dead: AtomicBool,
    /// A clone of the TCP stream, kept so a ban can cut the connection
    /// from any thread (`None` on the UDP path — datagram peers are
    /// killed by going dead, there is nothing to shut down).
    conn: Mutex<Option<TcpStream>>,
}

/// A cloneable handle to one connected peer, shared by the reader,
/// writer, and every shard running a session the peer opened.
#[derive(Clone, Debug)]
pub struct PeerHandle {
    inner: Arc<PeerInner>,
}

impl PeerHandle {
    /// Creates the peer's handle plus the receiving end its writer
    /// drains. `egress_capacity` bounds the queue.
    pub fn new(
        addr: SocketAddr,
        egress_capacity: usize,
        conn: Option<TcpStream>,
    ) -> (PeerHandle, Receiver<ServerFrame>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(egress_capacity);
        let handle = PeerHandle {
            inner: Arc::new(PeerInner {
                addr,
                egress: tx,
                dropped: AtomicU64::new(0),
                misbehavior: AtomicU32::new(0),
                dead: AtomicBool::new(false),
                conn: Mutex::new(conn),
            }),
        };
        (handle, rx)
    }

    /// The peer's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Enqueues a frame without ever blocking. Returns `false` when the
    /// frame was dropped — queue full (counted, scored) or peer dead.
    pub fn send(&self, frame: ServerFrame) -> bool {
        if self.is_dead() {
            return false;
        }
        match self.inner.egress.try_send(frame) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                self.misbehave(1);
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.dead.store(true, Ordering::Relaxed);
                false
            }
        }
    }

    /// Frames dropped on this peer's full egress queue.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Adds `points` to the misbehavior score and returns the new total.
    pub fn misbehave(&self, points: u32) -> u32 {
        self.inner.misbehavior.fetch_add(points, Ordering::Relaxed) + points
    }

    /// The current misbehavior score.
    pub fn misbehavior(&self) -> u32 {
        self.inner.misbehavior.load(Ordering::Relaxed)
    }

    /// `true` once the peer is disconnected, killed, or banned.
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Relaxed)
    }

    /// Marks the peer dead, best-effort sends `Bye{code}`, and cuts the
    /// TCP connection's read side so a blocked reader wakes immediately.
    /// Only the read half is shut down: the writer still drains the
    /// egress queue (pending rejects plus the `Bye`) before the last
    /// handle drops and the socket closes.
    pub fn kill(&self, code: RejectCode) {
        // Queue the Bye before going dead so the writer can still flush
        // it; losing it to a full queue is fine.
        let _ = self.inner.egress.try_send(ServerFrame::Bye { code });
        self.inner.dead.store(true, Ordering::Relaxed);
        if let Ok(guard) = self.inner.conn.lock() {
            if let Some(stream) = guard.as_ref() {
                let _ = stream.shutdown(std::net::Shutdown::Read);
            }
        }
    }
}

/// Address-level ban list plus the ban policy.
#[derive(Debug)]
pub struct PeerManager {
    bans: Mutex<HashSet<IpAddr>>,
    ban_threshold: u32,
    banned_total: AtomicU64,
}

impl PeerManager {
    /// A manager banning peers whose score reaches `ban_threshold`.
    pub fn new(ban_threshold: u32) -> PeerManager {
        PeerManager {
            bans: Mutex::new(HashSet::new()),
            ban_threshold,
            banned_total: AtomicU64::new(0),
        }
    }

    /// `true` if `ip` is banned.
    pub fn is_banned(&self, ip: IpAddr) -> bool {
        self.bans.lock().map_or(true, |bans| bans.contains(&ip))
    }

    /// Bans `ip` outright.
    pub fn ban(&self, ip: IpAddr) {
        if let Ok(mut bans) = self.bans.lock() {
            if bans.insert(ip) {
                self.banned_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Scores `points` against `peer`; when the threshold is crossed the
    /// peer's address is banned and the connection killed. Returns
    /// `true` if this call banned the peer.
    pub fn note_misbehavior(&self, peer: &PeerHandle, points: u32) -> bool {
        let score = peer.misbehave(points);
        if score >= self.ban_threshold && !peer.is_dead() {
            self.ban(peer.addr().ip());
            peer.kill(RejectCode::Banned);
            true
        } else {
            false
        }
    }

    /// Total addresses banned since startup.
    pub fn banned_total(&self) -> u64 {
        self.banned_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn addr() -> SocketAddr {
        "127.0.0.1:9999".parse().unwrap()
    }

    #[test]
    fn token_bucket_limits_then_refills() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 2.0, t0);
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "burst exhausted");
        // 100ms at 10/s refills one token.
        assert!(bucket.try_take(t0 + Duration::from_millis(100)));
        assert!(!bucket.try_take(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1000.0, 3.0, t0);
        let later = t0 + Duration::from_secs(60);
        for _ in 0..3 {
            assert!(bucket.try_take(later));
        }
        assert!(!bucket.try_take(later));
    }

    #[test]
    fn full_egress_drops_and_scores_instead_of_blocking() {
        let (peer, _rx) = PeerHandle::new(addr(), 2, None);
        assert!(peer.send(ServerFrame::Pong { nonce: 1 }));
        assert!(peer.send(ServerFrame::Pong { nonce: 2 }));
        // Queue full: the send returns immediately.
        assert!(!peer.send(ServerFrame::Pong { nonce: 3 }));
        assert_eq!(peer.dropped(), 1);
        assert_eq!(peer.misbehavior(), 1);
    }

    #[test]
    fn killed_peers_get_a_bye_and_stop_accepting_frames() {
        let (peer, rx) = PeerHandle::new(addr(), 4, None);
        peer.kill(RejectCode::Banned);
        assert!(peer.is_dead());
        assert!(!peer.send(ServerFrame::Pong { nonce: 1 }));
        assert_eq!(
            rx.try_recv().unwrap(),
            ServerFrame::Bye {
                code: RejectCode::Banned
            }
        );
    }

    #[test]
    fn threshold_crossing_bans_the_address() {
        let manager = PeerManager::new(5);
        let (peer, _rx) = PeerHandle::new(addr(), 4, None);
        assert!(!manager.note_misbehavior(&peer, 4));
        assert!(!manager.is_banned(addr().ip()));
        assert!(manager.note_misbehavior(&peer, 1));
        assert!(manager.is_banned(addr().ip()));
        assert!(peer.is_dead());
        assert_eq!(manager.banned_total(), 1);
        // Further scoring does not double-ban.
        assert!(!manager.note_misbehavior(&peer, 100));
        assert_eq!(manager.banned_total(), 1);
    }
}
