//! The periodic shared-memory algorithm `A(p)` (§4).

use session_smm::{JoinSemiLattice, Knowledge, SmProcess};
use session_types::{ProcessId, VarId};

/// The paper's `A(p)`: *"Each port process accesses its own port `s − 1`
/// times and at its `(s − 1)`-th step, broadcasts the fact. It enters an
/// idle state after it hears that all other processes have taken `s − 1`
/// steps and it has taken at least one more port step."*
///
/// In the shared-memory realization the port variable is a leaf of the §3
/// tree network, so "broadcasting the fact" is simply announcing the
/// step count in the port variable's [`Knowledge`]; the relay processes
/// flood it. Every step of this process accesses the port, so announcing
/// and port-stepping are the same atomic read-modify-write.
///
/// Running time (Theorem 4.1): `s · c_max + O(log_b n) · c_max`.
#[derive(Clone, Debug)]
pub struct PeriodicSmPort {
    id: ProcessId,
    port_var: VarId,
    s: u64,
    n: usize,
    steps: u64,
    knowledge: Knowledge,
    heard_all_at: Option<u64>,
}

impl PeriodicSmPort {
    /// Creates port process `id` over `port_var` for the `(s, n)`-session
    /// problem. The port processes are `p0 .. p(n-1)`.
    pub fn new(id: ProcessId, port_var: VarId, s: u64, n: usize) -> PeriodicSmPort {
        PeriodicSmPort {
            id,
            port_var,
            s,
            n,
            steps: 0,
            knowledge: Knowledge::new(),
            heard_all_at: None,
        }
    }

    /// Port steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// The step count at which this process first knew that every port
    /// process had completed `s − 1` port steps, if it has.
    pub fn heard_all_at(&self) -> Option<u64> {
        self.heard_all_at
    }

    fn all_done_threshold(&self) -> u64 {
        self.s.saturating_sub(1)
    }
}

impl SmProcess<Knowledge> for PeriodicSmPort {
    fn target(&self) -> VarId {
        self.port_var
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        if self.is_idle() {
            // Idle is absorbing; keep the variable unchanged.
            let mut unchanged = Knowledge::bottom();
            unchanged.join(value);
            return unchanged;
        }
        self.knowledge.join(value);
        self.steps += 1;
        // Announcing the running count subsumes "broadcast the fact of the
        // (s-1)-th step": once the counter reaches s - 1, the flooded map
        // carries the fact.
        self.knowledge.announce(self.id, self.steps);
        if self.heard_all_at.is_none()
            && self
                .knowledge
                .all_at_least((0..self.n).map(ProcessId::new), self.all_done_threshold())
        {
            self.heard_all_at = Some(self.steps);
        }
        self.knowledge.clone()
    }

    fn is_idle(&self) -> bool {
        match self.heard_all_at {
            // One more port step after hearing, per A(p).
            Some(heard) => self.steps > heard,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knowledge_all(n: usize, value: u64) -> Knowledge {
        (0..n).map(|i| (ProcessId::new(i), value)).collect()
    }

    #[test]
    fn does_not_idle_before_hearing_from_everyone() {
        let mut p = PeriodicSmPort::new(ProcessId::new(0), VarId::new(0), 3, 2);
        for _ in 0..50 {
            let _ = p.step(&Knowledge::new());
        }
        assert!(!p.is_idle(), "must wait for the other port process");
        assert_eq!(p.steps_taken(), 50);
    }

    #[test]
    fn idles_one_step_after_hearing() {
        let mut p = PeriodicSmPort::new(ProcessId::new(0), VarId::new(0), 3, 2);
        let _ = p.step(&Knowledge::new());
        let _ = p.step(&Knowledge::new());
        // Now the other process announces 2 (= s - 1) via the tree.
        let heard = knowledge_all(2, 2);
        let _ = p.step(&heard);
        assert_eq!(p.heard_all_at(), Some(3));
        assert!(!p.is_idle(), "needs one more port step after hearing");
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
    }

    #[test]
    fn announces_its_step_count() {
        let mut p = PeriodicSmPort::new(ProcessId::new(1), VarId::new(1), 4, 2);
        let out = p.step(&Knowledge::new());
        assert_eq!(out.get(ProcessId::new(1)), 1);
        let out = p.step(&out);
        assert_eq!(out.get(ProcessId::new(1)), 2);
    }

    #[test]
    fn joins_incoming_knowledge() {
        let mut p = PeriodicSmPort::new(ProcessId::new(0), VarId::new(0), 5, 3);
        let incoming = knowledge_all(3, 1);
        let out = p.step(&incoming);
        // Output contains both the incoming announcements and its own.
        assert_eq!(out.get(ProcessId::new(2)), 1);
        assert_eq!(out.get(ProcessId::new(0)), 1);
    }

    #[test]
    fn idle_steps_leave_the_variable_unchanged() {
        let mut p = PeriodicSmPort::new(ProcessId::new(0), VarId::new(0), 1, 1);
        // s = 1: threshold 0; first step announces 1 >= 0 for itself.
        let _ = p.step(&Knowledge::new());
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
        let foreign: Knowledge = [(ProcessId::new(9), 42)].into_iter().collect();
        let out = p.step(&foreign);
        assert_eq!(out, foreign);
    }

    #[test]
    fn s_equals_one_still_requires_hearing_everyone() {
        let mut p = PeriodicSmPort::new(ProcessId::new(0), VarId::new(0), 1, 2);
        let _ = p.step(&Knowledge::new());
        assert!(!p.is_idle(), "p1 has not announced anything yet");
        let _ = p.step(&knowledge_all(2, 1));
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
    }
}
