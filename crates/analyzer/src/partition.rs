//! Hash-partitioned ownership exploration (DESIGN.md §13).
//!
//! Each worker **owns** a shard of the 64-bit fingerprint space
//! ([`owner_of`]): a state is expanded by its owner or not at all. A
//! worker expanding a state routes every open successor to that
//! successor's owner over a bounded SPSC ring ([`SpscRing`]), batched
//! [`ROUTE_BATCH`] messages at a time. The owner's visited set is a
//! plain thread-local `FxHashSet` — no locks, no budgets — and a key is
//! pushed to the owner's work queue exactly once, on first arrival;
//! later arrivals drop. Zero duplicate expansions, by construction.
//!
//! Global quiescence (every queue empty, every ring empty, nothing in
//! flight) is detected with a Safra-style termination token circulating
//! the worker ring ([`Control`], [`TokenState`]): workers count routed
//! messages sent minus received, turn black on receipt, and the
//! initiator declares done only after a fully white round whose counts
//! sum to zero. No global lock anywhere on the hot path.
//!
//! # Exactness: the replay pass and the two-key scheme
//!
//! Phase A does **not** try to reproduce the serial explorer's
//! path-dependent bookkeeping (depth budgets, lasso detection, the POR
//! cycle proviso) while racing. Instead each worker logs the full
//! annotated successor record of every state it expands — child keys in
//! choice order, pruned-edge lint codes, quiescent-edge `SA001`
//! verdicts, the ample range — and after the join a **serial replay**
//! ([`Replay`]) runs the exact serial DFS over the logged key-graph:
//! same memo-budget semantics, same on-path lasso check, same proviso,
//! same counters. Machines are cloned and hashed only in the parallel
//! phase; the replay touches nothing but `u64`s, so it costs ~1% of
//! Phase A. Every reported number (`states`, `truncated`, `depth_hits`,
//! `pruned`, `memo_hits`) is therefore **bit-identical to the serial
//! explorer at every thread count** — not merely the same verdicts.
//!
//! That argument rests on the record graph being **race-free**: the
//! record logged for a key must not depend on which arrival won. The
//! memo key ([`state_key`]) equates machines whose pending queues hold
//! the same multiset in a different order, which is safe precisely
//! because [`MpMachine::eligible`] enumerates the choice menu in the
//! canonical order the hash is computed over — equal hashes mean equal
//! menus, so every representative of the class expands to the same
//! record and first-arrival is harmless. (An insertion-order menu
//! tie-break breaks this: an experiment routing by an order-exact key
//! to sidestep it expanded 10.0x the serial states on the bench
//! headline at `reduce=none` and 4.4x at `reduce=all` — aliased
//! representatives are pervasive, not rare — which is why the menu
//! order is canonicalized at the machine instead.)
//!
//! Symmetry reduction is the one layer where the memo key is coarser
//! than the menu: the canonical key equates *permuted* states whose
//! menus rename processes differently. Phase A therefore routes,
//! dedups and indexes records by the never-canonicalized
//! [`route_key`], and each record stores the memo key alongside. The
//! replay walks edges by route key — reproducing serial's concrete
//! plain-state walk — while running its memo / on-path sets on the
//! stored memo key, which is precisely the serial explorer's behavior:
//! memoize the orbit, expand the concrete representative the walk
//! arrived at. The two keys are computed identically whenever symmetry
//! is off or refused for the target (every identity-carrying
//! algorithm, including the bench headline), so the extra orbit
//! representatives Phase A expands are bounded by the orbit size and
//! cost nothing at all outside `reduce=symmetry` runs on genuinely
//! symmetric targets; replay skips their records via the memo, so
//! reported counts stay serial-exact.
//!
//! [`MpMachine::eligible`]: crate::machine::MpMachine
//!
//! Two escape hatches keep that argument airtight:
//!
//! * **Depth cut → serial fallback.** The ownership walk ignores the
//!   depth budget (it visits each state once, so path depth is
//!   meaningless to it), which is only sound when the whole reachable
//!   space fits in the budget. The first arrival of an unvisited state
//!   at `depth >= max_depth` raises a global cut flag; the round aborts
//!   and the caller falls back to the serial explorer wholesale.
//!   Truncated scopes were never parallel wins anyway.
//! * **POR proviso → flag-and-re-round.** Under POR, Phase A explores
//!   ample-only menus, so a replay that hits the cycle proviso at a
//!   state whose full menu was never logged cannot continue exactly. It
//!   records the state in a `needs_full` set; the controller re-runs
//!   Phase A with those states forced to full expansion and replays
//!   again, to a fixpoint. Acyclic spaces (every `reduce=none` /
//!   `reduce=symmetry` run, and the bench headline) take exactly one
//!   round.

use std::collections::{BTreeSet, VecDeque};
use std::ops::Range;
use std::time::Instant;

// Under `--cfg loom` every primitive routes through the loom facade, so
// `loom_tests` can model-check the ring and the termination token with
// the same types the production build uses.
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, Ordering};
#[cfg(loom)]
use loom::sync::atomic::AtomicUsize;
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(loom)]
use loom::thread::yield_now;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::Mutex;
#[cfg(not(loom))]
use std::thread::yield_now;

use rustc_hash::{FxHashMap, FxHashSet};
use session_obs::{ProgressBoard, TimelineSpan};

use crate::diag::LintCode;
use crate::explore::{route_key, state_key, AnyMachine, ExploreOpts, SessionCounter, MEMO_COMPLETE};
use crate::parallel::{make_child, nanos, Child, PROGRESS_BATCH};
use crate::por;
use crate::profile::WorkerProfile;

/// Routed successors per batch: amortizes ring traffic (one slot write
/// and two atomics per batch) without letting partial batches hold many
/// states hostage before an idle flush.
pub(crate) const ROUTE_BATCH: usize = 64;

/// Ring capacity in batches per (producer, consumer) pair. A full ring
/// back-pressures the producer, which drains its own inboxes while it
/// spins — bounded memory, no deadlock.
pub(crate) const RING_CAPACITY: usize = 128;

/// How many local expansions between inbox polls while the queue is
/// non-empty (keeps producers unblocked without per-state poll cost).
const POLL_EVERY: u32 = 64;

/// Which worker owns a fingerprint: a splitmix-style remix (the raw key
/// is an FxHash, whose low bits are weak) followed by a multiply-shift
/// range reduction — uniform for any thread count, no modulo.
#[inline]
pub(crate) fn owner_of(key: u64, threads: usize) -> usize {
    let mut x = key;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    ((u128::from(x) * threads as u128) >> 64) as usize
}

/// A bounded single-producer single-consumer ring. Slots are
/// `Mutex<Option<T>>` (uncontended by protocol: the producer only
/// writes a slot the head/tail counters prove free, the consumer only
/// takes a filled one), occupancy is a pair of monotonic atomics — safe
/// Rust, loom-checkable, no `unsafe`.
pub(crate) struct SpscRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Next slot the consumer takes (monotonic; slot = `head % cap`).
    head: AtomicUsize,
    /// Next slot the producer fills (monotonic; slot = `tail % cap`).
    tail: AtomicUsize,
}

impl<T> SpscRing<T> {
    pub(crate) fn new(capacity: usize) -> SpscRing<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        SpscRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side. Returns the value back when the ring is full.
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(value);
        }
        *self.slots[tail % self.slots.len()].lock().expect("ring slot") = Some(value);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side. `None` when the ring is empty.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = self.slots[head % self.slots.len()]
            .lock()
            .expect("ring slot")
            .take();
        debug_assert!(value.is_some(), "occupied slot must hold a value");
        self.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Occupied batch slots (approximate under concurrency; exact when
    /// both sides are quiescent).
    pub(crate) fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

/// The Safra token: routed-message balance accumulated around the ring
/// plus the taint bit (some visited worker received since it last
/// passed the token).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Token {
    pub(crate) count: i64,
    pub(crate) black: bool,
}

/// Round-global coordination: one token slot per worker plus the two
/// flags every loop polls. No lock is ever held across useful work.
pub(crate) struct Control {
    token_slots: Vec<Mutex<Option<Token>>>,
    /// Set by the initiator when the Safra condition holds.
    pub(crate) done: AtomicBool,
    /// Set by any worker whose first arrival of a state exhausts the
    /// depth budget: abort the round, fall back to the serial explorer.
    pub(crate) cut: AtomicBool,
}

impl Control {
    pub(crate) fn new(threads: usize) -> Control {
        Control {
            // The token starts black at the initiator, forcing at least
            // one full white round before termination can be declared.
            token_slots: (0..threads)
                .map(|i| {
                    Mutex::new((i == 0).then_some(Token {
                        count: 0,
                        black: true,
                    }))
                })
                .collect(),
            done: AtomicBool::new(false),
            cut: AtomicBool::new(false),
        }
    }
}

/// One worker's Safra bookkeeping: cumulative sent/received message
/// counts (never reset) and its own taint bit.
pub(crate) struct TokenState {
    sent: i64,
    received: i64,
    black: bool,
}

impl TokenState {
    pub(crate) fn new() -> TokenState {
        TokenState {
            sent: 0,
            received: 0,
            black: false,
        }
    }

    /// Count `msgs` routed messages pushed to a peer ring.
    pub(crate) fn on_send(&mut self, msgs: usize) {
        self.sent += msgs as i64;
    }

    /// Count `msgs` routed messages drained from a peer ring. Receiving
    /// taints the worker black: a round that saw traffic proves nothing.
    pub(crate) fn on_recv(&mut self, msgs: usize) {
        self.received += msgs as i64;
        self.black = true;
    }

    /// Pass the token along the ring if it is parked here. Must only be
    /// called while locally idle (empty queue, empty inboxes, flushed
    /// partial batches — unsent partials keep their creator non-idle,
    /// which is what makes their uncounted messages safe). Returns
    /// `true` only on the initiator, when it declares global
    /// termination.
    pub(crate) fn try_pass(&mut self, control: &Control, me: usize) -> bool {
        let parked = control.token_slots[me].lock().expect("token slot").take();
        let Some(mut token) = parked else {
            return false;
        };
        let deficit = self.sent - self.received;
        if me == 0 {
            // The initiator evaluates the round that just completed:
            // a white token, a white self, and a zero global balance
            // mean no message is in flight and nobody has work.
            if !token.black && !self.black && token.count + deficit == 0 {
                control.done.store(true, Ordering::Release);
                return true;
            }
            self.black = false;
            token = Token {
                count: 0,
                black: false,
            };
        } else {
            token.count += deficit;
            if self.black {
                token.black = true;
                self.black = false;
            }
        }
        let next = (me + 1) % control.token_slots.len();
        *control.token_slots[next].lock().expect("token slot") = Some(token);
        false
    }
}

/// One successor routed to its owner: the child state, its session
/// counter, the depth of the generating path, and the precomputed key.
pub(crate) struct RoutedState {
    machine: AnyMachine,
    counter: SessionCounter,
    depth: usize,
    /// The plain [`route_key`] — ownership, dedup and the record index
    /// all run on it (never on the symmetry-canonical memo key, which
    /// is coarser; see the module docs).
    key: u64,
}

type Batch = Vec<RoutedState>;

// ---------------------------------------------------------------------
// The successor log: each expanded state appends one flat record
//
//   [route_key, memo_key, meta, (ample_word)?, tag0, payload0, ...]
//
// route_key = the plain key the state was routed by (record id);
// memo_key  = the serial memo key the replay gates on
// meta  = logged_children | total_choices << 16 | flags
// flags = FLAG_AMPLE (an ample range follows) | FLAG_PARTIAL (only the
//         ample slice of the menu was explored and logged)
// ample_word = start | end << 32, child tags/payloads in choice order;
// open-child payloads are route keys (their records hold the memo key).
// ---------------------------------------------------------------------

const TAG_OPEN: u64 = 0;
const TAG_PRUNED: u64 = 1;
const TAG_QUIESCENT: u64 = 2;

const FLAG_AMPLE: u64 = 1 << 32;
const FLAG_PARTIAL: u64 = 1 << 33;

fn code_tag(code: LintCode) -> u64 {
    match code {
        LintCode::SessionDeficit => 1,
        LintCode::BBoundViolation => 2,
        LintCode::StaleEvidence => 3,
        LintCode::InadmissibleStep => 4,
        LintCode::NonTermination => 5,
        // `check_step` only produces the step lints above; anything else
        // reaching an edge record is a bug.
        other => unreachable!("unexpected step lint {other:?}"),
    }
}

fn code_from_tag(tag: u64) -> LintCode {
    match tag {
        1 => LintCode::SessionDeficit,
        2 => LintCode::BBoundViolation,
        3 => LintCode::StaleEvidence,
        4 => LintCode::InadmissibleStep,
        5 => LintCode::NonTermination,
        other => unreachable!("corrupt edge log: code tag {other}"),
    }
}

/// How a root enters the replay: quiescent roots are resolved at seed
/// time (their `SA001` verdict is baked in), open roots start a DFS.
enum RootEntry {
    Open(u64),
    Quiescent(bool),
}

/// Everything a round's workers share by reference.
struct RoundShared<'a> {
    /// `rings[from][to]`: the SPSC batch queue from worker `from` to
    /// worker `to` (the diagonal is allocated but unused).
    rings: Vec<Vec<SpscRing<Batch>>>,
    control: Control,
    /// States (by route key) whose full menu must be expanded this
    /// round (POR proviso fixpoint flags). Read-only during the round.
    flagged: &'a FxHashSet<u64>,
}

impl<'a> RoundShared<'a> {
    fn new(threads: usize, flagged: &'a FxHashSet<u64>) -> RoundShared<'a> {
        RoundShared {
            rings: (0..threads)
                .map(|_| (0..threads).map(|_| SpscRing::new(RING_CAPACITY)).collect())
                .collect(),
            control: Control::new(threads),
            flagged,
        }
    }
}

/// What one worker hands back at the round join.
struct WorkerRoundOut {
    states: u64,
    items: u64,
    drops: u64,
    local_msgs: u64,
    route_send: u64,
    route_recv: u64,
    queue_full_spins: u64,
    memo_len: u64,
    edges: Vec<u64>,
    prof: Option<Box<WorkerProfile>>,
}

/// One shard owner: thread-local memo, FIFO work queue (breadth-ish
/// order keeps first-arrival depths near the minimum, so the depth-cut
/// guard stays quiet on spaces the serial explorer finishes), partial
/// outgoing batches, Safra bookkeeping, and the successor log.
struct OwnerWorker<'a, 'f> {
    me: usize,
    threads: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    shared: &'a RoundShared<'f>,
    memo: FxHashSet<u64>,
    queue: VecDeque<RoutedState>,
    outbox: Vec<Batch>,
    token: TokenState,
    edges: Vec<u64>,
    states: u64,
    items: u64,
    drops: u64,
    local_msgs: u64,
    route_send: u64,
    route_recv: u64,
    queue_full_spins: u64,
    prof: Option<Box<WorkerProfile>>,
    epoch: Instant,
    round: u64,
    progress: Option<&'a ProgressBoard>,
    batch_states: u64,
    batch_depth: u64,
}

impl<'a, 'f> OwnerWorker<'a, 'f> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: usize,
        threads: usize,
        s: u64,
        max_depth: usize,
        opts: ExploreOpts,
        shared: &'a RoundShared<'f>,
        seeds: VecDeque<RoutedState>,
        profile: bool,
        epoch: Instant,
        round: u64,
        progress: Option<&'a ProgressBoard>,
    ) -> OwnerWorker<'a, 'f> {
        let mut memo = FxHashSet::default();
        for seed in &seeds {
            memo.insert(seed.key);
        }
        OwnerWorker {
            me,
            threads,
            s,
            max_depth,
            opts,
            shared,
            memo,
            queue: seeds,
            outbox: (0..threads).map(|_| Batch::new()).collect(),
            token: TokenState::new(),
            edges: Vec::new(),
            states: 0,
            items: 0,
            drops: 0,
            local_msgs: 0,
            route_send: 0,
            route_recv: 0,
            queue_full_spins: 0,
            prof: profile.then(|| Box::new(WorkerProfile::new())),
            epoch,
            round,
            progress,
            batch_states: 0,
            batch_depth: 0,
        }
    }

    fn cut(&self) -> bool {
        self.shared.control.cut.load(Ordering::Relaxed)
    }

    /// First-arrival filter: insert into the memo and enqueue, or drop.
    /// An unvisited state arriving with no remaining depth budget raises
    /// the global cut — the round's result would not be serial-exact.
    fn accept(&mut self, msg: RoutedState) {
        self.items += 1;
        if !self.memo.insert(msg.key) {
            self.drops += 1;
            return;
        }
        if msg.depth >= self.max_depth {
            self.shared.control.cut.store(true, Ordering::Release);
            return;
        }
        self.queue.push_back(msg);
    }

    /// Drain every inbox completely. Returns whether anything arrived.
    fn drain_inboxes(&mut self) -> bool {
        // wslint: allow(ws001): flight profiler measures real elapsed time by design
        let started = self.prof.as_ref().map(|_| Instant::now());
        let mut any = false;
        for from in 0..self.threads {
            if from == self.me {
                continue;
            }
            while let Some(batch) = self.shared.rings[from][self.me].try_pop() {
                self.token.on_recv(batch.len());
                self.route_recv += batch.len() as u64;
                any = true;
                for msg in batch {
                    self.accept(msg);
                }
            }
        }
        if any {
            if let (Some(prof), Some(started)) = (self.prof.as_deref_mut(), started) {
                prof.route_recv_ns += nanos(started.elapsed());
                if prof.inbox_depth.len() < crate::profile::FLIGHT_BUFFER_CAP {
                    let pending: usize = (0..self.threads)
                        .filter(|&from| from != self.me)
                        .map(|from| self.shared.rings[from][self.me].len())
                        .sum();
                    prof.inbox_depth
                        .push((nanos(self.epoch.elapsed()), pending as u64));
                }
            }
            if let Some(board) = self.progress {
                board.set_frontier(self.queue.len() as u64);
            }
        }
        any
    }

    /// Route one open successor to its owner (or straight onto the local
    /// queue when this worker owns it).
    fn route_child(
        &mut self,
        next: AnyMachine,
        next_counter: Option<SessionCounter>,
        counter: &SessionCounter,
        depth: usize,
        key: u64,
    ) {
        let owner = owner_of(key, self.threads);
        let msg = RoutedState {
            machine: next,
            counter: next_counter.unwrap_or_else(|| counter.clone()),
            depth,
            key,
        };
        if owner == self.me {
            self.local_msgs += 1;
            self.accept(msg);
        } else {
            self.outbox[owner].push(msg);
            if self.outbox[owner].len() >= ROUTE_BATCH {
                self.flush_dest(owner, true);
            }
        }
    }

    /// Push the partial batch for `dest`. With `block` set, spins until
    /// the ring accepts it (draining own inboxes so the system keeps
    /// moving); otherwise puts the batch back and reports failure.
    fn flush_dest(&mut self, dest: usize, block: bool) -> bool {
        if self.outbox[dest].is_empty() {
            return true;
        }
        // wslint: allow(ws001): flight profiler measures real elapsed time by design
        let started = self.prof.as_ref().map(|_| Instant::now());
        let mut batch = std::mem::take(&mut self.outbox[dest]);
        let len = batch.len();
        loop {
            match self.shared.rings[self.me][dest].try_push(batch) {
                Ok(()) => {
                    self.token.on_send(len);
                    self.route_send += len as u64;
                    if let (Some(prof), Some(started)) = (self.prof.as_deref_mut(), started) {
                        prof.route_send_ns += nanos(started.elapsed());
                    }
                    return true;
                }
                Err(returned) => {
                    batch = returned;
                    self.queue_full_spins += 1;
                    if self.cut() {
                        // Round aborted: the batch no longer matters.
                        return true;
                    }
                    if !block {
                        self.outbox[dest] = batch;
                        if let (Some(prof), Some(started)) = (self.prof.as_deref_mut(), started)
                        {
                            prof.route_send_ns += nanos(started.elapsed());
                        }
                        return false;
                    }
                    self.drain_inboxes();
                    yield_now();
                }
            }
        }
    }

    /// Try to flush every partial batch without blocking.
    fn flush_all(&mut self) -> bool {
        let mut flushed = true;
        for dest in 0..self.threads {
            if dest != self.me {
                flushed &= self.flush_dest(dest, false);
            }
        }
        flushed
    }

    /// Expand one owned state: walk its menu (ample-only under POR
    /// unless flagged for full expansion), log the annotated successor
    /// record, and route the open children.
    fn expand_state(&mut self, item: RoutedState) {
        self.states += 1;
        if self.progress.is_some() {
            self.batch_states += 1;
            self.batch_depth = self.batch_depth.max(item.depth as u64);
            if self.batch_states >= PROGRESS_BATCH {
                self.flush_progress();
            }
        }
        let RoutedState {
            machine,
            counter,
            depth,
            key,
        } = item;
        let choices = machine.choice_count();
        debug_assert!(choices > 0, "non-quiescent machine must have events");
        debug_assert!(choices < (1 << 16), "choice menu exceeds the log encoding");
        let ample = if self.opts.por {
            por::select_ample(&machine, &counter)
        } else {
            None
        };
        let partial = ample.is_some() && !self.shared.flagged.contains(&key);
        let range = if partial {
            ample.clone().expect("partial implies ample")
        } else {
            0..choices
        };
        let record = self.edges.len();
        self.edges.push(key);
        // With symmetry off the memo key IS the route key; only the
        // canonicalizing reduction makes them diverge.
        self.edges.push(if self.opts.symmetry {
            state_key(&machine, &counter, true)
        } else {
            key
        });
        self.edges.push(0); // meta, patched below
        let mut flags = 0u64;
        if let Some(ample) = &ample {
            flags |= FLAG_AMPLE;
            self.edges
                .push(ample.start as u64 | (ample.end as u64) << 32);
        }
        if partial {
            flags |= FLAG_PARTIAL;
        }
        let mut logged = 0u64;
        for choice in range {
            match make_child(&machine, &counter, choice) {
                Child::Pruned(code) => {
                    self.edges.push(TAG_PRUNED);
                    self.edges.push(code_tag(code));
                }
                Child::Open(next, next_counter) => {
                    let effective = next_counter.as_ref().unwrap_or(&counter);
                    if next.is_quiescent() {
                        let deficit = effective.sessions() < self.s;
                        self.edges.push(TAG_QUIESCENT);
                        self.edges.push(u64::from(deficit));
                    } else {
                        let child_key = route_key(&next, effective);
                        self.edges.push(TAG_OPEN);
                        self.edges.push(child_key);
                        self.route_child(next, next_counter, &counter, depth + 1, child_key);
                    }
                }
            }
            logged += 1;
        }
        self.edges[record + 2] = logged | (choices as u64) << 16 | flags;
    }

    fn flush_progress(&mut self) {
        if self.batch_states > 0 {
            if let Some(board) = self.progress {
                board.add_states(self.batch_states);
                board.raise_depth(self.batch_depth);
            }
            self.batch_states = 0;
        }
    }

    fn run(mut self) -> WorkerRoundOut {
        if let Some(board) = self.progress {
            board.worker_busy();
        }
        let mut since_poll = 0u32;
        loop {
            if self.shared.control.done.load(Ordering::Acquire) || self.cut() {
                break;
            }
            // wslint: allow(ws001): flight profiler measures real elapsed time by design
            let burst = self.prof.as_ref().map(|_| Instant::now());
            let mut progressed = self.drain_inboxes();
            while let Some(item) = self.queue.pop_front() {
                self.expand_state(item);
                progressed = true;
                since_poll += 1;
                if since_poll >= POLL_EVERY {
                    since_poll = 0;
                    self.drain_inboxes();
                }
                if self.cut() {
                    break;
                }
            }
            if self.cut() {
                break;
            }
            if progressed {
                if let (Some(prof), Some(burst)) = (self.prof.as_deref_mut(), burst) {
                    let end = nanos(self.epoch.elapsed());
                    let start = nanos(burst.duration_since(self.epoch));
                    prof.busy_ns += end.saturating_sub(start);
                    prof.timeline.push(TimelineSpan {
                        name: "work",
                        start_ns: start,
                        end_ns: end,
                        detail: self.round,
                    });
                }
                continue;
            }
            if !self.flush_all() {
                continue;
            }
            if self.token.try_pass(&self.shared.control, self.me) {
                break;
            }
            if let (Some(prof), Some(burst)) = (self.prof.as_deref_mut(), burst) {
                prof.idle_ns += nanos(burst.elapsed());
            }
            yield_now();
        }
        self.flush_progress();
        if let Some(board) = self.progress {
            board.worker_idle();
        }
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.states = self.states;
            prof.items = self.items;
            prof.route_send = self.route_send;
            prof.route_recv = self.route_recv;
            prof.local_msgs = self.local_msgs;
            prof.queue_full_spins = self.queue_full_spins;
            prof.seal();
        }
        WorkerRoundOut {
            states: self.states,
            items: self.items,
            drops: self.drops,
            local_msgs: self.local_msgs,
            route_send: self.route_send,
            route_recv: self.route_recv,
            queue_full_spins: self.queue_full_spins,
            memo_len: self.memo.len() as u64,
            edges: self.edges,
            prof: self.prof,
        }
    }
}

/// The merged successor log of one round, indexed by route key.
struct Graph {
    data: Vec<u64>,
    index: FxHashMap<u64, usize>,
}

impl Graph {
    fn build(logs: Vec<Vec<u64>>) -> Graph {
        let total: usize = logs.iter().map(Vec::len).sum();
        let mut data = Vec::with_capacity(total);
        for log in logs {
            data.extend(log);
        }
        let mut index = FxHashMap::default();
        index.reserve(total / 8);
        let mut i = 0;
        while i < data.len() {
            let key = data[i];
            let meta = data[i + 2];
            let logged = (meta & 0xffff) as usize;
            let has_ample = meta & FLAG_AMPLE != 0;
            index.insert(key, i);
            i += 3 + usize::from(has_ample) + 2 * logged;
        }
        Graph { data, index }
    }
}

/// Replay outcome of one state's subtree (the serial `SubtreeOutcome`).
#[derive(Clone, Copy)]
struct ReplayOutcome {
    complete: bool,
    closed_cycle: bool,
}

/// The serial explorer re-run over the logged key-graph: identical
/// control flow, memo semantics and counters, with `u64` lookups where
/// the serial explorer clones machines.
struct Replay<'g> {
    graph: &'g Graph,
    memo: FxHashMap<u64, usize>,
    on_path: FxHashSet<u64>,
    codes: BTreeSet<LintCode>,
    states: u64,
    pruned: u64,
    memo_hits: u64,
    memo_misses: u64,
    depth_hits: u64,
    duplicates: u64,
    /// POR-partial states (by route key) where the cycle proviso fired:
    /// their full menus must be explored next round before the replay
    /// is exact.
    needs_full: FxHashSet<u64>,
    max_depth: usize,
}

impl<'g> Replay<'g> {
    fn new(graph: &'g Graph, max_depth: usize) -> Replay<'g> {
        Replay {
            graph,
            memo: FxHashMap::default(),
            on_path: FxHashSet::default(),
            codes: BTreeSet::new(),
            states: 0,
            pruned: 0,
            memo_hits: 0,
            memo_misses: 0,
            depth_hits: 0,
            duplicates: 0,
            needs_full: FxHashSet::default(),
            max_depth,
        }
    }

    fn run(&mut self, roots: &[RootEntry]) {
        for root in roots {
            match root {
                RootEntry::Quiescent(deficit) => {
                    if *deficit {
                        self.codes.insert(LintCode::SessionDeficit);
                    }
                }
                RootEntry::Open(key) => {
                    let _ = self.dfs(*key, 0);
                }
            }
        }
    }

    /// `route` identifies the concrete representative the walk arrived
    /// at (its record); every gate — on-path, memo, budget — runs on the
    /// serial memo key stored in that record, exactly as the serial DFS
    /// memoizes the equivalence class while expanding the concrete
    /// machine it reached.
    fn dfs(&mut self, route: u64, depth: usize) -> ReplayOutcome {
        let done = ReplayOutcome {
            complete: true,
            closed_cycle: false,
        };
        let Some(&record) = self.graph.index.get(&route) else {
            // Every open edge targets an expanded state in a cut-free
            // round; an absent record means the log is corrupt.
            unreachable!("state {route:#x} expanded by no worker");
        };
        let memo_key = self.graph.data[record + 1];
        if self.on_path.contains(&memo_key) {
            self.codes.insert(LintCode::NonTermination);
            return ReplayOutcome {
                complete: true,
                closed_cycle: true,
            };
        }
        let remaining = self.max_depth.saturating_sub(depth);
        if let Some(&budget) = self.memo.get(&memo_key) {
            if budget >= remaining {
                self.memo_hits += 1;
                if budget == MEMO_COMPLETE {
                    return done;
                }
                self.depth_hits += 1;
                return ReplayOutcome {
                    complete: false,
                    closed_cycle: false,
                };
            }
        }
        self.memo_misses += 1;
        if depth >= self.max_depth {
            self.depth_hits += 1;
            return ReplayOutcome {
                complete: false,
                closed_cycle: false,
            };
        }
        self.states += 1;
        self.on_path.insert(memo_key);
        let complete = self.expand(route, record, depth);
        self.on_path.remove(&memo_key);
        let budget = if complete { MEMO_COMPLETE } else { remaining };
        use std::collections::hash_map::Entry;
        match self.memo.entry(memo_key) {
            Entry::Occupied(entry) => {
                let value = entry.into_mut();
                *value = (*value).max(budget);
                self.duplicates += 1;
            }
            Entry::Vacant(entry) => {
                entry.insert(budget);
            }
        }
        ReplayOutcome {
            complete,
            closed_cycle: false,
        }
    }

    /// One logged child: a pruned edge records its code, a quiescent
    /// edge records its baked `SA001` verdict, an open edge recurses.
    fn child(&mut self, base: usize, i: usize, depth: usize) -> ReplayOutcome {
        let done = ReplayOutcome {
            complete: true,
            closed_cycle: false,
        };
        let tag = self.graph.data[base + 2 * i];
        let payload = self.graph.data[base + 2 * i + 1];
        match tag {
            TAG_PRUNED => {
                self.codes.insert(code_from_tag(payload));
                done
            }
            TAG_QUIESCENT => {
                if payload != 0 {
                    self.codes.insert(LintCode::SessionDeficit);
                }
                done
            }
            TAG_OPEN => self.dfs(payload, depth + 1),
            other => unreachable!("corrupt edge log: child tag {other}"),
        }
    }

    fn expand(&mut self, route: u64, record: usize, depth: usize) -> bool {
        let meta = self.graph.data[record + 2];
        let logged = (meta & 0xffff) as usize;
        let choices = ((meta >> 16) & 0xffff) as usize;
        let has_ample = meta & FLAG_AMPLE != 0;
        let partial = meta & FLAG_PARTIAL != 0;
        let mut base = record + 3;
        let ample = if has_ample {
            let word = self.graph.data[base];
            base += 1;
            Some(Range {
                start: (word & 0xffff_ffff) as usize,
                end: (word >> 32) as usize,
            })
        } else {
            None
        };
        let Some(ample) = ample else {
            let mut complete = true;
            for i in 0..logged {
                complete &= self.child(base, i, depth).complete;
            }
            return complete;
        };
        // With an ample range the logged children are either the full
        // menu (flagged states: ample indexes straight in) or just the
        // ample slice (partial records: indexes shift to zero).
        let (lo, hi) = if partial {
            (0, logged)
        } else {
            (ample.start, ample.end)
        };
        let mut complete = true;
        let mut closed_cycle = false;
        for i in lo..hi {
            let outcome = self.child(base, i, depth);
            complete &= outcome.complete;
            closed_cycle |= outcome.closed_cycle;
        }
        if closed_cycle {
            if partial {
                // The serial explorer would expand the rest of the menu
                // here (cycle proviso), but this round never explored
                // it. Flag for the next round; the controller discards
                // this replay.
                self.needs_full.insert(route);
            } else {
                for i in (0..ample.start).chain(ample.end..logged) {
                    complete &= self.child(base, i, depth).complete;
                }
            }
        } else {
            self.pruned += (choices - ample.len()) as u64;
        }
        complete
    }
}

/// Everything Phase A hands the orchestrator when the ownership walk
/// finished cut-free: serial-exact verdict inputs plus routing totals.
pub(crate) struct PartitionRun {
    pub(crate) codes: BTreeSet<LintCode>,
    pub(crate) states: u64,
    pub(crate) depth_hits: u64,
    pub(crate) pruned: u64,
    pub(crate) memo_hits: u64,
    pub(crate) memo_misses: u64,
    pub(crate) duplicates: u64,
    pub(crate) unique_states: u64,
    pub(crate) rounds: u64,
    pub(crate) route_send: u64,
    pub(crate) route_recv: u64,
    pub(crate) local_msgs: u64,
    pub(crate) queue_full_spins: u64,
    pub(crate) replay_ns: u64,
    pub(crate) workers: Option<Vec<WorkerProfile>>,
}

/// Runs the hash-partitioned ownership exploration: rounds of parallel
/// walk + serial replay, to the POR fixpoint. Returns `None` when a
/// depth cut fired — the caller must fall back to the serial explorer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_partitioned(
    roots: &[AnyMachine],
    n: usize,
    s: u64,
    max_depth: usize,
    opts: ExploreOpts,
    profile: bool,
    progress: Option<&ProgressBoard>,
    epoch: Instant,
) -> Option<PartitionRun> {
    let threads = opts.threads;
    debug_assert!(threads >= 1);
    let mut flagged: FxHashSet<u64> = FxHashSet::default();
    let mut rounds = 0u64;
    let mut route_send = 0u64;
    let mut route_recv = 0u64;
    let mut local_msgs = 0u64;
    let mut queue_full_spins = 0u64;
    let mut replay_ns = 0u64;
    let mut workers: Option<Vec<WorkerProfile>> = None;
    loop {
        rounds += 1;
        let mut root_entries = Vec::with_capacity(roots.len());
        let mut seeds: Vec<VecDeque<RoutedState>> =
            (0..threads).map(|_| VecDeque::new()).collect();
        let mut seeded: FxHashSet<u64> = FxHashSet::default();
        for root in roots {
            let counter = SessionCounter::new(n, s);
            if root.is_quiescent() {
                root_entries.push(RootEntry::Quiescent(counter.sessions() < s));
            } else {
                let key = route_key(root, &counter);
                root_entries.push(RootEntry::Open(key));
                if seeded.insert(key) {
                    if max_depth == 0 {
                        return None;
                    }
                    seeds[owner_of(key, threads)].push_back(RoutedState {
                        machine: root.clone(),
                        counter,
                        depth: 0,
                        key,
                    });
                }
            }
        }
        let shared = RoundShared::new(threads, &flagged);
        let mut outs: Vec<WorkerRoundOut> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .drain(..)
                .enumerate()
                .map(|(me, seed)| {
                    let shared = &shared;
                    scope.spawn(move || {
                        OwnerWorker::new(
                            me, threads, s, max_depth, opts, shared, seed, profile, epoch,
                            rounds - 1, progress,
                        )
                        .run()
                    })
                })
                .collect();
            for handle in handles {
                outs.push(handle.join().expect("partition worker panicked"));
            }
        });
        if shared.control.cut.load(Ordering::Acquire) {
            return None;
        }
        let mut accepted = 0u64;
        let mut expanded = 0u64;
        let mut logs = Vec::with_capacity(outs.len());
        for (id, out) in outs.into_iter().enumerate() {
            route_send += out.route_send;
            route_recv += out.route_recv;
            local_msgs += out.local_msgs;
            queue_full_spins += out.queue_full_spins;
            accepted += out.memo_len;
            expanded += out.states;
            let _ = (out.items, out.drops);
            logs.push(out.edges);
            if let Some(prof) = out.prof {
                let slots = workers.get_or_insert_with(|| {
                    (0..threads).map(|_| WorkerProfile::new()).collect()
                });
                slots[id].absorb(*prof);
            }
        }
        debug_assert_eq!(
            expanded, accepted,
            "first-arrival ownership: every accepted state expanded exactly once"
        );
        let graph = Graph::build(logs);
        // wslint: allow(ws001): flight profiler measures real elapsed time by design
        let replay_started = Instant::now();
        let mut replay = Replay::new(&graph, max_depth);
        replay.run(&root_entries);
        replay_ns += nanos(replay_started.elapsed());
        let fresh: Vec<u64> = replay
            .needs_full
            .iter()
            .filter(|key| !flagged.contains(*key))
            .copied()
            .collect();
        if !fresh.is_empty() {
            debug_assert!(opts.por, "proviso flags require POR");
            flagged.extend(fresh);
            continue;
        }
        return Some(PartitionRun {
            states: replay.states,
            depth_hits: replay.depth_hits,
            pruned: replay.pruned,
            memo_hits: replay.memo_hits,
            memo_misses: replay.memo_misses,
            duplicates: replay.duplicates,
            // Serial memo entries: the replay memo is keyed by the
            // serial memo key, so its size matches the serial explorer
            // even when Phase A expanded extra orbit representatives.
            unique_states: replay.memo.len() as u64,
            codes: replay.codes,
            rounds,
            route_send,
            route_recv,
            local_msgs,
            queue_full_spins,
            replay_ns,
            workers,
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn owner_map_is_deterministic_and_in_range() {
        for threads in [1usize, 2, 3, 8, 64] {
            for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
                let owner = owner_of(key, threads);
                assert!(owner < threads);
                assert_eq!(owner, owner_of(key, threads));
            }
        }
    }

    #[test]
    fn owner_map_spreads_keys_roughly_evenly() {
        let threads = 8;
        let mut counts = vec![0u64; threads];
        for i in 0..80_000u64 {
            counts[owner_of(i.wrapping_mul(0x517c_c1b7_2722_0a95), threads)] += 1;
        }
        for &count in &counts {
            assert!((8_000..12_000).contains(&count), "skewed shard: {counts:?}");
        }
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring = SpscRing::new(2);
        assert!(ring.try_push(1u32).is_ok());
        assert!(ring.try_push(2).is_ok());
        assert_eq!(ring.try_push(3), Err(3), "full ring rejects");
        assert_eq!(ring.try_pop(), Some(1));
        assert!(ring.try_push(3).is_ok(), "freed slot accepts");
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), Some(3));
        assert_eq!(ring.try_pop(), None);
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn ring_survives_a_cross_thread_stress_run() {
        const COUNT: u64 = 100_000;
        let ring = Arc::new(SpscRing::new(4));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for value in 0..COUNT {
                    let mut v = value;
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < COUNT {
            if let Some(value) = ring.try_pop() {
                assert_eq!(value, expected, "FIFO order violated");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().expect("producer");
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn token_terminates_a_single_worker_ring() {
        let control = Control::new(1);
        let mut state = TokenState::new();
        // First pass consumes the initial black token and starts a
        // white round (to itself); the second pass may declare done.
        assert!(!state.try_pass(&control, 0));
        assert!(state.try_pass(&control, 0));
        assert!(control.done.load(Ordering::Acquire));
    }

    /// A 4-worker synthetic router: worker threads expand a binary tree
    /// of `u64` keys, routing each child to its owner, deduplicating on
    /// first arrival, and terminating via the Safra token. Exercises
    /// exactly the production loop shape (drain → expand → flush → token)
    /// with racing producers; asserts no successor is lost and the token
    /// never declares quiescence while work remains.
    #[test]
    fn synthetic_router_loses_nothing_and_terminates() {
        const THREADS: usize = 4;
        const NODES: u64 = 40_000;
        let rings: Vec<Vec<SpscRing<Vec<u64>>>> = (0..THREADS)
            .map(|_| (0..THREADS).map(|_| SpscRing::new(8)).collect())
            .collect();
        let control = Control::new(THREADS);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for me in 0..THREADS {
                let rings = &rings;
                let control = &control;
                let total = &total;
                scope.spawn(move || {
                    let mut memo = FxHashSet::default();
                    let mut queue: VecDeque<u64> = VecDeque::new();
                    let mut outbox: Vec<Vec<u64>> = (0..THREADS).map(|_| Vec::new()).collect();
                    let mut token = TokenState::new();
                    let mut expanded = 0u64;
                    if owner_of(0, THREADS) == me {
                        memo.insert(0);
                        queue.push_back(0);
                    }
                    // Mirrors `OwnerWorker::route_child` + `flush_dest`:
                    // a blocked producer must drain its own inboxes while
                    // it spins, or two workers pushing to each other over
                    // full rings would livelock.
                    let route = |key: u64,
                                 memo: &mut FxHashSet<u64>,
                                 queue: &mut VecDeque<u64>,
                                 outbox: &mut Vec<Vec<u64>>,
                                 token: &mut TokenState| {
                        let owner = owner_of(key, THREADS);
                        if owner == me {
                            if memo.insert(key) {
                                queue.push_back(key);
                            }
                        } else {
                            outbox[owner].push(key);
                            if outbox[owner].len() >= 16 {
                                let mut batch = std::mem::take(&mut outbox[owner]);
                                let len = batch.len();
                                loop {
                                    match rings[me][owner].try_push(batch) {
                                        Ok(()) => {
                                            token.on_send(len);
                                            break;
                                        }
                                        Err(back) => {
                                            batch = back;
                                            for from in 0..THREADS {
                                                while let Some(got) = rings[from][me].try_pop() {
                                                    token.on_recv(got.len());
                                                    for key in got {
                                                        if memo.insert(key) {
                                                            queue.push_back(key);
                                                        }
                                                    }
                                                }
                                            }
                                            std::thread::yield_now();
                                        }
                                    }
                                }
                            }
                        }
                    };
                    loop {
                        if control.done.load(Ordering::Acquire) {
                            break;
                        }
                        let mut progressed = false;
                        for from in 0..THREADS {
                            while let Some(batch) = rings[from][me].try_pop() {
                                token.on_recv(batch.len());
                                progressed = true;
                                for key in batch {
                                    if memo.insert(key) {
                                        queue.push_back(key);
                                    }
                                }
                            }
                        }
                        while let Some(key) = queue.pop_front() {
                            expanded += 1;
                            progressed = true;
                            for child in [2 * key + 1, 2 * key + 2] {
                                if child < NODES {
                                    route(child, &mut memo, &mut queue, &mut outbox, &mut token);
                                }
                            }
                        }
                        if progressed {
                            continue;
                        }
                        let mut flushed = true;
                        for dest in 0..THREADS {
                            if dest == me || outbox[dest].is_empty() {
                                continue;
                            }
                            let mut batch = std::mem::take(&mut outbox[dest]);
                            let len = batch.len();
                            match rings[me][dest].try_push(batch) {
                                Ok(()) => token.on_send(len),
                                Err(back) => {
                                    batch = back;
                                    let _ = len;
                                    outbox[dest] = batch;
                                    flushed = false;
                                }
                            }
                        }
                        if !flushed {
                            continue;
                        }
                        if token.try_pass(control, me) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    // At the declared quiescence nothing may remain
                    // anywhere this worker can see.
                    assert!(queue.is_empty(), "worker {me} quit with local work");
                    assert!(
                        outbox.iter().all(Vec::is_empty),
                        "worker {me} quit with unsent successors"
                    );
                    total.fetch_add(expanded, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            NODES,
            "every key expanded exactly once"
        );
    }

    #[test]
    fn edge_log_meta_roundtrips() {
        let logged = 5u64;
        let choices = 9u64;
        let meta = logged | choices << 16 | FLAG_AMPLE | FLAG_PARTIAL;
        assert_eq!(meta & 0xffff, logged);
        assert_eq!((meta >> 16) & 0xffff, choices);
        assert!(meta & FLAG_AMPLE != 0);
        assert!(meta & FLAG_PARTIAL != 0);
        let word = 3u64 | 7u64 << 32;
        assert_eq!((word & 0xffff_ffff, word >> 32), (3, 7));
        for code in [
            LintCode::SessionDeficit,
            LintCode::BBoundViolation,
            LintCode::StaleEvidence,
            LintCode::InadmissibleStep,
            LintCode::NonTermination,
        ] {
            assert_eq!(code_from_tag(code_tag(code)), code);
        }
    }
}

/// Loom models for the routing ring and the termination token, built
/// only under `RUSTFLAGS="--cfg loom"` (the CI `loom-memo` job). Each
/// model is bounded — no unbounded spin loops — so loom can enumerate
/// every interleaving.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;

    #[test]
    fn ring_loses_no_batches_under_a_racing_consumer() {
        loom::model(|| {
            let ring = Arc::new(SpscRing::new(2));
            let consumer = {
                let ring = Arc::clone(&ring);
                loom::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..4 {
                        if let Some(value) = ring.try_pop() {
                            got.push(value);
                        }
                    }
                    got
                })
            };
            assert!(ring.try_push(1u32).is_ok());
            assert!(ring.try_push(2).is_ok());
            let mut got = consumer.join().expect("consumer");
            while let Some(value) = ring.try_pop() {
                got.push(value);
            }
            // No loss, no duplication, no reorder across the race.
            assert_eq!(got, vec![1, 2]);
        });
    }

    #[test]
    fn ring_never_overruns_its_capacity() {
        loom::model(|| {
            let ring = Arc::new(SpscRing::new(1));
            let consumer = {
                let ring = Arc::clone(&ring);
                loom::thread::spawn(move || ring.try_pop())
            };
            assert!(ring.try_push(7u32).is_ok());
            // Whatever the consumer did, a second push either fits the
            // freed slot or is refused — never a silent overwrite.
            let second = ring.try_push(8);
            let first = consumer.join().expect("consumer");
            let mut seen: Vec<u32> = first.into_iter().collect();
            while let Some(value) = ring.try_pop() {
                seen.push(value);
            }
            match second {
                Ok(()) => assert_eq!(seen, vec![7, 8]),
                Err(8) => assert_eq!(seen, vec![7]),
                Err(other) => panic!("push returned foreign value {other}"),
            }
        });
    }

    #[test]
    fn token_never_declares_done_with_a_message_in_flight() {
        loom::model(|| {
            let control = Arc::new(Control::new(2));
            let ring = Arc::new(SpscRing::new(2));
            let processed = Arc::new(AtomicBool::new(false));
            let peer = {
                let control = Arc::clone(&control);
                let ring = Arc::clone(&ring);
                let processed = Arc::clone(&processed);
                loom::thread::spawn(move || {
                    let mut state = TokenState::new();
                    for _ in 0..5 {
                        if control.done.load(Ordering::Acquire) {
                            break;
                        }
                        if ring.try_pop().is_some() {
                            state.on_recv(1);
                            processed.store(true, Ordering::Release);
                        } else {
                            let _ = state.try_pass(&control, 1);
                        }
                    }
                })
            };
            let mut state = TokenState::new();
            ring.try_push(42u32).expect("empty ring");
            state.on_send(1);
            let mut declared = false;
            for _ in 0..5 {
                if state.try_pass(&control, 0) {
                    declared = true;
                    break;
                }
            }
            peer.join().expect("peer");
            if declared {
                // Safra safety: termination implies the routed message
                // was already received and processed.
                assert!(
                    processed.load(Ordering::Acquire),
                    "done declared with a message still in flight"
                );
            }
        });
    }
}
