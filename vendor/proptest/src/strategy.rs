//! The [`Strategy`] trait and the combinators this workspace uses.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the draw was locally rejected (a
/// `prop_filter` predicate failed); the runner then discards the whole case
/// and tries a fresh one.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value, or `None` on a local rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Applies `f` to every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Rejects generated values failing `predicate`. The label is kept for
    /// API compatibility and error messages.
    fn prop_filter<R, F>(self, whence: R, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            label: whence.into(),
            predicate,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// The erased generator function of a [`BoxedStrategy`].
type GenerateFn<T> = Box<dyn Fn(&mut TestRng) -> Option<T>>;

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T> {
    generate: GenerateFn<T>,
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        (self.generate)(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.source.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    #[allow(dead_code)]
    label: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // A few local retries keep easy filters from rejecting whole cases.
        for _ in 0..8 {
            if let Some(value) = self.source.generate(rng) {
                if (self.predicate)(&value) {
                    return Some(value);
                }
            }
        }
        None
    }
}

/// See [`crate::prop_oneof!`]: uniform choice between boxed strategies.
#[derive(Debug)]
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Creates the union. Panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! requires >= 1 branch");
        Union { branches }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let index = rng.random_range(0..self.branches.len());
        self.branches[index].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
