//! The rescale-and-retime construction of Theorem 6.5 (sporadic message
//! passing).
//!
//! The proof takes the round-robin computation with step period
//! `K = 2·d2·c1 / (d2 − u/2)` and all delays exactly `d2`, compresses time
//! by `2c1/K` (making every step gap exactly `2c1` and every delay exactly
//! `d2 − u/2`), and then, block by block (`B = ⌊u/4c1⌋` rounds each),
//! shifts the chosen process `p_{i_k}` (and the deliveries to it) halfway
//! toward the block start and `p_{i_{k−1}}` halfway toward the block end.
//! Every shift is at most `u/4`, so delays stay within `[d2 − u, d2] ⊆
//! [d1, d2]` and step gaps stay `≥ c1`; yet within each block all of
//! `p_{i_k}`'s steps now precede all of `p_{i_{k−1}}`'s, which caps the
//! computation at one session per block.
//!
//! This module performs the construction **at trace level**: it takes a
//! recorded trace (Lemma 6.7 establishes the retimed sequence is a
//! computation reaching the same global state — per-process and
//! per-message orders are preserved, which we assert), rebuilds the timed
//! trace with the new times, certifies it admissible with the independent
//! checker, and recounts its sessions.

use std::collections::BTreeMap;

use session_core::verify::{check_admissible, count_sessions};
use session_sim::{StepKind, Trace, TraceEvent};
use session_types::{
    Dur, Error, KnownBounds, MsgId, PortId, ProcessId, Ratio, Result, SessionSpec, Time,
};

/// What the rescaling adversary produced.
#[derive(Clone, Debug)]
#[must_use = "check defeated()/admissible before drawing conclusions"]
pub struct RescaleOutcome {
    /// The step period `K = 2·d2·c1/(d2 − u/2)` the input computation must
    /// have used.
    pub k_period: Dur,
    /// `B = ⌊u/4c1⌋`, the block length in rounds.
    pub block_rounds: u64,
    /// Number of blocks in the decomposition.
    pub blocks: usize,
    /// Sessions in the retimed trace.
    pub sessions: u64,
    /// The required number of sessions.
    pub s: u64,
    /// Whether the retimed trace passed the sporadic admissibility check
    /// (gaps `≥ c1`, delays within `[d1, d2]`).
    pub admissible: bool,
}

impl RescaleOutcome {
    /// Returns `true` if the adversary succeeded: an admissible retiming
    /// with fewer than `s` sessions.
    pub fn defeated(&self) -> bool {
        self.admissible && self.sessions < self.s
    }
}

/// The step period `K` the input computation must be recorded at.
///
/// Returns an error when `d2 <= 0` (no meaningful delay window).
pub fn k_period(c1: Dur, d1: Dur, d2: Dur) -> Result<Dur> {
    if !d2.is_positive() {
        return Err(Error::invalid_params("K requires d2 > 0"));
    }
    let u = d2 - d1;
    let denominator = d2 - u / 2;
    Ok(d2 * c1.as_ratio() * Ratio::from_int(2) / denominator.as_ratio())
}

/// Applies the Theorem 6.5 construction to `trace`, which must be a
/// message-passing computation recorded under round-robin steps of period
/// exactly [`k_period`] and constant delays `d2`.
///
/// # Errors
///
/// * [`Error::InvalidParams`] if the sporadic constants are degenerate
///   (`c1 <= 0`, `d1 > d2`, `B = ⌊u/4c1⌋ < 1`, or `n < 2`).
/// * [`Error::Inadmissible`] if the input trace does not have the required
///   round structure.
pub fn rescaling_attack(
    trace: &Trace,
    spec: &SessionSpec,
    c1: Dur,
    d1: Dur,
    d2: Dur,
) -> Result<RescaleOutcome> {
    if !c1.is_positive() || d1.is_negative() || d1 > d2 {
        return Err(Error::invalid_params("invalid sporadic constants"));
    }
    if spec.n() < 2 {
        return Err(Error::invalid_params(
            "the construction needs at least two processes",
        ));
    }
    let u = d2 - d1;
    let b_rounds = u.div_floor(c1 * 4);
    if b_rounds < 1 {
        return Err(Error::invalid_params(
            "rescaling attack requires ⌊u/4c1⌋ >= 1",
        ));
    }
    let b_rounds = b_rounds as u64;
    let k = k_period(c1, d1, d2)?;
    let scale = (c1 * 2).div_exact(k); // 2c1 / K

    let events = trace.events();
    if events.is_empty() {
        return Err(Error::invalid_params("empty trace"));
    }

    // T'' = T * 2c1/K for every event.
    let rescaled: Vec<Time> = events
        .iter()
        .map(|e| Time::from_ratio((e.time - Time::ZERO).as_ratio() * scale))
        .collect();

    // Block boundaries: t_j = B * 2c1 * j. Block of a rescaled time t is
    // the smallest j with t <= t_j (half-open (t_{j-1}, t_j]).
    let block_len = c1 * 2 * b_rounds as i128;
    let block_of = |t: Time| -> usize {
        let q = (t - Time::ZERO).div_exact(block_len);
        // ceil(q) with exact arithmetic; time 0 belongs to block 1.
        let ceil = q.ceil();
        (ceil.max(1)) as usize
    };
    let last_block = block_of(*rescaled.iter().max().expect("nonempty"));

    // Choose i_k != i_{k-1}, arbitrarily.
    let mut chosen = Vec::with_capacity(last_block + 1);
    chosen.push(ProcessId::new(0)); // i_0
    for k_idx in 1..=last_block {
        let candidate = ProcessId::new(k_idx % spec.n());
        let prev = chosen[k_idx - 1];
        let pick = if candidate == prev {
            ProcessId::new((k_idx + 1) % spec.n())
        } else {
            candidate
        };
        chosen.push(pick);
    }

    // Retime: within block k, p_{i_k} (steps and deliveries to it) move
    // halfway toward t_{k-1}; p_{i_{k-1}} halfway toward t_k.
    let mut new_time = rescaled.clone();
    for (idx, event) in events.iter().enumerate() {
        let t = rescaled[idx];
        let k_idx = block_of(t);
        let t_lo = Time::ZERO + block_len * (k_idx as i128 - 1);
        let t_hi = Time::ZERO + block_len * k_idx as i128;
        let actor = event.process; // recipient for deliveries
        if actor == chosen[k_idx] {
            new_time[idx] = t_lo + (t - t_lo) / 2;
        } else if actor == chosen[k_idx - 1] {
            new_time[idx] = t_hi - (t_hi - t) / 2;
        }
    }

    // Per-process step order must be preserved (Lemma 6.7 applies to the
    // construction only under that invariant).
    let mut last_seen: BTreeMap<ProcessId, Time> = BTreeMap::new();
    for (idx, event) in events.iter().enumerate() {
        if !event.kind.is_process_step() {
            continue;
        }
        if let Some(&prev) = last_seen.get(&event.process) {
            if new_time[idx] < prev {
                return Err(Error::inadmissible(
                    "retiming reordered a process's own steps",
                ));
            }
        }
        last_seen.insert(event.process, new_time[idx]);
    }

    // Rebuild a timed trace with the new times, remapping messages.
    let order = {
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| (new_time[i], i));
        order
    };
    // Original messages grouped by their sending step (process, time).
    let mut sends_by_step: BTreeMap<(ProcessId, Time), Vec<MsgId>> = BTreeMap::new();
    for record in trace.messages() {
        sends_by_step
            .entry((record.from, record.sent_at))
            .or_default()
            .push(record.msg);
    }
    let mut new_trace = Trace::new(trace.num_processes());
    let mut msg_map: BTreeMap<MsgId, MsgId> = BTreeMap::new();
    for &idx in &order {
        let event = &events[idx];
        let t = new_time[idx];
        match event.kind {
            StepKind::MpStep { broadcast, .. } => {
                if broadcast {
                    if let Some(originals) = sends_by_step.get(&(event.process, event.time)) {
                        for &orig in originals {
                            let record = trace.message(orig).expect("recorded");
                            let new_id = new_trace.record_send(record.from, record.to, t);
                            msg_map.insert(orig, new_id);
                        }
                    }
                }
                new_trace.push(TraceEvent {
                    time: t,
                    ..event.clone()
                });
            }
            StepKind::Deliver { msg } => {
                let new_id = *msg_map
                    .get(&msg)
                    .ok_or_else(|| Error::inadmissible("delivery retimed before its send"))?;
                new_trace.record_delivery(new_id, t);
                new_trace.push(TraceEvent {
                    time: t,
                    process: event.process,
                    kind: StepKind::Deliver { msg: new_id },
                    idle_after: event.idle_after,
                });
            }
            StepKind::VarAccess { .. } => {
                return Err(Error::invalid_params(
                    "rescaling attack applies to message-passing traces",
                ))
            }
        }
    }

    let bounds = KnownBounds::sporadic(c1, d1, d2)?;
    let admissible = check_admissible(&new_trace, &bounds).is_ok();
    let n = spec.n();
    let sessions = count_sessions(&new_trace, n, move |p: ProcessId| {
        (p.index() < n).then(|| PortId::new(p.index()))
    });

    Ok(RescaleOutcome {
        k_period: k,
        block_rounds: b_rounds,
        blocks: last_block,
        sessions,
        s: spec.s(),
        admissible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveMpPort;
    use session_core::report::{run_mp, MpConfig};
    use session_core::system::port_of;
    use session_mpm::{MpEngine, MpProcess};
    use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
    use session_types::TimingModel;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    #[test]
    fn k_period_matches_derivation() {
        // d1 = 0: u = d2, K = 2*d2*c1/(d2/2) = 4*c1.
        assert_eq!(k_period(d(2), d(0), d(100)).unwrap(), d(8));
        // d1 = d2: u = 0, K = 2*c1.
        assert_eq!(k_period(d(3), d(10), d(10)).unwrap(), d(6));
        assert!(k_period(d(1), d(0), d(0)).is_err());
    }

    /// Record the naive witness (s silent steps, no messages) at period K
    /// and apply the construction: the retiming must be admissible and
    /// contain < s sessions.
    #[test]
    fn rescaling_defeats_the_naive_witness() {
        let spec = SessionSpec::new(4, 3, 2).unwrap();
        let c1 = d(1);
        let d1 = d(0);
        let d2 = d(16); // u = 16, B = 4, K = 4*c1 = 4
        let k = k_period(c1, d1, d2).unwrap();

        let processes: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..3)
            .map(|_| Box::new(NaiveMpPort::new(4)) as Box<_>)
            .collect();
        let ports = (0..3)
            .map(|i| (ProcessId::new(i), PortId::new(i)))
            .collect();
        let mut engine = MpEngine::new(processes, ports).unwrap();
        let mut sched = FixedPeriods::uniform(3, k).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default())
            .unwrap();
        assert!(outcome.terminated);
        // Sanity: in the unperturbed round-robin run the witness *does*
        // produce s sessions — that is exactly why it looks plausible.
        assert_eq!(count_sessions(&outcome.trace, 3, port_of(&spec)), 4);

        let result = rescaling_attack(&outcome.trace, &spec, c1, d1, d2).unwrap();
        assert!(result.admissible, "retimed trace must be admissible");
        assert!(
            result.sessions < 4,
            "retiming must destroy sessions: got {}",
            result.sessions
        );
        assert!(result.defeated());
    }

    /// The correct A(sp), recorded at period K with delays d2, survives:
    /// the construction still yields an admissible trace (delays in
    /// [d2-u, d2]), but does not drop below s sessions because A(sp) keeps
    /// stepping until it has proof.
    #[test]
    fn rescaling_does_not_defeat_a_sp() {
        let spec = SessionSpec::new(3, 2, 2).unwrap();
        let c1 = d(1);
        let d1 = d(0);
        let d2 = d(16);
        let k = k_period(c1, d1, d2).unwrap();
        let bounds = KnownBounds::sporadic(c1, d1, d2).unwrap();

        let mut sched = FixedPeriods::uniform(2, k).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let report = run_mp(
            MpConfig {
                model: TimingModel::Sporadic,
                spec,
                bounds,
            },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )
        .unwrap();
        assert!(report.terminated);

        let result = rescaling_attack(&report.trace, &spec, c1, d1, d2).unwrap();
        assert!(
            result.admissible,
            "delays must remain within [d2-u, d2] ⊆ [d1, d2]"
        );
        assert!(
            result.sessions >= 3,
            "A(sp) took enough steps that even the retimed order has s sessions: {}",
            result.sessions
        );
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let spec = SessionSpec::new(2, 2, 2).unwrap();
        let trace = Trace::new(2);
        // u too small for a block.
        assert!(rescaling_attack(&trace, &spec, d(1), d(0), d(3)).is_err());
        // n = 1.
        let solo = SessionSpec::new(2, 1, 2).unwrap();
        assert!(rescaling_attack(&trace, &solo, d(1), d(0), d(16)).is_err());
        // Empty trace with valid constants.
        assert!(rescaling_attack(&trace, &spec, d(1), d(0), d(16)).is_err());
    }
}
