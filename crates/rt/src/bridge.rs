//! From real-time schedules back to session-problem step schedules.
//!
//! The paper motivates its timing models with real-time workloads (§1): a
//! process that acts on every *job completion* of a periodic task steps at
//! (roughly) constant intervals — the **periodic** model; one driven by
//! sporadic jobs has a minimum but no maximum step gap — the **sporadic**
//! model. This module makes the connection executable: simulate a task set,
//! extract each task's completion times, and package them as a
//! [`session_sim::StepSchedule`] that a session algorithm can run under.

use std::collections::BTreeMap;

use session_sim::ExplicitSchedule;
use session_types::{Dur, Error, ProcessId, Result, Time};

use crate::sched::ScheduleOutcome;
use crate::task::{TaskId, TaskSet};

/// Builds a step schedule in which process `i` steps at every completion of
/// task `i` recorded in `outcome`, continuing at `tail_period` beyond the
/// simulated horizon.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if any task has no completions (the
/// session processes must take infinitely many steps, so every driver task
/// needs at least one job in the window), or if `tail_period <= 0`.
pub fn completion_step_schedule(
    tasks: &TaskSet,
    outcome: &ScheduleOutcome,
    tail_period: Dur,
) -> Result<ExplicitSchedule> {
    let mut scripted: BTreeMap<ProcessId, Vec<Time>> = BTreeMap::new();
    for (id, _) in tasks.iter() {
        let mut completions = outcome.completions_of(id);
        completions.sort();
        completions.dedup();
        if completions.is_empty() {
            return Err(Error::invalid_params(format!(
                "task {id} completed no jobs within the horizon"
            )));
        }
        scripted.insert(ProcessId::new(id.index()), completions);
    }
    ExplicitSchedule::new(scripted, tail_period)
}

/// Derives per-process *sporadic gap scripts* for the real-clock pacer
/// (`session-net`): process `i` steps with gaps shaped by the completion
/// gaps of task `i` in `outcome`, each clamped to at least `c1`.
///
/// The clamp is what turns an empirical job stream into an *admissible*
/// sporadic schedule: EDF interference can squeeze two completions closer
/// than the task's minimum separation (see [`completion_gap_window`]), but
/// the sporadic model requires every step gap `>= c1`. Clamping preserves
/// the stream's burst shape while guaranteeing admissibility, so a pacer
/// replaying the script on a real timer produces a provably admissible
/// sporadic computation.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if `c1 <= 0` (a zero-width sporadic
/// separation — `SA006`) or any task completed no jobs in the horizon.
pub fn sporadic_gap_script(
    tasks: &TaskSet,
    outcome: &ScheduleOutcome,
    c1: Dur,
) -> Result<BTreeMap<ProcessId, Vec<Dur>>> {
    if !c1.is_positive() {
        return Err(Error::invalid_params(format!(
            "sporadic gap script requires c1 > 0, got {c1}"
        )));
    }
    let mut scripts = BTreeMap::new();
    for (id, _) in tasks.iter() {
        let mut completions = outcome.completions_of(id);
        completions.sort();
        completions.dedup();
        if completions.is_empty() {
            return Err(Error::invalid_params(format!(
                "task {id} completed no jobs within the horizon"
            )));
        }
        let mut gaps = Vec::with_capacity(completions.len());
        let mut prev = Time::ZERO;
        for t in completions {
            gaps.push((t - prev).max(c1));
            prev = t;
        }
        scripts.insert(ProcessId::new(id.index()), gaps);
    }
    Ok(scripts)
}

/// The smallest and largest gaps between consecutive completions of `task`
/// (including the gap from time 0 to its first completion): the empirical
/// `[c1, c2]` window this task would present to a session algorithm.
///
/// Returns `None` if the task completed no jobs.
pub fn completion_gap_window(outcome: &ScheduleOutcome, task: TaskId) -> Option<(Dur, Dur)> {
    let completions = outcome.completions_of(task);
    let first = *completions.first()?;
    let mut min_gap = first - Time::ZERO;
    let mut max_gap = min_gap;
    for pair in completions.windows(2) {
        let gap = pair[1] - pair[0];
        min_gap = min_gap.min(gap);
        max_gap = max_gap.max(gap);
    }
    Some((min_gap, max_gap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{simulate, Policy};
    use crate::task::PeriodicTask;
    use session_sim::StepSchedule;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    fn ts(tasks: &[(i128, i128)]) -> TaskSet {
        TaskSet::periodic(
            tasks
                .iter()
                .map(|&(t, c)| PeriodicTask::new(d(t), d(c)).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_task_completions_are_periodic() {
        // One task alone completes exactly one period apart: its step
        // schedule is periodic in the paper's sense.
        let tasks = ts(&[(3, 1)]);
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(30)).unwrap();
        let (min_gap, max_gap) = completion_gap_window(&out, TaskId::new(0)).unwrap();
        // First completion at C = 1, then every T = 3.
        assert_eq!(max_gap, d(3));
        assert_eq!(min_gap, d(1));
        let gaps_after_first = out.completions_of(TaskId::new(0));
        for pair in gaps_after_first.windows(2) {
            assert_eq!(pair[1] - pair[0], d(3));
        }
    }

    #[test]
    fn schedule_replays_completions_then_tails() {
        let tasks = ts(&[(3, 1), (5, 1)]);
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(15)).unwrap();
        let mut sched = completion_step_schedule(&tasks, &out, d(4)).unwrap();
        let p0 = ProcessId::new(0);
        let first = sched.first_step(p0);
        assert_eq!(first, Time::from_int(1)); // completion of the first job
        let second = sched.next_step(p0, first);
        assert!(second > first);
    }

    #[test]
    fn interference_bounds_the_gap_window() {
        // Two tasks: the longer one's completions jitter within a window
        // determined by interference — the semi-synchronous picture.
        let tasks = ts(&[(4, 1), (6, 2)]);
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(120)).unwrap();
        assert!(out.all_deadlines_met());
        let (min_gap, max_gap) = completion_gap_window(&out, TaskId::new(1)).unwrap();
        assert!(min_gap.is_positive());
        assert!(max_gap <= d(6) + d(2), "bounded by period + interference");
        assert!(min_gap <= max_gap);
    }

    #[test]
    fn missing_completions_are_an_error() {
        let tasks = ts(&[(100, 10)]);
        // Horizon shorter than the first completion.
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(5)).unwrap();
        assert!(completion_step_schedule(&tasks, &out, d(1)).is_err());
        assert!(sporadic_gap_script(&tasks, &out, d(1)).is_err());
    }

    #[test]
    fn gap_scripts_respect_the_minimum_separation() {
        let tasks = ts(&[(4, 1), (6, 2)]);
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(120)).unwrap();
        let c1 = d(2);
        let scripts = sporadic_gap_script(&tasks, &out, c1).unwrap();
        assert_eq!(scripts.len(), 2);
        for (p, gaps) in &scripts {
            assert!(!gaps.is_empty(), "{p} has no gaps");
            assert!(gaps.iter().all(|&g| g >= c1), "{p} gap below c1");
        }
        // Task 0 completes its first job at t = 1 < c1 = 2: the clamp must
        // have engaged somewhere.
        let p0_gaps = &scripts[&ProcessId::new(0)];
        assert_eq!(p0_gaps[0], c1);
    }

    #[test]
    fn zero_separation_is_rejected() {
        let tasks = ts(&[(3, 1)]);
        let out = simulate(&tasks, Policy::EdfPreemptive, Time::from_int(30)).unwrap();
        assert!(sporadic_gap_script(&tasks, &out, Dur::ZERO).is_err());
    }
}
