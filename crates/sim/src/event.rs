//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use session_types::Time;

/// A min-heap of `(Time, payload)` pairs with FIFO tie-breaking.
///
/// Events pushed at equal times pop in insertion order, which makes every
/// simulation in this workspace fully deterministic: the "round robin order"
/// computations used by the paper's lower-bound proofs are obtained simply by
/// seeding the queue with processes in index order.
///
/// # Examples
///
/// ```
/// use session_sim::EventQueue;
/// use session_types::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_int(5), 'x');
/// q.push(Time::from_int(3), 'y');
/// assert_eq!(q.peek_time(), Some(Time::from_int(3)));
/// assert_eq!(q.pop(), Some((Time::from_int(3), 'y')));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    time: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (smallest time, then smallest sequence number) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Time, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_int(3), 3);
        q.push(Time::from_int(1), 1);
        q.push(Time::from_int(2), 2);
        assert_eq!(q.pop(), Some((Time::from_int(1), 1)));
        assert_eq!(q.pop(), Some((Time::from_int(2), 2)));
        assert_eq!(q.pop(), Some((Time::from_int(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Time::from_int(7), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Time::from_int(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        q.push(Time::from_int(1), "a");
        q.push(Time::from_int(1), "b");
        assert_eq!(q.pop(), Some((Time::from_int(1), "a")));
        q.push(Time::from_int(1), "c");
        assert_eq!(q.pop(), Some((Time::from_int(1), "b")));
        assert_eq!(q.pop(), Some((Time::from_int(1), "c")));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_int(4), ());
        q.push(Time::from_int(2), ());
        assert_eq!(q.peek_time(), Some(Time::from_int(2)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn rational_times_are_ordered_exactly() {
        use session_types::Ratio;
        let mut q = EventQueue::new();
        q.push(Time::from_ratio(Ratio::new(1, 3)), "third");
        q.push(Time::from_ratio(Ratio::new(1, 4)), "quarter");
        q.push(Time::from_ratio(Ratio::new(5, 12)), "five-twelfths");
        assert_eq!(q.pop().unwrap().1, "quarter");
        assert_eq!(q.pop().unwrap().1, "third");
        assert_eq!(q.pop().unwrap().1, "five-twelfths");
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }
}
