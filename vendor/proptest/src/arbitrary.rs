//! `any::<T>()` for the primitive types the workspace samples.

use std::fmt;
use std::marker::PhantomData;

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A type with a canonical full-range strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}
