//! Satellite check for the `paper-verbatim` feature of `A(sp)`: the
//! pseudocode as printed in §6 (no `temp_buf` clear in the condition-1
//! branch) certifies sessions from stale freshness evidence, and the
//! analyzer's exhaustive exploration finds it as `SA003`, while the
//! corrected implementation explores the *same scope* clean.
//!
//! The scope is the erratum's natural habitat: `d1 = d2` gives `u = 0`
//! and `B = 1`, so condition 2 arms after a single silent step and the
//! stale-evidence window opens as early as possible. Three processes are
//! the minimum: with only two, every step of the *other* process closes a
//! greedy session, so inflated claims can never outrun the real count.
//! The gap menu pairs `c1` with a long pause and is explored as one fixed
//! gap per process, so the cheating process can run fast (gap `c1`,
//! collecting stale evidence and then its own fresh broadcast) while the
//! other two stall real sessions for longer than the whole cheat takes.

use session_analyzer::explore::{explore, AnyMachine};
use session_analyzer::machine::{GapMode, MpAlgo, MpMachine};
use session_analyzer::LintCode;
use session_core::algorithms::SporadicMpPort;
use session_types::{Dur, ProcessId, Time};

const N: usize = 3;
const S: u64 = 3;
const MAX_DEPTH: usize = 96;

/// Builds the exploration roots for `N` copies of `port`: every process
/// first steps at `t = c1` and keeps a fixed per-process gap, either
/// `c1` (fast) or `6·c1` (stalling); the single admissible delay is
/// `d1 = d2`. The scope is the gap assignments with at most one fast
/// process — with two or more fast processes same-instant event
/// interleavings explode without adding stall room — and by symmetry the
/// fast process is fixed to `p0`, leaving `[c1, 6c1, 6c1]` and
/// `[6c1, 6c1, 6c1]`.
fn roots(make_port: impl Fn(usize) -> SporadicMpPort) -> Vec<AnyMachine> {
    let algos: Vec<MpAlgo> = (0..N).map(|i| MpAlgo::Sporadic(make_port(i))).collect();
    let fast = Dur::from_int(1);
    let slow = Dur::from_int(6);
    let delays = vec![Dur::from_int(2)];
    let first_steps = vec![Time::ZERO + Dur::from_int(1); N];
    [vec![fast, slow, slow], vec![slow, slow, slow]]
        .into_iter()
        .map(|assignment| {
            AnyMachine::Mp(MpMachine::new(
                algos.clone(),
                GapMode::FixedPerProcess(assignment),
                delays.clone(),
                first_steps.clone(),
            ))
        })
        .collect()
}

/// `u = 0` (so `B = 1`): `c1 = 1`, `d1 = d2 = 2`.
fn corrected(i: usize) -> SporadicMpPort {
    SporadicMpPort::new(
        ProcessId::new(i),
        S,
        N,
        Dur::from_int(1),
        Dur::from_int(2),
        Dur::from_int(2),
    )
    .expect("valid sporadic parameters")
}

fn verbatim(i: usize) -> SporadicMpPort {
    SporadicMpPort::paper_verbatim(
        ProcessId::new(i),
        S,
        N,
        Dur::from_int(1),
        Dur::from_int(2),
        Dur::from_int(2),
    )
    .expect("valid sporadic parameters")
}

#[test]
fn paper_verbatim_sporadic_mp_certifies_stale_sessions() {
    let exploration = explore(&roots(verbatim), N, S, MAX_DEPTH);
    let codes: Vec<LintCode> = exploration.violations.iter().map(|v| v.code).collect();
    assert!(
        codes.contains(&LintCode::StaleEvidence),
        "the verbatim pseudocode must be caught claiming a phantom session, \
         found {codes:?} over {} states",
        exploration.states
    );
}

#[test]
fn corrected_sporadic_mp_is_clean_at_the_same_scope() {
    let exploration = explore(&roots(corrected), N, S, MAX_DEPTH);
    assert!(
        exploration.violations.is_empty(),
        "the corrected algorithm must explore clean at the erratum's scope, found: {:?}",
        exploration
            .violations
            .iter()
            .map(|v| format!("{} {}", v.code, v.message))
            .collect::<Vec<_>>()
    );
    assert!(exploration.states > 0);
}
