//! Representation independence of the session counter: the same abstract
//! sequence of port steps must count identically whether it is encoded as a
//! shared-memory trace (port tags on `VarAccess` events) or a
//! message-passing trace (`MpStep` events plus the port map).

use proptest::prelude::*;
use session_core::verify::{count_sessions, session_boundaries};
use session_sim::{StepKind, Trace, TraceEvent};
use session_types::{PortId, ProcessId, Time, VarId};

/// The abstract computation: a sequence of (port index, idles-after) steps,
/// where port `i` is taken by port process `i`.
fn encode_sm(steps: &[(usize, bool)], n: usize) -> Trace {
    let mut trace = Trace::new(n);
    for (k, &(port, idle)) in steps.iter().enumerate() {
        trace.push(TraceEvent {
            time: Time::from_int(k as i128 + 1),
            process: ProcessId::new(port),
            kind: StepKind::VarAccess {
                var: VarId::new(port),
                port: Some(PortId::new(port)),
            },
            idle_after: idle,
        });
    }
    trace
}

fn encode_mp(steps: &[(usize, bool)], n: usize) -> Trace {
    let mut trace = Trace::new(n);
    for (k, &(port, idle)) in steps.iter().enumerate() {
        trace.push(TraceEvent {
            time: Time::from_int(k as i128 + 1),
            process: ProcessId::new(port),
            kind: StepKind::MpStep {
                received: 0,
                broadcast: false,
            },
            idle_after: idle,
        });
    }
    trace
}

/// Idle flags must be absorbing for the encoding to be a legal computation.
fn make_idle_absorbing(steps: &mut [(usize, bool)]) {
    let mut idle = std::collections::BTreeSet::new();
    for (port, flag) in steps.iter_mut() {
        if idle.contains(port) {
            *flag = true;
        } else if *flag {
            idle.insert(*port);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sm_and_mp_encodings_count_identically(
        n in 1usize..5,
        raw in proptest::collection::vec((0usize..5, proptest::bool::weighted(0.15)), 0..30),
    ) {
        let mut steps: Vec<(usize, bool)> =
            raw.into_iter().map(|(p, idle)| (p % n, idle)).collect();
        make_idle_absorbing(&mut steps);

        let sm = encode_sm(&steps, n);
        let mp = encode_mp(&steps, n);
        let port_of = move |p: ProcessId| (p.index() < n).then(|| PortId::new(p.index()));

        let sm_count = count_sessions(&sm, n, |_| None);
        let mp_count = count_sessions(&mp, n, port_of);
        prop_assert_eq!(sm_count, mp_count, "steps: {:?}", steps);

        let sm_bounds = session_boundaries(&sm, n, |_| None);
        let mp_bounds = session_boundaries(&mp, n, port_of);
        prop_assert_eq!(sm_bounds, mp_bounds);
    }
}
