//! The `session-cli stats` subcommand: run one configuration with the
//! in-memory recorder attached and print everything the instrumentation
//! layer observed — per-process step counts, engine counters and gauges,
//! and histogram summaries.
//!
//! `target=NAME` switches to analyzer mode: instead of one engine run, it
//! runs the explicit explorer (flight recorder on, so the `explore.*`
//! counters and timing histograms are populated — see DESIGN.md §15) and
//! the symbolic zone walker (`zones.*` counters, DBM closure timing) over
//! the named target, and renders both engines' metrics as one unified
//! snapshot.
//!
//! ```text
//! session-cli stats model=periodic comm=mp s=3 n=3
//! session-cli stats model=sync comm=sm s=2 n=2 json=stats.json
//! session-cli stats target=PeriodicMp threads=4 json=stats.json
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use session_analyzer::{
    analyze_target_flight, analyze_target_symbolic_recorded, target_names, ExploreOpts, FlightOpts,
};
use session_core::analysis::analyze;
use session_core::system::port_of;
use session_obs::InMemoryRecorder;
use session_sim::process_stats;
use session_types::{Error, Result};

use crate::cli::CliConfig;

/// A fully parsed `stats` command line.
#[derive(Clone, Debug)]
pub struct StatsConfig {
    /// The run configuration (everything `session-cli` itself accepts).
    /// `None` in analyzer mode (`target=`).
    pub run: Option<CliConfig>,
    /// Analyzer mode: the target whose explicit + symbolic metrics to
    /// snapshot.
    pub target: Option<String>,
    /// Worker threads for analyzer mode's explicit exploration.
    pub threads: usize,
    /// Where to also write the metrics snapshot as JSON, if requested.
    pub json: Option<PathBuf>,
}

impl StatsConfig {
    /// The usage string printed on parse errors.
    pub const USAGE: &'static str = "\
usage: session-cli stats [key=value ...]
  json=PATH    also write the metrics snapshot as JSON
  target=NAME  analyzer mode: snapshot the explicit explorer's and the
               symbolic zone walker's metrics for one registered target
  threads=N    worker threads for analyzer mode (default 1)
plus (without target=) every `session-cli` run option (model=, comm=, s=,
n=, schedule=, delay=, seed=, max-steps=, ...).";

    /// Parses the arguments after the `stats` keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (carrying a usage hint) when a run
    /// option is malformed, or when `target=` is combined with run
    /// options.
    pub fn parse<I, S>(args: I) -> Result<StatsConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let bad = |msg: &str| Error::invalid_params(format!("{msg}\n{}", StatsConfig::USAGE));
        let mut json = None;
        let mut target: Option<String> = None;
        let mut threads: Option<usize> = None;
        let mut run_args: Vec<String> = Vec::new();
        for arg in args {
            let arg = arg.as_ref();
            match arg.split_once('=') {
                Some(("json", path)) => json = Some(PathBuf::from(path)),
                Some(("target", name)) => {
                    if !target_names().contains(&name) {
                        return Err(bad(&format!("unknown target `{name}`")));
                    }
                    target = Some(name.to_string());
                }
                Some(("threads", value)) => {
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| bad(&format!("threads= wants a count, got `{value}`")))?;
                    if parsed == 0 {
                        return Err(bad("threads=0 is meaningless; pass threads=1 or more"));
                    }
                    threads = Some(parsed);
                }
                _ => run_args.push(arg.to_string()),
            }
        }
        if let Some(target) = target {
            if !run_args.is_empty() {
                return Err(bad(&format!(
                    "target= is analyzer mode and takes no run options (got `{}`)",
                    run_args.join(" ")
                )));
            }
            return Ok(StatsConfig {
                run: None,
                target: Some(target),
                threads: threads.unwrap_or(1),
                json,
            });
        }
        if threads.is_some() {
            return Err(bad("threads= only applies to analyzer mode (target=)"));
        }
        let run = CliConfig::parse(&run_args)
            .map_err(|err| Error::invalid_params(format!("{err}\n{}", StatsConfig::USAGE)))?;
        Ok(StatsConfig {
            run: Some(run),
            target: None,
            threads: 1,
            json,
        })
    }

    /// Runs the configuration and renders the report plus the recorded
    /// metrics, returning the printable report and the snapshot JSON.
    ///
    /// # Errors
    ///
    /// Propagates parameter and engine errors from the run.
    pub fn render(&self) -> Result<(String, String)> {
        if let Some(target) = &self.target {
            return Ok(self.render_target(target));
        }
        let run = self.run.as_ref().expect("either run or target is set"); // wslint: allow(ws004): constructors set exactly one of run/target
        let mut recorder = InMemoryRecorder::new();
        let (report, _bounds) = run.run_recorded(&mut recorder)?;
        let snapshot = recorder.into_snapshot();
        let spec = run.spec;

        let mut out = String::new();
        let _ = writeln!(out, "{} / {} — {}", run.model, run.comm, spec);
        let _ = writeln!(
            out,
            "terminated: {}   sessions: {}/{}   steps: {}",
            report.terminated,
            report.sessions,
            spec.s(),
            report.steps
        );

        let analysis = analyze(&report.trace, spec.n(), port_of(&spec));
        let ports = run.port_labels(report.trace.num_processes());
        // `process_stats` only tags shared-memory port steps; recount via
        // the port map so message-passing rows are right too.
        let events = report.trace.events();
        let mut port_steps = vec![0usize; report.trace.num_processes()];
        for (i, _port) in report.trace.port_steps(port_of(&spec)) {
            port_steps[events[i].process.index()] += 1;
        }
        let _ = writeln!(out, "\n## per process\n");
        let _ = writeln!(out, "| process | port | steps | port steps | idle at |");
        let _ = writeln!(out, "|---|---|---:|---:|---|");
        for (pid, stats) in process_stats(&report.trace) {
            let port = ports
                .get(pid.index())
                .and_then(|p| p.map(|p| p.to_string()))
                .unwrap_or_else(|| "-".into());
            let idle = stats.idle_at.map_or_else(|| "-".into(), |t| t.to_string());
            let _ = writeln!(
                out,
                "| {pid} | {port} | {} | {} | {idle} |",
                stats.steps,
                port_steps.get(pid.index()).copied().unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            "\nmessages: {} sent, {} delivered   sessions closed: {}",
            analysis.messages_sent,
            analysis.messages_delivered,
            analysis.session_close_times.len()
        );
        let _ = writeln!(out, "\n## recorded metrics\n");
        out.push_str(&snapshot.to_markdown());
        Ok((out, snapshot.to_json()))
    }

    /// Analyzer mode: runs the explicit explorer (flight recorder on, so
    /// the `explore.*` counters, time-split totals and lock-wait/idle
    /// histograms are populated) and the symbolic zone walker (`zones.*`
    /// counters and DBM closure timing) over `target`, and renders both
    /// engines' metrics as one unified snapshot.
    fn render_target(&self, target: &str) -> (String, String) {
        let expect = "parse validated the target name";
        let mut recorder = InMemoryRecorder::new();
        let opts = ExploreOpts {
            threads: self.threads,
            ..ExploreOpts::default()
        };
        let (report, _profile) =
            analyze_target_flight(target, opts, &mut recorder, &FlightOpts::profiled())
                .expect(expect); // wslint: allow(ws004): target names are validated at parse time
        let symbolic = analyze_target_symbolic_recorded(target, &mut recorder).expect(expect); // wslint: allow(ws004): target names are validated at parse time
        let snapshot = recorder.into_snapshot();

        let mut out = String::new();
        let _ = writeln!(out, "analyzer — target {target} (threads={})", self.threads);
        let explicit = &report.targets[0];
        let _ = writeln!(
            out,
            "explicit: {} states, {} memo hits, {} findings{}",
            explicit.states,
            explicit.memo_hits,
            report.findings.len(),
            if explicit.truncated {
                " (truncated)"
            } else {
                ""
            }
        );
        let zones = &symbolic.targets[0];
        let _ = writeln!(
            out,
            "symbolic: {} zone states, {} findings{}",
            zones.states,
            symbolic.findings.len(),
            if zones.truncated { " (truncated)" } else { "" }
        );
        let _ = writeln!(out, "\n## recorded metrics\n");
        out.push_str(&snapshot.to_markdown());
        (out, snapshot.to_json())
    }

    /// Runs the configuration, writes the JSON snapshot if requested, and
    /// returns the printable report.
    ///
    /// # Errors
    ///
    /// Propagates run errors and I/O errors (as [`Error::InvalidParams`]
    /// naming the path).
    pub fn execute(&self) -> Result<String> {
        let (mut out, json) = self.render()?;
        if let Some(path) = &self.json {
            std::fs::write(path, &json).map_err(|err| {
                Error::invalid_params(format!("cannot write {}: {err}", path.display()))
            })?;
            let _ = writeln!(out, "\nwrote {}", path.display());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_obs::json;

    #[test]
    fn bad_run_options_carry_the_stats_usage() {
        let err = StatsConfig::parse(["model=quantum"]).unwrap_err();
        assert!(err.to_string().contains("usage: session-cli stats"));
    }

    #[test]
    fn mp_stats_report_counters_and_per_process_table() {
        let config = StatsConfig::parse([
            "model=periodic",
            "comm=mp",
            "s=3",
            "n=3",
            "d2=8",
            "schedule=uniform:2",
            "delay=const:8",
        ])
        .unwrap();
        let (out, snapshot_json) = config.render().unwrap();
        // Every step of a message-passing port process is a port step, so
        // the steps and port-steps columns must match (7 each here).
        assert!(out.contains("| p0 | y0 | 7 | 7 |"), "{out}");
        assert!(out.contains("| p2 | y2 | 7 | 7 |"), "{out}");
        assert!(out.contains("mp.steps"), "{out}");
        assert!(out.contains("mp.messages_delivered"), "{out}");
        assert!(out.contains("mp.buffer_occupancy"), "{out}");
        assert!(out.contains("run.sessions_closed"), "{out}");
        json::validate(&snapshot_json).expect("snapshot must be valid JSON");
        assert!(
            snapshot_json.contains("\"mp.messages_sent\""),
            "{snapshot_json}"
        );
    }

    #[test]
    fn target_mode_parses_and_rejects_run_options() {
        let config = StatsConfig::parse(["target=PeriodicMp", "threads=4"]).unwrap();
        assert_eq!(config.target.as_deref(), Some("PeriodicMp"));
        assert_eq!(config.threads, 4);
        assert!(config.run.is_none());

        let err = StatsConfig::parse(["target=NoSuchTarget"]).unwrap_err();
        assert!(err.to_string().contains("unknown target"), "{err}");
        let err = StatsConfig::parse(["target=PeriodicMp", "model=periodic"]).unwrap_err();
        assert!(err.to_string().contains("takes no run options"), "{err}");
        let err =
            StatsConfig::parse(["model=sync", "comm=sm", "s=2", "n=2", "threads=2"]).unwrap_err();
        assert!(
            err.to_string().contains("only applies to analyzer mode"),
            "{err}"
        );
        assert!(StatsConfig::parse(["target=PeriodicMp", "threads=0"]).is_err());
    }

    #[test]
    fn target_mode_renders_a_unified_explicit_and_symbolic_snapshot() {
        let config = StatsConfig::parse(["target=SyncMp", "threads=2"]).unwrap();
        let (out, snapshot_json) = config.render().unwrap();
        assert!(
            out.contains("analyzer — target SyncMp (threads=2)"),
            "{out}"
        );
        assert!(out.contains("explicit:"), "{out}");
        assert!(out.contains("symbolic:"), "{out}");
        // Both engines' metrics land in one snapshot.
        assert!(out.contains("explore.states"), "{out}");
        assert!(out.contains("zones.zone_states"), "{out}");
        json::validate(&snapshot_json).expect("snapshot must be valid JSON");
        assert!(
            snapshot_json.contains("\"zones.dbm_closures\""),
            "{snapshot_json}"
        );
    }

    #[test]
    fn sm_stats_report_sm_counters() {
        let config = StatsConfig::parse(["model=sync", "comm=sm", "s=2", "n=2"]).unwrap();
        let (out, _json) = config.render().unwrap();
        assert!(out.contains("sm.steps"), "{out}");
        assert!(out.contains("sm.port_steps"), "{out}");
        assert!(out.contains("sched.steps_scheduled"), "{out}");
    }
}
