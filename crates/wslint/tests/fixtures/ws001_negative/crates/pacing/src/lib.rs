//! Negative: pacing is allowlisted — wall clocks are its job.
use std::time::Instant;

pub fn pace() {
    let _ = Instant::now();
}
