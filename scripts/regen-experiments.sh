#!/usr/bin/env bash
# Regenerates every experiment artifact recorded in EXPERIMENTS.md.
# Usage: scripts/regen-experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiments-out}"
mkdir -p "$out"
echo "== Table 1 =="
cargo run -q -p session-bench --bin table1 | tee "$out/table1.md"
echo "== FIG-A: semi-synchronous crossover =="
cargo run -q -p session-bench --bin crossover | tee "$out/crossover.md"
echo "== FIG-B: sporadic interpolation =="
cargo run -q -p session-bench --bin sporadic_sweep | tee "$out/sporadic_sweep.md"
echo "== FIG-C: periodic vs semi-synchronous =="
cargo run -q -p session-bench --bin periodic_vs_semisync | tee "$out/periodic_vs_semisync.md"
echo "== Lemma 4.4: contamination growth =="
cargo run -q -p session-bench --bin contamination_growth | tee "$out/contamination_growth.md"
echo "== EXT-DIAM: point-to-point diameter factor =="
cargo run -q -p session-bench --bin diameter_sweep | tee "$out/diameter_sweep.md"
echo
echo "Artifacts written to $out/"
