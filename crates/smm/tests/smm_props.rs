//! Property-based tests for the shared-memory substrate: semilattice laws
//! for [`Knowledge`], flood completeness for the tree network across random
//! shapes, and dynamic `b`-bound enforcement.

use proptest::prelude::*;
use session_sim::{FixedPeriods, RunLimits};
use session_smm::{JoinSemiLattice, Knowledge, SmEngine, SmProcess, TreeSpec};
use session_types::{Dur, ProcessId, VarId};

fn knowledge() -> impl Strategy<Value = Knowledge> {
    proptest::collection::btree_map(0usize..8, 0u64..16, 0..6)
        .prop_map(|m| m.into_iter().map(|(p, v)| (ProcessId::new(p), v)).collect())
}

proptest! {
    #[test]
    fn join_is_idempotent(a in knowledge()) {
        let mut x = a.clone();
        x.join(&a);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn join_is_commutative(a in knowledge(), b in knowledge()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn join_is_associative(a in knowledge(), b in knowledge(), c in knowledge()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn bottom_is_identity(a in knowledge()) {
        let mut x = a.clone();
        x.join(&Knowledge::bottom());
        prop_assert_eq!(&x, &a);
        let mut y = Knowledge::bottom();
        y.join(&a);
        prop_assert_eq!(y, a);
    }

    #[test]
    fn leq_agrees_with_join(a in knowledge(), b in knowledge()) {
        // x <= y iff join(x, y) == y.
        let mut joined = a.clone();
        joined.join(&b);
        prop_assert_eq!(a.leq(&b), joined == b);
        // join is an upper bound of both arguments.
        prop_assert!(a.leq(&joined));
        prop_assert!(b.leq(&joined));
    }

    #[test]
    fn announce_is_monotone_in_the_order(a in knowledge(), p in 0usize..8, v in 0u64..16) {
        let mut bumped = a.clone();
        bumped.announce(ProcessId::new(p), v);
        prop_assert!(a.leq(&bumped));
        prop_assert!(bumped.get(ProcessId::new(p)) >= v);
    }
}

/// A leaf that announces once and then tracks what it has heard.
#[derive(Debug)]
struct Announcer {
    id: ProcessId,
    var: VarId,
    n: usize,
    knowledge: Knowledge,
}

impl SmProcess<Knowledge> for Announcer {
    fn target(&self) -> VarId {
        self.var
    }
    fn step(&mut self, value: &Knowledge) -> Knowledge {
        self.knowledge.join(value);
        self.knowledge.announce(self.id, 1);
        self.knowledge.clone()
    }
    fn is_idle(&self) -> bool {
        self.knowledge
            .all_at_least((0..self.n).map(ProcessId::new), 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every tree shape, a full flood completes within the advertised
    /// round bound: every leaf hears every other leaf.
    #[test]
    fn flood_bound_holds_for_random_shapes(n in 1usize..24, b in 2usize..6) {
        let tree = TreeSpec::build(n, b);
        let mut processes: Vec<Box<dyn SmProcess<Knowledge>>> = Vec::new();
        for i in 0..n {
            processes.push(Box::new(Announcer {
                id: ProcessId::new(i),
                var: tree.leaf_var(i),
                n,
                knowledge: Knowledge::new(),
            }));
        }
        for relay in tree.relay_processes() {
            processes.push(Box::new(relay));
        }
        let num = processes.len();
        let mut engine = SmEngine::new(
            vec![Knowledge::new(); tree.num_nodes()],
            processes,
            b,
            vec![],
        )
        .unwrap();
        let mut sched = FixedPeriods::uniform(num, Dur::from_int(1)).unwrap();
        let budget = (tree.flood_rounds_bound() + 2) * num as u64;
        let _ = engine
            .run(&mut sched, RunLimits::default().with_max_steps(budget))
            .unwrap();
        for i in 0..n {
            prop_assert!(
                engine.process(ProcessId::new(i)).is_idle(),
                "leaf {i} of n={n}, b={b} did not hear everyone within {} rounds",
                tree.flood_rounds_bound() + 2,
            );
        }
    }

    /// The dynamic b-bound always fires at exactly the (b+1)-th distinct
    /// accessor, regardless of access order.
    #[test]
    fn b_bound_fires_at_exactly_b_plus_one(
        b in 2usize..6,
        order in proptest::collection::vec(0usize..8, 1..40),
    ) {
        use session_smm::SharedMemory;
        let mut memory = SharedMemory::new(vec![0u32], b);
        let var = VarId::new(0);
        let mut seen = std::collections::BTreeSet::new();
        for &p in &order {
            let process = ProcessId::new(p);
            let would_be_new = !seen.contains(&process);
            let result = memory.access(process, var, |v| *v += 1);
            if would_be_new && seen.len() >= b {
                prop_assert!(result.is_err(), "accessor {} of {} admitted", seen.len() + 1, b);
            } else {
                prop_assert!(result.is_ok());
                seen.insert(process);
            }
        }
    }
}
