//! Independent verification of recorded computations.
//!
//! Nothing in this module trusts an algorithm's own bookkeeping: sessions,
//! rounds and admissibility are all recomputed from the raw
//! [`session_sim::Trace`]. Every experiment in the workspace goes through
//! these checkers, and the lower-bound adversaries use them to certify that
//! their perturbed computations are admissible yet contain too few sessions.

mod admissible;
mod rounds;
mod sessions;

pub use admissible::{check_admissible, check_admissible_recorded};
pub use rounds::count_rounds;
pub use sessions::{count_sessions, session_boundaries};
