//! Executable lower-bound constructions for the session problem.
//!
//! The lower bounds of *"The Impact of Time on the Session Problem"*
//! (Rhee & Welch, PODC 1992) are proved by building adversarial admissible
//! timed computations in which a too-fast algorithm produces fewer than `s`
//! sessions. This crate turns each proof into a machine-checked experiment:
//!
//! * [`naive`] — *witness algorithms* that beat each lower bound's running
//!   time and are therefore necessarily incorrect; each is paired with the
//!   adversary that exposes it, while the paper's correct algorithm
//!   survives the same adversary.
//! * [`contamination`] — the information-flow analysis of Theorem 4.3
//!   (periodic shared memory): runs the round-robin computation and the
//!   slowed-process perturbation side by side, computes the contaminated
//!   variable/process sets per subround, and certifies Lemma 4.4's bound
//!   `|P(t)| ≤ ((2b−1)^t − 1) / 2`.
//! * [`retime`] — the reorder-and-retime machinery of Theorem 5.1
//!   (semi-synchronous shared memory): the step-dependency partial order,
//!   the block decomposition `β = β_1 … β_m`, the `φ_k ψ_k` split around
//!   the ports `y_k`, and the retiming that keeps every gap within
//!   `[c1, c2]`. The perturbed computation is **re-executed** and verified
//!   admissible by the independent checker; the session deficit is counted
//!   from the replayed trace.
//! * [`reorder`] — the round-reordering adversary of Arjomandi–Fischer–
//!   Lynch \[2\] for the asynchronous shared-memory row, which the paper's
//!   Theorem 5.1 proof builds on: pure dependency-respecting reordering,
//!   no retiming needed.
//! * [`rescale`] — the rescale-and-retime construction of Theorem 6.5
//!   (sporadic message passing), performed at trace level (the paper's
//!   `T'' = T · 2c1/K` compression plus the half-interval shifts of the
//!   chosen processes) and certified by the admissibility checker.
//!
//! Together these regenerate the `L` rows of Table 1: for each row, the
//! naive witness is defeated (sessions `< s`) and the paper's algorithm is
//! not (sessions `≥ s`) under the *same* adversary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contamination;
pub mod naive;
pub mod reorder;
pub mod rescale;
pub mod retime;
