//! Workspace-level integration: the complete paper pipeline — build a
//! system for every (model × substrate) cell, run it under an admissible
//! schedule, verify the trace independently, and confirm the measured
//! running time respects the Table 1 shape; then run every adversary.

use session_problem::adversary::contamination::contamination_analysis;
use session_problem::adversary::naive::{
    naive_sm_system, periodic_mp_demo, periodic_sm_demo, semisync_sm_step_counting_demo,
    sporadic_mp_demo,
};
use session_problem::adversary::retime::retiming_attack;
use session_problem::core::report::{run_mp, run_sm, MpConfig, SmConfig};
use session_problem::core::system::build_sm_system;
use session_problem::core::verify::check_admissible;
use session_problem::sim::{ConstantDelay, FixedPeriods, RunLimits};
use session_problem::smm::TreeSpec;
use session_problem::types::{Dur, KnownBounds, ProcessId, SessionSpec, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

#[test]
fn all_ten_table1_cells_solve_and_verify() {
    let spec = SessionSpec::new(4, 6, 2).unwrap();
    let c1 = d(1);
    let c2 = d(4);
    let d2 = d(10);
    let tree = TreeSpec::build(spec.n(), spec.b());
    let sm_procs = spec.n() + tree.num_relays();

    for model in TimingModel::ALL {
        let bounds = match model {
            TimingModel::Synchronous => KnownBounds::synchronous(c2, d2).unwrap(),
            TimingModel::Periodic => KnownBounds::periodic(d2).unwrap(),
            TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d2).unwrap(),
            TimingModel::Sporadic => KnownBounds::sporadic(c1, Dur::ZERO, d2).unwrap(),
            TimingModel::Asynchronous => KnownBounds::asynchronous(),
        };
        // Shared memory.
        let mut sched = FixedPeriods::uniform(sm_procs, c2).unwrap();
        let sm = run_sm(
            SmConfig {
                model,
                spec,
                bounds,
            },
            &mut sched,
            RunLimits::default(),
        )
        .unwrap();
        assert!(
            sm.solves(&spec),
            "{model} SM failed: {} sessions",
            sm.sessions
        );
        check_admissible(&sm.trace, &bounds)
            .unwrap_or_else(|e| panic!("{model} SM inadmissible: {e}"));

        // Message passing.
        let mut sched = FixedPeriods::uniform(spec.n(), c2).unwrap();
        let mut delays = ConstantDelay::new(d2).unwrap();
        let mp = run_mp(
            MpConfig {
                model,
                spec,
                bounds,
            },
            &mut sched,
            &mut delays,
            RunLimits::default(),
        )
        .unwrap();
        assert!(
            mp.solves(&spec),
            "{model} MP failed: {} sessions",
            mp.sessions
        );
        check_admissible(&mp.trace, &bounds)
            .unwrap_or_else(|e| panic!("{model} MP inadmissible: {e}"));
    }
}

#[test]
fn model_hierarchy_orders_running_times() {
    // At identical actual speeds (everyone at c2), knowing less costs more:
    // the synchronous algorithm is at least as fast as every other model's.
    let spec = SessionSpec::new(5, 8, 2).unwrap();
    let c1 = d(1);
    let c2 = d(4);
    let d2 = d(12);
    let tree = TreeSpec::build(spec.n(), spec.b());
    let sm_procs = spec.n() + tree.num_relays();

    let mut times = Vec::new();
    for model in TimingModel::ALL {
        let bounds = match model {
            TimingModel::Synchronous => KnownBounds::synchronous(c2, d2).unwrap(),
            TimingModel::Periodic => KnownBounds::periodic(d2).unwrap(),
            TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d2).unwrap(),
            TimingModel::Sporadic => KnownBounds::sporadic(c1, Dur::ZERO, d2).unwrap(),
            TimingModel::Asynchronous => KnownBounds::asynchronous(),
        };
        let mut sched = FixedPeriods::uniform(sm_procs, c2).unwrap();
        let report = run_sm(
            SmConfig {
                model,
                spec,
                bounds,
            },
            &mut sched,
            RunLimits::default(),
        )
        .unwrap();
        assert!(report.solves(&spec));
        times.push((model, report.running_time.unwrap()));
    }
    let sync_time = times[0].1;
    for &(model, t) in &times[1..] {
        assert!(
            sync_time <= t,
            "synchronous ({sync_time}) should be fastest, but {model} took {t}"
        );
    }
    // The periodic model (one communication) beats the asynchronous model
    // (one communication per session) once s > 1.
    let periodic = times[1].1;
    let asynchronous = times[4].1;
    assert!(
        periodic <= asynchronous,
        "periodic {periodic} vs asynchronous {asynchronous}"
    );
}

#[test]
fn every_lower_bound_adversary_succeeds() {
    let spec = SessionSpec::new(3, 8, 2).unwrap();

    let demo = periodic_sm_demo(&spec, 50, RunLimits::default()).unwrap();
    assert!(demo.demonstrates_bound(), "periodic SM adversary");

    let demo = periodic_mp_demo(&spec, 50, d(8), RunLimits::default()).unwrap();
    assert!(demo.demonstrates_bound(), "periodic MP adversary");

    let demo = semisync_sm_step_counting_demo(&spec, d(1), d(8), RunLimits::default()).unwrap();
    assert!(
        demo.demonstrates_bound(),
        "semi-sync step-counting adversary"
    );

    let attack = retiming_attack(
        || naive_sm_system(&spec, spec.s()),
        &spec,
        d(1),
        d(8),
        RunLimits::default(),
    )
    .unwrap();
    assert!(attack.defeated(), "Theorem 5.1 retiming adversary");

    let demo = sporadic_mp_demo(d(10), RunLimits::default()).unwrap();
    assert!(demo.demonstrates_bound(), "sporadic pause adversary");
}

#[test]
fn contamination_lemma_holds_across_shapes() {
    for (n, b) in [(4usize, 2usize), (8, 2), (9, 3), (16, 5)] {
        let spec = SessionSpec::new(2, n, b).unwrap();
        let bounds = KnownBounds::periodic(d(1)).unwrap();
        let report = contamination_analysis(
            || build_sm_system(&spec, &bounds),
            n,
            ProcessId::new(n - 1),
            8,
            b,
        )
        .unwrap();
        assert!(report.lemma_holds, "Lemma 4.4 violated for n={n}, b={b}");
    }
}

#[test]
fn analyze_cli_rejects_zero_threads_and_threads_with_trace() {
    use session_problem::analyze::AnalyzeConfig;

    let err = AnalyzeConfig::parse(["--all", "threads=0"]).unwrap_err();
    assert!(
        err.to_string().contains("threads=0"),
        "threads=0 must name the offending key: {err}"
    );
    assert!(
        err.to_string().contains("usage: session-cli analyze"),
        "threads=0 must print usage: {err}"
    );

    let err = AnalyzeConfig::parse(["trace=run.jsonl", "threads=4"]).unwrap_err();
    assert!(
        err.to_string().contains("inherently serial"),
        "threads= with trace= must explain why it is rejected: {err}"
    );
    // Even threads=1 is rejected with trace=: the key simply does not
    // apply, and silently accepting it would suggest it did something.
    assert!(AnalyzeConfig::parse(["trace=run.jsonl", "threads=1"]).is_err());
}

#[test]
fn analyze_cli_rejects_symbolic_with_trace_and_runs_symbolic_end_to_end() {
    use session_problem::analyze::AnalyzeConfig;

    let err = AnalyzeConfig::parse(["trace=run.jsonl", "symbolic=on"]).unwrap_err();
    assert!(
        err.to_string().contains("no space to abstract"),
        "symbolic= with trace= must explain why it is rejected: {err}"
    );
    // symbolic=off is rejected too: the key does not apply to a trace
    // replay, and silently accepting it would suggest it did.
    assert!(AnalyzeConfig::parse(["trace=run.jsonl", "symbolic=off"]).is_err());

    // Happy path through the real subcommand: a clean target verifies
    // symbolically (exit 0) and the report carries the symbolic row; a
    // naive witness is flagged symbolically too.
    let (out, code) = AnalyzeConfig::parse(["SyncMp", "symbolic=on"])
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(code, 0, "clean target must verify symbolically:\n{out}");
    assert!(out.contains("SyncMp (symbolic)"), "{out}");

    let (out, code) = AnalyzeConfig::parse(["NaivePeriodicSm", "symbolic=on"])
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(code, 1, "the witness must stay flagged:\n{out}");
    assert!(out.contains("SA001"), "{out}");
}

/// The findings block of a csv report: everything from the
/// `code,severity,...` header on. The summary block above it carries raw
/// state/memo counters, which the parallel explorer does not promise to
/// reproduce exactly (workers can race to count a state before the memo
/// merge lands); the findings and the exit code are the verdict, and
/// those are bit-identical at every thread count.
fn csv_findings(report: &str) -> &str {
    let header = "code,severity,target,scope,message\n";
    let at = report
        .find(header)
        .expect("csv report has a findings block");
    &report[at..]
}

#[test]
fn analyze_cli_findings_and_exit_code_are_thread_invariant() {
    use session_problem::analyze::AnalyzeConfig;

    // A violating target and a clean one, through the real subcommand
    // path: rendered findings and exit code must not depend on the
    // thread count.
    for target in ["NaivePeriodicSm", "SyncMp"] {
        let (serial_out, serial_code) = AnalyzeConfig::parse([target, "format=csv"])
            .unwrap()
            .execute()
            .unwrap();
        let (parallel_out, parallel_code) =
            AnalyzeConfig::parse([target, "format=csv", "threads=2"])
                .unwrap()
                .execute()
                .unwrap();
        assert_eq!(
            csv_findings(&parallel_out),
            csv_findings(&serial_out),
            "{target}: findings diverged"
        );
        assert_eq!(parallel_code, serial_code, "{target}: exit code diverged");
    }
}

#[test]
fn analyze_cli_findings_are_flight_recorder_invariant() {
    use session_problem::analyze::AnalyzeConfig;

    // The flight recorder must be observation-only: for every registered
    // target, running with `profile=` + `progress=on` (threads=2, so the
    // parallel hooks fire too) yields the same findings and exit code as
    // the bare run (DESIGN.md §15). Scoped down to n=2, s=2 to keep the
    // sweep cheap — the hooks fired are the same as at the full scope.
    for target in session_analyzer::target_names() {
        let (plain_out, plain_code) =
            AnalyzeConfig::parse([target, "format=csv", "threads=2", "n=2", "s=2"])
                .unwrap()
                .execute()
                .unwrap();
        let profile_path = std::env::temp_dir().join(format!(
            "flight-invariance-{}-{target}.json",
            std::process::id()
        ));
        let profile_arg = format!("profile={}", profile_path.display());
        let (flight_out, flight_code) = AnalyzeConfig::parse([
            target,
            "format=csv",
            "threads=2",
            "n=2",
            "s=2",
            "progress=on",
            profile_arg.as_str(),
        ])
        .unwrap()
        .execute()
        .unwrap();
        // The flight run appends `wrote PATH` lines after the report;
        // everything before them must match the bare run byte-for-byte.
        let flight_report = flight_out
            .split("\nwrote ")
            .next()
            .expect("split always yields a first chunk");
        assert_eq!(
            csv_findings(flight_report),
            csv_findings(&plain_out),
            "{target}: findings changed under the flight recorder"
        );
        assert_eq!(
            flight_code, plain_code,
            "{target}: exit code changed under the flight recorder"
        );
        let doc = std::fs::read_to_string(&profile_path)
            .expect("profile= writes the analyzer-profile document");
        assert!(
            doc.contains("\"schema\":\"analyzer-profile/v2\""),
            "{target}: {doc}"
        );
        assert!(doc.contains(&format!("\"target\":\"{target}\"")), "{doc}");
        let _ = std::fs::remove_file(&profile_path);
        let perfetto = profile_path.with_extension("perfetto.json");
        assert!(perfetto.exists(), "{target}: Perfetto sibling not written");
        let _ = std::fs::remove_file(perfetto);
    }
}

#[test]
fn bench_harness_table_is_fully_consistent() {
    // The same artifact the `table1` binary prints: all 16 rows must hold.
    let rows = session_bench::measure::full_table1().unwrap();
    assert_eq!(rows.len(), 16);
    for row in rows {
        assert!(
            row.ok,
            "Table 1 row {} {} {}: bound {}, measured {}",
            row.model,
            row.comm,
            row.kind.label(),
            row.paper_bound,
            row.measured
        );
    }
}
