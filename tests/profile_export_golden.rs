//! Golden-file tests for the flight-recorder exporters: the
//! `analyzer-profile/v2` JSON and the per-worker Perfetto trace of a
//! fully hand-specified profile must be byte-stable across runs (and
//! across refactors — regenerate the files deliberately, never
//! silently). Timing fields come from the synthetic profile, not a real
//! exploration, so the bytes are deterministic on every host.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test profile_export_golden
//! ```

use session_analyzer::{ExploreProfile, WorkerProfile};
use session_obs::{TimelineSpan, WorkerTimeline};

/// A fully hand-specified profile: two workers with different time and
/// routing splits, a second fixpoint round, a truncation-free timeline —
/// every serializer branch except timeline overflow.
fn synthetic() -> ExploreProfile {
    let mut timeline = WorkerTimeline::with_capacity(4);
    timeline.push(TimelineSpan {
        name: "work",
        start_ns: 1000,
        end_ns: 51000,
        detail: 0,
    });
    timeline.push(TimelineSpan {
        name: "work",
        start_ns: 60000,
        end_ns: 80000,
        detail: 1,
    });
    let worker0 = WorkerProfile {
        states: 900,
        items: 1100,
        busy_ns: 70000,
        idle_ns: 10000,
        expand_ns: 61000,
        route_send_ns: 6000,
        route_recv_ns: 3000,
        route_send: 500,
        route_recv: 400,
        local_msgs: 700,
        queue_full_spins: 3,
        duplicate_expansions: 0,
        timeline,
        inbox_depth: vec![(1000, 3), (60000, 1)],
    };
    let worker1 = WorkerProfile {
        states: 100,
        items: 420,
        busy_ns: 20000,
        idle_ns: 60000,
        expand_ns: 20000,
        route_send_ns: 0,
        route_recv_ns: 0,
        route_send: 100,
        route_recv: 200,
        local_msgs: 100,
        queue_full_spins: 0,
        duplicate_expansions: 0,
        timeline: WorkerTimeline::with_capacity(4),
        inbox_depth: vec![(2000, 2)],
    };
    ExploreProfile {
        target: "PeriodicMp".to_owned(),
        n: 3,
        s: 3,
        threads: 2,
        max_depth: 27,
        por: false,
        symmetry: false,
        states: 1000,
        unique_states: 1000,
        duplicate_expansions: 0,
        route_send: 600,
        route_recv: 600,
        local_msgs: 800,
        queue_full_spins: 3,
        rounds: 2,
        fallback: false,
        wall_ns: 100000,
        phase_a_ns: 80000,
        replay_ns: 5000,
        phase_b_ns: 15000,
        workers: vec![worker0, worker1],
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the committed golden file; if the format change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn profile_json_is_byte_stable() {
    check_golden("analyzer_profile_v2.json", &synthetic().to_json());
}

#[test]
fn profile_perfetto_is_byte_stable() {
    check_golden(
        "analyzer_profile_v2.perfetto.json",
        &synthetic().to_perfetto(),
    );
}

#[test]
fn exports_are_identical_across_runs() {
    let first = (synthetic().to_json(), synthetic().to_perfetto());
    let second = (synthetic().to_json(), synthetic().to_perfetto());
    assert_eq!(first, second);
}
