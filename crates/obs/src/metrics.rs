//! Lock-free metrics primitives for the explorer flight recorder.
//!
//! The [`crate::Recorder`] trait takes `&mut self`, which is perfect for
//! single-threaded engines but wrong for the parallel explorer: eight
//! workers funneling per-state events through one `&mut dyn Recorder`
//! would serialize on the very lock contention they are trying to
//! measure. This module provides the shared-nothing complement:
//!
//! - [`AtomicCounter`] / [`AtomicHistogram`]: relaxed-ordering atomics a
//!   worker can hit from any thread without locks. Histograms use the
//!   same fixed power-of-two buckets as [`crate::Histogram`], so a
//!   snapshot merges losslessly into a [`crate::MetricsSnapshot`].
//! - [`MetricsRegistry`]: a fixed set of named counters/histograms
//!   registered up front; workers resolve handles to `&AtomicCounter`
//!   references *before* the hot loop and the registry folds everything
//!   into an ordinary recorder at quiesce via
//!   [`crate::Recorder::merge_histogram`].
//! - [`WorkerTimeline`] / [`TimelineSpan`]: per-worker span buffers,
//!   owned by one thread (no sharing at all) and flushed when the worker
//!   joins — these become the per-worker tracks in the Perfetto export.
//! - [`ProgressBoard`]: a handful of atomics the live `progress=on` line
//!   polls from a monitor thread while workers update it in batches.
//!
//! Hot-path cost: one relaxed `fetch_add` per counted event, a `Vec`
//! push per timeline span, and nothing at all when profiling is off (the
//! callers branch on an `Option` that is `None`). See DESIGN.md §15 for
//! the registry's metric-name table; [`METRIC_NAMES`] is the machine
//! checked list.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::memory::BUCKETS;
use crate::recorder::Recorder;
use crate::Histogram;

/// Every metric name the flight recorder can emit into a
/// [`crate::MetricsSnapshot`], across the explicit explorer
/// (`explore.*`), the zone walker (`zones.*`), the real-clock runtime
/// (`net.pacer_lag_ms`) and the sharded session service (`serve.*`).
///
/// `scripts/static-analysis.sh` asserts each of these is documented in
/// DESIGN.md §15, so the unified `session-cli stats` snapshot never grows
/// an undocumented row.
pub const METRIC_NAMES: &[&str] = &[
    "explore.states",
    "explore.states_per_sec",
    "explore.memo_entries",
    "explore.threads",
    "explore.memo_hits",
    "explore.memo_misses",
    "explore.pruned_choices",
    "explore.frontier_depth",
    "explore.duplicate_expansions",
    "explore.route_send",
    "explore.route_recv",
    "explore.local_msgs",
    "explore.queue_full_spins",
    "explore.owner_local_ratio",
    "explore.rounds",
    "explore.expand_ns",
    "explore.idle_ns",
    "explore.phase_a_ms",
    "explore.replay_ms",
    "explore.phase_b_ms",
    "zones.zone_states",
    "zones.explicit_states",
    "zones.dbm_closures",
    "zones.dbm_close_us",
    "zones.worst_close_memo_hits",
    "net.pacer_lag_ms",
    "serve.sessions_opened",
    "serve.sessions_closed",
    "serve.sessions_shed",
    "serve.sessions_orphaned",
    "serve.sessions_aborted",
    "serve.steps",
    "serve.broadcasts",
    "serve.deliveries",
    "serve.conformance_samples",
    "serve.conformance_failures",
    "serve.frames_in",
    "serve.frames_out",
    "serve.frames_dropped",
    "serve.protocol_errors",
    "serve.rate_limited",
    "serve.opens_queue_full",
    "serve.peers_connected",
    "serve.peers_banned",
    "serve.close_latency_ms",
    "serve.close_lag_ms",
    "serve.peak_live_sessions",
];

/// A monotonic counter shared across worker threads.
///
/// All operations use relaxed ordering: counts are only read after the
/// workers have joined (which synchronizes), so no ordering beyond
/// atomicity is needed.
#[derive(Debug, Default)]
pub struct AtomicCounter(AtomicU64);

impl AtomicCounter {
    /// A zeroed counter.
    pub fn new() -> AtomicCounter {
        AtomicCounter::default()
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram over integer-valued samples (durations in
/// nanoseconds, queue depths), with the same fixed power-of-two bucket
/// layout as [`Histogram`].
///
/// Recording is three relaxed `fetch_add`s plus two `fetch_min`/`max`;
/// [`AtomicHistogram::snapshot`] rebuilds an ordinary [`Histogram`] that
/// merges into a [`crate::MetricsSnapshot`] without losing bucket
/// resolution.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[allow(clippy::cast_precision_loss)]
        let bucket = Histogram::bucket_of(value as f64);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current contents into a mergeable [`Histogram`].
    ///
    /// Not a consistent cut while writers are still recording (a sample
    /// may have bumped `count` but not yet its bucket); call it after the
    /// workers quiesce, which is the only time the flight recorder reads.
    #[allow(clippy::cast_precision_loss)]
    pub fn snapshot(&self) -> Histogram {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return Histogram::new();
        }
        let counts = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Histogram::from_parts(
            counts,
            count,
            self.sum.load(Ordering::Relaxed) as f64,
            self.min.load(Ordering::Relaxed) as f64,
            self.max.load(Ordering::Relaxed) as f64,
        )
    }
}

/// A named metric slot in a [`MetricsRegistry`].
///
/// Handles are plain indices: workers resolve them to atomic references
/// once, outside the hot loop, so the per-event cost never includes a
/// name lookup.
pub type MetricHandle = usize;

/// A fixed registry of named lock-free metrics.
///
/// Built single-threaded (registration takes `&mut self`), then shared
/// immutably (e.g. behind an `Arc`) across worker threads which update
/// through [`MetricsRegistry::counter`] / [`MetricsRegistry::histogram`].
/// At quiesce, [`MetricsRegistry::emit`] folds everything into an
/// ordinary [`Recorder`] so the results land in the same unified
/// snapshot as the serial engines' metrics.
///
/// # Examples
///
/// ```
/// use session_obs::metrics::MetricsRegistry;
/// use session_obs::{InMemoryRecorder, Recorder};
///
/// let mut reg = MetricsRegistry::new();
/// let sent = reg.register_counter("explore.route_send");
/// let idle = reg.register_histogram("explore.idle_ns");
/// reg.counter(sent).add(3);
/// reg.histogram(idle).record(250);
/// let mut rec = InMemoryRecorder::new();
/// reg.emit(&mut rec);
/// let snap = rec.snapshot();
/// assert_eq!(snap.counter("explore.route_send"), 3);
/// assert_eq!(
///     snap.histogram("explore.idle_ns").unwrap().count(),
///     1
/// );
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, AtomicCounter)>,
    histograms: Vec<(&'static str, AtomicHistogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a counter, returning its handle.
    pub fn register_counter(&mut self, name: &'static str) -> MetricHandle {
        self.counters.push((name, AtomicCounter::new()));
        self.counters.len() - 1
    }

    /// Registers a histogram, returning its handle.
    pub fn register_histogram(&mut self, name: &'static str) -> MetricHandle {
        self.histograms.push((name, AtomicHistogram::new()));
        self.histograms.len() - 1
    }

    /// The counter behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` did not come from
    /// [`MetricsRegistry::register_counter`] on this registry.
    #[inline]
    pub fn counter(&self, handle: MetricHandle) -> &AtomicCounter {
        &self.counters[handle].1
    }

    /// The histogram behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` did not come from
    /// [`MetricsRegistry::register_histogram`] on this registry.
    #[inline]
    pub fn histogram(&self, handle: MetricHandle) -> &AtomicHistogram {
        &self.histograms[handle].1
    }

    /// Folds every registered metric into `recorder` (non-zero counters
    /// as counter deltas, non-empty histograms via
    /// [`Recorder::merge_histogram`]).
    pub fn emit(&self, recorder: &mut dyn Recorder) {
        for (name, counter) in &self.counters {
            let value = counter.get();
            if value > 0 {
                recorder.counter(name, value);
            }
        }
        for (name, histogram) in &self.histograms {
            let snap = histogram.snapshot();
            if snap.count() > 0 {
                recorder.merge_histogram(name, &snap);
            }
        }
    }
}

/// One closed span on a worker's timeline, in nanoseconds since the
/// exploration epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineSpan {
    /// Span label (a `&'static str`, like every metric name).
    pub name: &'static str,
    /// Start offset from the epoch.
    pub start_ns: u64,
    /// End offset from the epoch (`>= start_ns`).
    pub end_ns: u64,
    /// One span-specific detail rendered into the trace args (the
    /// explorer stores the work item's starting depth).
    pub detail: u64,
}

/// A bounded per-worker span buffer.
///
/// Owned by exactly one worker thread — recording is a plain `Vec` push,
/// no synchronization — and handed over wholesale when the worker joins
/// ("flushed on quiesce"). The bound keeps a pathological run from
/// ballooning the profile; overflow is counted, not silently dropped.
#[derive(Clone, Debug, Default)]
pub struct WorkerTimeline {
    spans: Vec<TimelineSpan>,
    dropped: u64,
    cap: usize,
}

impl WorkerTimeline {
    /// An empty timeline keeping at most `cap` spans.
    pub fn with_capacity(cap: usize) -> WorkerTimeline {
        WorkerTimeline {
            spans: Vec::new(),
            dropped: 0,
            cap,
        }
    }

    /// Appends `span`, or counts it as dropped once the buffer is full.
    #[inline]
    pub fn push(&mut self, span: TimelineSpan) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[TimelineSpan] {
        &self.spans
    }

    /// How many spans overflowed the buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A point-in-time copy of a [`ProgressBoard`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// States expanded so far (batched, so slightly behind).
    pub states: u64,
    /// Deepest state expanded so far.
    pub depth: u64,
    /// Approximate frontier-pool depth.
    pub frontier: u64,
    /// Workers currently expanding (vs blocked on an empty pool).
    pub busy: u64,
}

/// The shared scoreboard behind the live `progress=on` line.
///
/// Workers update it with relaxed atomics (states in batches, so the
/// per-state cost is amortized to nearly nothing); a monitor thread
/// polls [`ProgressBoard::snapshot`] a few times a second and renders one
/// line to stderr. Nothing here feeds the analysis itself — dropping the
/// board on the floor changes no finding.
#[derive(Debug, Default)]
pub struct ProgressBoard {
    states: AtomicU64,
    depth: AtomicU64,
    frontier: AtomicU64,
    busy: AtomicU64,
    done: AtomicBool,
}

impl ProgressBoard {
    /// A zeroed board.
    pub fn new() -> ProgressBoard {
        ProgressBoard::default()
    }

    /// Adds a batch of expanded states.
    #[inline]
    pub fn add_states(&self, n: u64) {
        self.states.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the deepest-state watermark to at least `depth`.
    #[inline]
    pub fn raise_depth(&self, depth: u64) {
        self.depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Publishes the current frontier-pool depth.
    #[inline]
    pub fn set_frontier(&self, n: u64) {
        self.frontier.store(n, Ordering::Relaxed);
    }

    /// Marks one worker as busy (popped a work item).
    #[inline]
    pub fn worker_busy(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one worker as idle (finished its item / waiting).
    #[inline]
    pub fn worker_idle(&self) {
        self.busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks the run finished, stopping the monitor.
    pub fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether [`ProgressBoard::finish`] was called.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Copies the current values out.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            states: self.states.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed),
            frontier: self.frontier.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryRecorder;

    #[test]
    fn atomic_histogram_snapshot_matches_serial_recording() {
        let atomic = AtomicHistogram::new();
        let mut serial = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::from(u32::MAX)] {
            atomic.record(v);
            #[allow(clippy::cast_precision_loss)]
            serial.record(v as f64);
        }
        assert_eq!(atomic.snapshot(), serial);
        assert_eq!(atomic.count(), 6);
        assert_eq!(atomic.sum(), 1006 + u64::from(u32::MAX));
    }

    #[test]
    fn empty_atomic_histogram_snapshots_empty() {
        assert_eq!(AtomicHistogram::new().snapshot(), Histogram::new());
    }

    #[test]
    fn registry_counts_across_threads_and_emits() {
        let mut reg = MetricsRegistry::new();
        let dup = reg.register_counter("explore.duplicate_expansions");
        let wait = reg.register_histogram("explore.idle_ns");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    let counter = reg.counter(dup);
                    let hist = reg.histogram(wait);
                    for i in 0..100 {
                        counter.add(1);
                        hist.record(i);
                    }
                });
            }
        });
        let mut rec = InMemoryRecorder::new();
        reg.emit(&mut rec);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("explore.duplicate_expansions"), 400);
        assert_eq!(snap.histogram("explore.idle_ns").unwrap().count(), 400);
    }

    #[test]
    fn registry_emit_skips_untouched_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("explore.queue_full_spins");
        reg.register_histogram("explore.idle_ns");
        let mut rec = InMemoryRecorder::new();
        reg.emit(&mut rec);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn timeline_caps_and_counts_overflow() {
        let mut timeline = WorkerTimeline::with_capacity(2);
        for i in 0..5 {
            timeline.push(TimelineSpan {
                name: "item",
                start_ns: i,
                end_ns: i + 1,
                detail: 0,
            });
        }
        assert_eq!(timeline.spans().len(), 2);
        assert_eq!(timeline.dropped(), 3);
    }

    #[test]
    fn progress_board_round_trips() {
        let board = ProgressBoard::new();
        board.add_states(256);
        board.add_states(10);
        board.raise_depth(7);
        board.raise_depth(3);
        board.set_frontier(12);
        board.worker_busy();
        board.worker_busy();
        board.worker_idle();
        let snap = board.snapshot();
        assert_eq!(
            snap,
            ProgressSnapshot {
                states: 266,
                depth: 7,
                frontier: 12,
                busy: 1,
            }
        );
        assert!(!board.is_done());
        board.finish();
        assert!(board.is_done());
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<_> = METRIC_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRIC_NAMES.len());
    }
}
