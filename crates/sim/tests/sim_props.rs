//! Property-based tests for the simulation primitives: every schedule
//! generator must emit gaps inside its model's constraint window, the
//! event queue must agree with a stable sort, and topology delays must be
//! consistent with their hop structure.

use proptest::prelude::*;
use session_sim::{
    DelayPolicy, EventQueue, FixedPeriods, HopDelay, JitterSchedule, SporadicBursts, StepSchedule,
    UniformDelay,
};
use session_types::{Dur, ProcessId, Ratio, Time};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

proptest! {
    /// The queue pops exactly the stable sort of what was pushed.
    #[test]
    fn queue_agrees_with_stable_sort(times in proptest::collection::vec((0i128..20, 1i128..5), 0..64)) {
        let mut queue = EventQueue::new();
        let mut reference: Vec<(Time, usize)> = Vec::new();
        for (i, &(num, den)) in times.iter().enumerate() {
            let t = Time::from_ratio(Ratio::new(num, den));
            queue.push(t, i);
            reference.push((t, i));
        }
        reference.sort_by_key(|&(t, i)| (t, i)); // index order = insertion order
        let mut popped = Vec::new();
        while let Some(item) = queue.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped, reference);
    }

    /// Fixed periods: the k-th step of process p is exactly k * period_p.
    #[test]
    fn fixed_periods_are_exact(periods in proptest::collection::vec(1i128..10, 1..6), steps in 1usize..20) {
        let durs: Vec<Dur> = periods.iter().map(|&p| d(p)).collect();
        let mut sched = FixedPeriods::new(durs).unwrap();
        for (i, &period) in periods.iter().enumerate() {
            let p = ProcessId::new(i);
            let mut t = sched.first_step(p);
            prop_assert_eq!(t, Time::from_int(period));
            for k in 2..=steps as i128 {
                t = sched.next_step(p, t);
                prop_assert_eq!(t, Time::from_int(period * k));
            }
        }
    }

    /// Jitter schedules stay within [c1, c2] over long horizons.
    #[test]
    fn jitter_stays_in_window(c1 in 1i128..5, extra in 0i128..8, seed in any::<u64>()) {
        let c1 = d(c1);
        let c2 = c1 + d(extra);
        let mut sched = JitterSchedule::new(c1, c2, seed).unwrap();
        let p = ProcessId::new(0);
        let mut last = Time::ZERO;
        for i in 0..100 {
            let next = if i == 0 { sched.first_step(p) } else { sched.next_step(p, last) };
            let gap = next - last;
            prop_assert!(gap >= c1 && gap <= c2);
            last = next;
        }
    }

    /// Sporadic bursts never violate the c1 floor and are strictly
    /// increasing.
    #[test]
    fn sporadic_gaps_respect_floor(
        c1 in 1i128..5,
        factor in 2u32..10,
        percent in 0u8..=100,
        seed in any::<u64>(),
    ) {
        let c1 = d(c1);
        let mut sched = SporadicBursts::new(c1, factor, percent, seed).unwrap();
        let p = ProcessId::new(0);
        let mut last = Time::ZERO;
        for i in 0..100 {
            let next = if i == 0 { sched.first_step(p) } else { sched.next_step(p, last) };
            prop_assert!(next - last >= c1);
            prop_assert!(next > last);
            last = next;
        }
    }

    /// Uniform delays stay within [d1, d2].
    #[test]
    fn uniform_delay_in_window(d1 in 0i128..5, du in 0i128..8, seed in any::<u64>()) {
        let lo = d(d1);
        let hi = lo + d(du);
        let mut policy = UniformDelay::new(lo, hi, seed).unwrap();
        for i in 0..100usize {
            let delay = policy.delay(ProcessId::new(i % 3), ProcessId::new(i % 5), Time::ZERO);
            prop_assert!(delay >= lo && delay <= hi);
        }
    }

    /// Hop delays: symmetric constructors give symmetric delays, zero on
    /// the diagonal, and never exceed diameter * per_hop.
    #[test]
    fn hop_delay_structure(n in 1usize..12, per_hop in 0i128..6, which in 0usize..4) {
        let per_hop = d(per_hop);
        let mut topo = match which {
            0 => HopDelay::ring(n, per_hop).unwrap(),
            1 => HopDelay::line(n, per_hop).unwrap(),
            2 => HopDelay::star(n, per_hop).unwrap(),
            _ => HopDelay::complete(n, per_hop).unwrap(),
        };
        let max = topo.max_delay();
        for i in 0..n {
            for j in 0..n {
                let dij = topo.delay(ProcessId::new(i), ProcessId::new(j), Time::ZERO);
                let dji = topo.delay(ProcessId::new(j), ProcessId::new(i), Time::ZERO);
                prop_assert_eq!(dij, dji, "symmetry");
                prop_assert!(dij <= max);
                if i == j {
                    prop_assert_eq!(dij, Dur::ZERO);
                }
            }
        }
    }
}
