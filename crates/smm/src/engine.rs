//! The timed executor for shared-memory systems.

use std::collections::BTreeMap;

use session_obs::{NullRecorder, Recorder};
use session_sim::{EventQueue, RunLimits, RunOutcome, StepKind, StepSchedule, Trace, TraceEvent};
use session_types::{Error, PortId, ProcessId, Result, Time, VarId};

use crate::memory::SharedMemory;
use crate::process::SmProcess;

/// Associates a port with the variable realizing it and the unique port
/// process allowed to take port steps on it (§2.3, condition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortBinding {
    /// The port.
    pub port: PortId,
    /// The shared variable that is this port.
    pub var: VarId,
    /// The port process corresponding to this port.
    pub process: ProcessId,
}

/// A snapshot of the global state of a shared-memory system: every variable
/// value plus a fingerprint of every process's internal state.
///
/// Used to check, executably, the reordering claims of the lower-bound
/// proofs ("every total order consistent with the dependency order leaves
/// the system in the same global state", Claim 5.2).
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalState<V> {
    /// Variable values in variable order.
    pub vars: Vec<V>,
    /// Per-process state fingerprints in process order.
    pub process_fingerprints: Vec<u64>,
}

/// Executes a shared-memory system under a step schedule, recording a
/// [`Trace`].
///
/// Termination: the run stops as soon as every *watched* process — the port
/// processes when port bindings were given, otherwise all processes — is
/// idle. (The formal model has every process take infinitely many steps;
/// the engine simply stops observing once the algorithm's running time is
/// determined.)
pub struct SmEngine<V> {
    memory: SharedMemory<V>,
    processes: Vec<Box<dyn SmProcess<V>>>,
    bindings: Vec<PortBinding>,
    port_by_var: BTreeMap<VarId, (PortId, ProcessId)>,
    watch: Vec<ProcessId>,
}

impl<V> std::fmt::Debug for SmEngine<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmEngine")
            .field("num_vars", &self.memory.len())
            .field("num_processes", &self.processes.len())
            .field("bindings", &self.bindings)
            .finish_non_exhaustive()
    }
}

impl<V> SmEngine<V> {
    /// Assembles a system from initial variable values, processes, the
    /// fan-in bound `b` and the port bindings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if there are no processes, or a
    /// binding references a missing variable/process, or two bindings share
    /// a port, variable or process.
    pub fn new(
        initial_values: Vec<V>,
        processes: Vec<Box<dyn SmProcess<V>>>,
        b: usize,
        bindings: Vec<PortBinding>,
    ) -> Result<SmEngine<V>> {
        if processes.is_empty() {
            return Err(Error::invalid_params("SmEngine requires >= 1 process"));
        }
        let mut port_by_var = BTreeMap::new();
        let mut seen_ports = BTreeMap::new();
        let mut seen_procs = BTreeMap::new();
        for binding in &bindings {
            if binding.var.index() >= initial_values.len() {
                return Err(Error::unknown_id(format!("port variable {}", binding.var)));
            }
            if binding.process.index() >= processes.len() {
                return Err(Error::unknown_id(format!(
                    "port process {}",
                    binding.process
                )));
            }
            if port_by_var
                .insert(binding.var, (binding.port, binding.process))
                .is_some()
            {
                return Err(Error::invalid_params(format!(
                    "variable {} bound to two ports",
                    binding.var
                )));
            }
            if seen_ports.insert(binding.port, ()).is_some() {
                return Err(Error::invalid_params(format!(
                    "port {} bound twice",
                    binding.port
                )));
            }
            if seen_procs.insert(binding.process, ()).is_some() {
                return Err(Error::invalid_params(format!(
                    "process {} bound to two ports",
                    binding.process
                )));
            }
        }
        let watch = if bindings.is_empty() {
            (0..processes.len()).map(ProcessId::new).collect()
        } else {
            bindings.iter().map(|b| b.process).collect()
        };
        Ok(SmEngine {
            memory: SharedMemory::new(initial_values, b),
            processes,
            bindings,
            port_by_var,
            watch,
        })
    }

    /// The shared-variable store.
    pub fn memory(&self) -> &SharedMemory<V> {
        &self.memory
    }

    /// The process with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn process(&self, p: ProcessId) -> &dyn SmProcess<V> {
        self.processes[p.index()].as_ref()
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The registered port bindings.
    pub fn port_bindings(&self) -> &[PortBinding] {
        &self.bindings
    }

    /// Returns `true` if every watched process is idle.
    pub fn is_quiescent(&self) -> bool {
        self.watch
            .iter()
            .all(|p| self.processes[p.index()].is_idle())
    }

    /// Snapshots the global state (variable values + process fingerprints).
    pub fn global_state(&self) -> GlobalState<V>
    where
        V: Clone,
    {
        GlobalState {
            vars: self.memory.values().to_vec(),
            process_fingerprints: self.processes.iter().map(|p| p.fingerprint()).collect(),
        }
    }

    /// Runs the system under `schedule` until every watched process is idle
    /// or `limits` are exhausted.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::BBoundViolation`] / [`Error::UnknownId`] from a
    /// misbehaving process's variable access.
    pub fn run(
        &mut self,
        schedule: &mut dyn StepSchedule,
        limits: RunLimits,
    ) -> Result<RunOutcome> {
        self.run_recorded(schedule, limits, &mut NullRecorder)
    }

    /// [`SmEngine::run`] with instrumentation: emits `sm.steps`,
    /// `sm.port_steps` and `sched.steps_scheduled` counters plus a final
    /// `sm.end_time_ms` gauge to `recorder`.
    ///
    /// # Errors
    ///
    /// As for [`SmEngine::run`].
    pub fn run_recorded(
        &mut self,
        schedule: &mut dyn StepSchedule,
        limits: RunLimits,
        recorder: &mut dyn Recorder,
    ) -> Result<RunOutcome> {
        let mut trace = Trace::new(self.processes.len());
        if self.is_quiescent() {
            return Ok(RunOutcome {
                trace,
                terminated: true,
                steps: 0,
            });
        }
        let mut queue = EventQueue::new();
        for i in 0..self.processes.len() {
            let p = ProcessId::new(i);
            queue.push(schedule.first_step(p), p);
            recorder.counter("sched.steps_scheduled", 1);
        }
        let mut steps = 0u64;
        #[cfg(feature = "strict-invariants")]
        let mut last_time = Time::ZERO;
        let finish = |trace: Trace, terminated: bool, steps: u64, recorder: &mut dyn Recorder| {
            if recorder.is_enabled() {
                recorder.gauge(
                    "sm.end_time_ms",
                    trace.end_time().unwrap_or(Time::ZERO).to_f64(),
                );
            }
            Ok(RunOutcome {
                trace,
                terminated,
                steps,
            })
        };
        while let Some((now, p)) = queue.pop() {
            #[cfg(feature = "strict-invariants")]
            {
                debug_assert!(now >= last_time, "event times must be nondecreasing");
                last_time = now;
            }
            if !limits.allows(steps, now) {
                return finish(trace, false, steps, recorder);
            }
            let was_port_step = self.execute_step(p, now, &mut trace)?;
            steps += 1;
            recorder.counter("sm.steps", 1);
            if was_port_step {
                recorder.counter("sm.port_steps", 1);
            }
            if self.is_quiescent() {
                return finish(trace, true, steps, recorder);
            }
            queue.push(schedule.next_step(p, now), p);
            recorder.counter("sched.steps_scheduled", 1);
        }
        // Unreachable in practice: each executed step re-enqueues the process.
        let terminated = self.is_quiescent();
        finish(trace, terminated, steps, recorder)
    }

    /// Executes exactly the scripted `(time, process)` steps, in order.
    ///
    /// This is how the lower-bound adversaries replay their reordered and
    /// retimed computations. Times must be nondecreasing.
    ///
    /// # Errors
    ///
    /// Propagates variable-access errors, as for [`SmEngine::run`].
    ///
    /// # Panics
    ///
    /// Panics if the scripted times decrease (a timed computation's time
    /// mapping is nondecreasing by definition).
    pub fn run_scripted(&mut self, script: &[(Time, ProcessId)]) -> Result<RunOutcome> {
        let mut trace = Trace::new(self.processes.len());
        let mut steps = 0u64;
        for &(now, p) in script {
            self.execute_step(p, now, &mut trace)?;
            steps += 1;
        }
        Ok(RunOutcome {
            trace,
            terminated: self.is_quiescent(),
            steps,
        })
    }

    /// Executes one step of `p`, returning whether it was a port step.
    fn execute_step(&mut self, p: ProcessId, now: Time, trace: &mut Trace) -> Result<bool> {
        if p.index() >= self.processes.len() {
            return Err(Error::unknown_id(format!("process {p}")));
        }
        let process = &mut self.processes[p.index()];
        #[cfg(feature = "strict-invariants")]
        let was_idle = process.is_idle();
        let var = process.target();
        self.memory.access(p, var, |value| {
            let new_value = process.step(value);
            *value = new_value;
        })?;
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            !was_idle || self.processes[p.index()].is_idle(),
            "idle states must be closed under steps (process {p} un-idled)"
        );
        let port = self
            .port_by_var
            .get(&var)
            .and_then(|&(port, owner)| (owner == p).then_some(port));
        trace.push(TraceEvent {
            time: now,
            process: p,
            kind: StepKind::VarAccess { var, port },
            idle_after: self.processes[p.index()].is_idle(),
        });
        Ok(port.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::FixedPeriods;
    use session_types::Dur;

    /// Counts down `budget` steps on its variable, then idles.
    #[derive(Debug)]
    struct Countdown {
        var: VarId,
        budget: u32,
    }

    impl SmProcess<u64> for Countdown {
        fn target(&self) -> VarId {
            self.var
        }

        fn step(&mut self, value: &u64) -> u64 {
            if self.budget > 0 {
                self.budget -= 1;
                value + 1
            } else {
                *value
            }
        }

        fn is_idle(&self) -> bool {
            self.budget == 0
        }
    }

    fn countdown(var: usize, budget: u32) -> Box<dyn SmProcess<u64>> {
        Box::new(Countdown {
            var: VarId::new(var),
            budget,
        })
    }

    #[test]
    fn run_terminates_when_watched_processes_idle() {
        let mut engine = SmEngine::new(
            vec![0u64, 0],
            vec![countdown(0, 3), countdown(1, 1)],
            2,
            vec![],
        )
        .unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(2)).unwrap();
        let outcome = engine.run(&mut sched, RunLimits::default()).unwrap();
        assert!(outcome.terminated);
        // p0 needs 3 steps at period 2 => idle at t=6; p1 idle at t=2.
        assert_eq!(
            outcome
                .trace
                .all_idle_time([ProcessId::new(0), ProcessId::new(1)]),
            Some(Time::from_int(6))
        );
        assert_eq!(engine.memory().value(VarId::new(0)), &3);
        assert_eq!(engine.memory().value(VarId::new(1)), &1);
    }

    #[test]
    fn run_respects_limits() {
        let mut engine = SmEngine::new(vec![0u64], vec![countdown(0, 1000)], 2, vec![]).unwrap();
        let mut sched = FixedPeriods::uniform(1, Dur::from_int(1)).unwrap();
        let outcome = engine
            .run(&mut sched, RunLimits::default().with_max_steps(10))
            .unwrap();
        assert!(!outcome.terminated);
        assert_eq!(outcome.steps, 10);
    }

    #[test]
    fn port_steps_are_tagged_only_for_the_port_process() {
        // Two processes share var 0, which is port y0 owned by process 0.
        let bindings = vec![PortBinding {
            port: PortId::new(0),
            var: VarId::new(0),
            process: ProcessId::new(0),
        }];
        let mut engine = SmEngine::new(
            vec![0u64],
            vec![countdown(0, 2), countdown(0, 2)],
            2,
            bindings,
        )
        .unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(1)).unwrap();
        let outcome = engine.run(&mut sched, RunLimits::default()).unwrap();
        let tagged: Vec<ProcessId> = outcome
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, StepKind::VarAccess { port: Some(_), .. }))
            .map(|e| e.process)
            .collect();
        assert!(!tagged.is_empty());
        assert!(tagged.iter().all(|&p| p == ProcessId::new(0)));
    }

    #[test]
    fn watch_defaults_to_ports_when_bound() {
        // Process 1 never idles, but it is not a port process: run must
        // still terminate once the port process is idle.
        #[derive(Debug)]
        struct Forever(VarId);
        impl SmProcess<u64> for Forever {
            fn target(&self) -> VarId {
                self.0
            }
            fn step(&mut self, value: &u64) -> u64 {
                *value
            }
            fn is_idle(&self) -> bool {
                false
            }
        }
        let bindings = vec![PortBinding {
            port: PortId::new(0),
            var: VarId::new(0),
            process: ProcessId::new(0),
        }];
        let mut engine = SmEngine::new(
            vec![0u64, 0],
            vec![countdown(0, 1), Box::new(Forever(VarId::new(1)))],
            2,
            bindings,
        )
        .unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(1)).unwrap();
        let outcome = engine.run(&mut sched, RunLimits::default()).unwrap();
        assert!(outcome.terminated);
    }

    #[test]
    fn b_bound_violation_surfaces_from_run() {
        let mut engine = SmEngine::new(
            vec![0u64],
            vec![countdown(0, 5), countdown(0, 5), countdown(0, 5)],
            2,
            vec![],
        )
        .unwrap();
        let mut sched = FixedPeriods::uniform(3, Dur::from_int(1)).unwrap();
        let err = engine.run(&mut sched, RunLimits::default()).unwrap_err();
        assert!(matches!(err, Error::BBoundViolation { .. }));
    }

    #[test]
    fn scripted_run_follows_script_exactly() {
        let mut engine = SmEngine::new(
            vec![0u64],
            vec![countdown(0, 2), countdown(0, 2)],
            2,
            vec![],
        )
        .unwrap();
        let script = vec![
            (Time::from_int(1), ProcessId::new(1)),
            (Time::from_int(1), ProcessId::new(0)),
            (Time::from_int(3), ProcessId::new(1)),
        ];
        let outcome = engine.run_scripted(&script).unwrap();
        assert_eq!(outcome.steps, 3);
        assert!(!outcome.terminated); // p0 still has budget 1
        let order: Vec<ProcessId> = outcome.trace.events().iter().map(|e| e.process).collect();
        assert_eq!(
            order,
            vec![ProcessId::new(1), ProcessId::new(0), ProcessId::new(1)]
        );
    }

    #[test]
    fn reordering_independent_steps_preserves_global_state() {
        // Two processes on two disjoint variables: any interleaving reaches
        // the same global state (the executable content of Claim 5.2 for
        // independent steps).
        let build = || {
            SmEngine::new(
                vec![0u64, 0],
                vec![countdown(0, 2), countdown(1, 2)],
                2,
                vec![],
            )
            .unwrap()
        };
        let mut a = build();
        let mut b = build();
        let t = Time::from_int(1);
        a.run_scripted(&[
            (t, ProcessId::new(0)),
            (t, ProcessId::new(1)),
            (t, ProcessId::new(0)),
            (t, ProcessId::new(1)),
        ])
        .unwrap();
        b.run_scripted(&[
            (t, ProcessId::new(1)),
            (t, ProcessId::new(1)),
            (t, ProcessId::new(0)),
            (t, ProcessId::new(0)),
        ])
        .unwrap();
        assert_eq!(a.global_state(), b.global_state());
    }

    #[test]
    fn binding_validation() {
        let mk_bind = |port, var, process| PortBinding {
            port: PortId::new(port),
            var: VarId::new(var),
            process: ProcessId::new(process),
        };
        // Missing variable.
        assert!(
            SmEngine::new(vec![0u64], vec![countdown(0, 1)], 2, vec![mk_bind(0, 3, 0)]).is_err()
        );
        // Missing process.
        assert!(
            SmEngine::new(vec![0u64], vec![countdown(0, 1)], 2, vec![mk_bind(0, 0, 3)]).is_err()
        );
        // Duplicate port.
        assert!(SmEngine::new(
            vec![0u64, 0],
            vec![countdown(0, 1), countdown(1, 1)],
            2,
            vec![mk_bind(0, 0, 0), mk_bind(0, 1, 1)],
        )
        .is_err());
        // No processes at all.
        assert!(SmEngine::<u64>::new(vec![0u64], vec![], 2, vec![]).is_err());
    }

    #[test]
    fn run_recorded_counts_steps_and_port_steps() {
        let bindings = vec![PortBinding {
            port: PortId::new(0),
            var: VarId::new(0),
            process: ProcessId::new(0),
        }];
        let mut engine = SmEngine::new(
            vec![0u64, 0],
            vec![countdown(0, 3), countdown(1, 2)],
            2,
            bindings,
        )
        .unwrap();
        let mut sched = FixedPeriods::uniform(2, Dur::from_int(1)).unwrap();
        let mut rec = session_obs::InMemoryRecorder::new();
        let outcome = engine
            .run_recorded(&mut sched, RunLimits::default(), &mut rec)
            .unwrap();
        assert!(outcome.terminated);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("sm.steps"), outcome.steps);
        assert_eq!(snap.counter("sm.port_steps"), 3);
        assert!(snap.counter("sched.steps_scheduled") >= outcome.steps);
        assert!(snap.gauge("sm.end_time_ms").is_some());
    }

    #[test]
    fn quiescent_at_start_returns_immediately() {
        let mut engine = SmEngine::new(vec![0u64], vec![countdown(0, 0)], 2, vec![]).unwrap();
        let mut sched = FixedPeriods::uniform(1, Dur::from_int(1)).unwrap();
        let outcome = engine.run(&mut sched, RunLimits::default()).unwrap();
        assert!(outcome.terminated);
        assert_eq!(outcome.steps, 0);
        assert!(outcome.trace.is_empty());
    }
}
