//! EXT-DIAM: restoring the point-to-point formulation of \[4\].
//!
//! The paper's Table 1 conversion note (1) says its `d2` subsumes the
//! network-diameter factor of Attiya–Mavronicolas's point-to-point model.
//! Here we undo the conversion: run the asynchronous and sporadic
//! message-passing algorithms over explicit topologies (ring, line, star,
//! complete) where a message takes `hops · per_hop`, and check that the
//! measured running time scales with the diameter exactly as the original
//! formulation predicts.

use session_problem::core::report::{run_mp, MpConfig};
use session_problem::core::verify::check_admissible;
use session_problem::sim::{FixedPeriods, HopDelay, RunLimits};
use session_problem::types::{Dur, KnownBounds, SessionSpec, Time, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

fn async_time_on(topology: &mut HopDelay, s: u64, n: usize, period: Dur) -> Dur {
    let spec = SessionSpec::new(s, n, 2).unwrap();
    let mut sched = FixedPeriods::uniform(n, period).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Asynchronous,
            spec,
            bounds: KnownBounds::asynchronous(),
        },
        &mut sched,
        topology,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
    report.running_time.unwrap() - Time::ZERO
}

#[test]
fn async_running_time_scales_with_diameter() {
    let n = 8;
    let s = 6;
    let per_hop = d(5);
    let period = d(1);

    let mut complete = HopDelay::complete(n, per_hop).unwrap();
    let mut star = HopDelay::star(n, per_hop).unwrap();
    let mut ring = HopDelay::ring(n, per_hop).unwrap();
    let mut line = HopDelay::line(n, per_hop).unwrap();

    let t_complete = async_time_on(&mut complete, s, n, period);
    let t_star = async_time_on(&mut star, s, n, period);
    let t_ring = async_time_on(&mut ring, s, n, period);
    let t_line = async_time_on(&mut line, s, n, period);

    // Diameters: 1 < 2 < 4 < 7 — running times must follow.
    assert!(
        t_complete <= t_star && t_star <= t_ring && t_ring <= t_line,
        "complete {t_complete}, star {t_star}, ring {t_ring}, line {t_line}"
    );
    // And the diameter factor is roughly multiplicative: the line (diam 7)
    // must cost at least 3x the complete graph (diam 1) at s = 6.
    assert!(
        t_line.as_ratio() >= (t_complete * 3).as_ratio(),
        "line {t_line} vs complete {t_complete}"
    );
}

#[test]
fn diameter_bound_matches_the_converted_formula() {
    // With d2 := diameter * per_hop, the converted (s-1)(d2+γ)+γ bound of
    // Table 1 must still hold on explicit topologies.
    let n = 6;
    let s = 4;
    let per_hop = d(3);
    let period = d(2);
    for mk in [
        HopDelay::complete as fn(usize, Dur) -> _,
        HopDelay::star,
        HopDelay::ring,
        HopDelay::line,
    ] {
        let mut topology = mk(n, per_hop).unwrap();
        let d2 = topology.max_delay();
        let spec = SessionSpec::new(s, n, 2).unwrap();
        let mut sched = FixedPeriods::uniform(n, period).unwrap();
        let report = run_mp(
            MpConfig {
                model: TimingModel::Asynchronous,
                spec,
                bounds: KnownBounds::asynchronous(),
            },
            &mut sched,
            &mut topology,
            RunLimits::default(),
        )
        .unwrap();
        assert!(report.solves(&spec));
        let gamma = report.gamma;
        let bound = (d2 + gamma) * (s as i128 - 1) + gamma;
        let measured = report.running_time.unwrap() - Time::ZERO;
        assert!(
            measured <= bound,
            "diameter {}: measured {measured} > bound {bound}",
            topology.diameter()
        );
    }
}

#[test]
fn sporadic_model_sound_on_explicit_topologies() {
    // A(sp) with d1 = 0 and d2 = diameter * per_hop remains correct and
    // admissible when the delays come from hop counts instead of an
    // abstract window.
    let n = 5;
    let s = 4;
    let per_hop = d(4);
    let mut ring = HopDelay::ring(n, per_hop).unwrap();
    let d2 = ring.max_delay();
    let c1 = d(1);
    let bounds = KnownBounds::sporadic(c1, Dur::ZERO, d2).unwrap();
    let spec = SessionSpec::new(s, n, 2).unwrap();
    let mut sched = FixedPeriods::uniform(n, d(2)).unwrap();
    let report = run_mp(
        MpConfig {
            model: TimingModel::Sporadic,
            spec,
            bounds,
        },
        &mut sched,
        &mut ring,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
    check_admissible(&report.trace, &bounds).unwrap();
}
