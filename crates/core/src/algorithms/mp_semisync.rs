//! The semi-synchronous message-passing algorithm (\[4\]; §5): the cheaper of
//! step-counting and communicating, chosen from the known constants.

use session_mpm::{Envelope, MpProcess};
use session_types::{Dur, Result};

use super::mp_async::AsyncMpPort;
use super::sm_semisync::block_size;
use crate::msg::SessionMsg;

/// Which arm of the `min{(⌊c2/c1⌋ + 1) · c2, d2 + c2}` upper bound the
/// algorithm executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpStrategy {
    /// Count own steps (`⌊c2/c1⌋ + 1` per session), broadcast nothing.
    StepCounting,
    /// One broadcast wave per session (`d2 + c2` each).
    Communicating,
}

/// The silent arm: `(s − 1) · (⌊c2/c1⌋ + 1) + 1` steps, then idle. Every
/// step of a port process is a port step in the message-passing model, so
/// the argument is identical to the shared-memory step counter.
#[derive(Clone, Debug)]
pub struct StepCountingMpPort {
    needed: u64,
    steps: u64,
}

impl StepCountingMpPort {
    /// Creates the port process.
    ///
    /// # Errors
    ///
    /// Returns [`session_types::Error::InvalidParams`] if `c1 <= 0` or
    /// `c1 > c2`.
    pub fn new(s: u64, c1: Dur, c2: Dur) -> Result<StepCountingMpPort> {
        let block = block_size(c1, c2)?;
        Ok(StepCountingMpPort {
            needed: (s - 1) * block + 1,
            steps: 0,
        })
    }

    /// Total steps this process will take before idling.
    pub fn steps_needed(&self) -> u64 {
        self.needed
    }
}

impl MpProcess<SessionMsg> for StepCountingMpPort {
    fn step(&mut self, _inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        if self.steps < self.needed {
            self.steps += 1;
        }
        None
    }

    fn is_idle(&self) -> bool {
        self.steps >= self.needed
    }
}

/// The semi-synchronous port process: picks the cheaper arm by comparing
/// `(⌊c2/c1⌋ + 1) · c2` (step counting per session) against `d2 + c2`
/// (communication per session).
#[derive(Clone, Debug)]
pub enum SemiSyncMpPort {
    /// Step-counting arm.
    Silent(StepCountingMpPort),
    /// Communicating arm.
    Talking(AsyncMpPort),
}

impl SemiSyncMpPort {
    /// Creates the port process, choosing the strategy from the known
    /// constants `c1`, `c2`, `d2`.
    ///
    /// # Errors
    ///
    /// Returns [`session_types::Error::InvalidParams`] if `c1 <= 0` or
    /// `c1 > c2`.
    pub fn new(s: u64, n: usize, c1: Dur, c2: Dur, d2: Dur) -> Result<SemiSyncMpPort> {
        let block = block_size(c1, c2)?;
        let silent_cost = c2 * block as i128;
        let talking_cost = d2 + c2;
        let strategy = if silent_cost <= talking_cost {
            MpStrategy::StepCounting
        } else {
            MpStrategy::Communicating
        };
        SemiSyncMpPort::with_strategy(s, n, c1, c2, strategy)
    }

    /// Creates the port process with an explicit strategy (used by the
    /// crossover experiments to measure both arms).
    ///
    /// # Errors
    ///
    /// Returns [`session_types::Error::InvalidParams`] if the step-counting
    /// arm is chosen with `c1 <= 0` or `c1 > c2`.
    pub fn with_strategy(
        s: u64,
        n: usize,
        c1: Dur,
        c2: Dur,
        strategy: MpStrategy,
    ) -> Result<SemiSyncMpPort> {
        Ok(match strategy {
            MpStrategy::StepCounting => SemiSyncMpPort::Silent(StepCountingMpPort::new(s, c1, c2)?),
            MpStrategy::Communicating => SemiSyncMpPort::Talking(AsyncMpPort::new(s, n)),
        })
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> MpStrategy {
        match self {
            SemiSyncMpPort::Silent(_) => MpStrategy::StepCounting,
            SemiSyncMpPort::Talking(_) => MpStrategy::Communicating,
        }
    }
}

impl MpProcess<SessionMsg> for SemiSyncMpPort {
    fn step(&mut self, inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        match self {
            SemiSyncMpPort::Silent(p) => p.step(inbox),
            SemiSyncMpPort::Talking(p) => p.step(inbox),
        }
    }

    fn is_idle(&self) -> bool {
        match self {
            SemiSyncMpPort::Silent(p) => p.is_idle(),
            SemiSyncMpPort::Talking(p) => p.is_idle(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    #[test]
    fn step_counter_needs_documented_steps() {
        // s = 2, c1 = 2, c2 = 5 => B = 3, needed = 4.
        let mut p = StepCountingMpPort::new(2, d(2), d(5)).unwrap();
        assert_eq!(p.steps_needed(), 4);
        for _ in 0..3 {
            assert_eq!(p.step(vec![]), None);
            assert!(!p.is_idle());
        }
        let _ = p.step(vec![]);
        assert!(p.is_idle());
        assert!(StepCountingMpPort::new(2, d(0), d(5)).is_err());
    }

    #[test]
    fn strategy_choice_compares_per_session_costs() {
        // (floor(4/1)+1)*4 = 20 vs d2 + c2 = 9: talk.
        let p = SemiSyncMpPort::new(3, 2, d(1), d(4), d(5)).unwrap();
        assert_eq!(p.strategy(), MpStrategy::Communicating);
        // (floor(4/4)+1)*4 = 8 vs d2 + c2 = 104: count.
        let p = SemiSyncMpPort::new(3, 2, d(4), d(4), d(100)).unwrap();
        assert_eq!(p.strategy(), MpStrategy::StepCounting);
    }

    #[test]
    fn explicit_strategy_is_respected() {
        let p = SemiSyncMpPort::with_strategy(3, 2, d(4), d(4), MpStrategy::Communicating).unwrap();
        assert_eq!(p.strategy(), MpStrategy::Communicating);
    }

    #[test]
    fn delegation_works_for_both_arms() {
        let mut silent =
            SemiSyncMpPort::with_strategy(1, 2, d(1), d(1), MpStrategy::StepCounting).unwrap();
        assert_eq!(silent.step(vec![]), None);
        assert!(silent.is_idle()); // s = 1 => 1 step

        let mut talking =
            SemiSyncMpPort::with_strategy(1, 2, d(1), d(1), MpStrategy::Communicating).unwrap();
        assert_eq!(talking.step(vec![]), Some(SessionMsg::new(1)));
        assert!(talking.is_idle());
    }
}
