//! The knowledge join-semilattice flowing through the tree network.
//!
//! Broadcast in the `b`-bounded shared-memory model is relaying (§3). All the
//! information our algorithms relay is *monotone* — "process `i` has
//! completed at least `k` port steps / sessions" — so a value type with a
//! join (least upper bound) makes relaying trivially correct: every relay
//! simply joins what it reads into what it knows and writes the result back;
//! no information is ever lost regardless of interleaving.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use session_types::ProcessId;

/// A join-semilattice: a partial order with least upper bounds.
///
/// Laws (checked by property tests):
///
/// * idempotence: `x.join(x) == x`
/// * commutativity: `x.join(y) == y.join(x)`
/// * associativity: `(x.join(y)).join(z) == x.join(y.join(z))`
/// * `bottom()` is the identity: `x.join(bottom()) == x`
/// * `x.leq(y)` iff `y == x.join(y)`
pub trait JoinSemiLattice: Clone + PartialEq {
    /// The least element.
    fn bottom() -> Self;

    /// Replaces `self` with the least upper bound of `self` and `other`.
    fn join(&mut self, other: &Self);

    /// Returns `true` if `self` is below-or-equal `other` in the lattice
    /// order.
    fn leq(&self, other: &Self) -> bool {
        let mut joined = self.clone();
        joined.join(other);
        joined == *other
    }
}

/// What a process knows about every process's announced progress counter:
/// a map `ProcessId -> u64` ordered pointwise, joined by pointwise maximum.
///
/// Algorithms announce monotonically increasing counters (completed port
/// steps for the periodic algorithm `A(p)`, completed session numbers for
/// the asynchronous and semi-synchronous algorithms); the tree network of
/// [`crate::RelayProcess`]es floods these maps in both directions.
///
/// # Examples
///
/// ```
/// use session_smm::{JoinSemiLattice, Knowledge};
/// use session_types::ProcessId;
///
/// let mut a = Knowledge::new();
/// a.announce(ProcessId::new(0), 3);
/// let mut b = Knowledge::new();
/// b.announce(ProcessId::new(0), 1);
/// b.announce(ProcessId::new(1), 2);
///
/// a.join(&b);
/// assert_eq!(a.get(ProcessId::new(0)), 3); // pointwise max
/// assert_eq!(a.get(ProcessId::new(1)), 2);
/// assert!(a.all_at_least((0..2).map(ProcessId::new), 2));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Knowledge {
    counters: BTreeMap<ProcessId, u64>,
}

impl Knowledge {
    /// Creates empty knowledge (the lattice bottom).
    pub fn new() -> Knowledge {
        Knowledge::default()
    }

    /// Raises the counter recorded for `p` to at least `value`.
    ///
    /// Counters never decrease: announcing a smaller value than already
    /// known is a no-op, keeping the type monotone by construction.
    pub fn announce(&mut self, p: ProcessId, value: u64) {
        match self.counters.entry(p) {
            Entry::Vacant(e) => {
                e.insert(value);
            }
            Entry::Occupied(mut e) => {
                if *e.get() < value {
                    e.insert(value);
                }
            }
        }
    }

    /// The counter known for `p` (0 if nothing was ever announced).
    pub fn get(&self, p: ProcessId) -> u64 {
        self.counters.get(&p).copied().unwrap_or(0)
    }

    /// Returns `true` if an announcement has been recorded for `p`.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.counters.contains_key(&p)
    }

    /// Returns `true` if every process in `processes` has a known counter
    /// `>= threshold`.
    ///
    /// Note that with `threshold == 0` this still requires an explicit
    /// announcement from each process (an empty map knows *nothing*, which
    /// is weaker than knowing "at least 0").
    pub fn all_at_least<I>(&self, processes: I, threshold: u64) -> bool
    where
        I: IntoIterator<Item = ProcessId>,
    {
        processes
            .into_iter()
            .all(|p| self.counters.get(&p).is_some_and(|&v| v >= threshold))
    }

    /// The number of processes with recorded announcements.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if nothing has been announced.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterates over `(process, counter)` pairs in process order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, u64)> + '_ {
        self.counters.iter().map(|(&p, &v)| (p, v))
    }
}

impl JoinSemiLattice for Knowledge {
    fn bottom() -> Knowledge {
        Knowledge::new()
    }

    fn join(&mut self, other: &Knowledge) {
        for (&p, &v) in &other.counters {
            self.announce(p, v);
        }
    }
}

impl FromIterator<(ProcessId, u64)> for Knowledge {
    fn from_iter<I: IntoIterator<Item = (ProcessId, u64)>>(iter: I) -> Knowledge {
        let mut k = Knowledge::new();
        for (p, v) in iter {
            k.announce(p, v);
        }
        k
    }
}

impl Extend<(ProcessId, u64)> for Knowledge {
    fn extend<I: IntoIterator<Item = (ProcessId, u64)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.announce(p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn announce_is_monotone() {
        let mut k = Knowledge::new();
        k.announce(p(0), 5);
        k.announce(p(0), 3); // lower: ignored
        assert_eq!(k.get(p(0)), 5);
        k.announce(p(0), 7);
        assert_eq!(k.get(p(0)), 7);
    }

    #[test]
    fn get_defaults_to_zero_but_contains_is_precise() {
        let k = Knowledge::new();
        assert_eq!(k.get(p(9)), 0);
        assert!(!k.contains(p(9)));
        let k: Knowledge = [(p(9), 0)].into_iter().collect();
        assert!(k.contains(p(9)));
        assert_eq!(k.get(p(9)), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a: Knowledge = [(p(0), 1), (p(1), 5)].into_iter().collect();
        let b: Knowledge = [(p(0), 4), (p(2), 2)].into_iter().collect();
        a.join(&b);
        assert_eq!(a.get(p(0)), 4);
        assert_eq!(a.get(p(1)), 5);
        assert_eq!(a.get(p(2)), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn all_at_least_requires_explicit_announcements() {
        let k: Knowledge = [(p(0), 2), (p(1), 3)].into_iter().collect();
        assert!(k.all_at_least([p(0), p(1)], 2));
        assert!(!k.all_at_least([p(0), p(1)], 3));
        // p(2) never announced: even threshold 0 fails.
        assert!(!k.all_at_least([p(0), p(1), p(2)], 0));
    }

    #[test]
    fn leq_matches_pointwise_order() {
        let small: Knowledge = [(p(0), 1)].into_iter().collect();
        let big: Knowledge = [(p(0), 2), (p(1), 1)].into_iter().collect();
        assert!(small.leq(&big));
        assert!(!big.leq(&small));
        assert!(Knowledge::bottom().leq(&small));
        let incomparable: Knowledge = [(p(1), 9)].into_iter().collect();
        assert!(!small.leq(&incomparable));
        assert!(!incomparable.leq(&small));
    }

    #[test]
    fn extend_and_iter() {
        let mut k = Knowledge::new();
        k.extend([(p(1), 4), (p(0), 2)]);
        let pairs: Vec<(ProcessId, u64)> = k.iter().collect();
        assert_eq!(pairs, vec![(p(0), 2), (p(1), 4)]);
        assert!(!k.is_empty());
        assert!(Knowledge::new().is_empty());
    }
}
