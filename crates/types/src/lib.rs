//! Core vocabulary types for the reproduction of *"The Impact of Time on the
//! Session Problem"* (Rhee & Welch, PODC 1992).
//!
//! This crate defines the shared building blocks used by every other crate in
//! the workspace:
//!
//! * [`Ratio`] — exact `i128` rational arithmetic, so that simulated real time
//!   is never subject to floating-point error. The lower-bound adversaries in
//!   the paper retime steps by factors such as `2c1/K` and `u/4`; with exact
//!   rationals the reconstructed computations can be admissibility-checked
//!   with equality, not tolerance.
//! * [`Time`] and [`Dur`] — newtypes over [`Ratio`] for instants and
//!   durations of simulated real time.
//! * Identifier newtypes: [`ProcessId`], [`VarId`], [`PortId`], [`MsgId`].
//! * [`TimingModel`], [`CommModel`], [`KnownBounds`], [`SessionSpec`] — the
//!   paper's model taxonomy (§2.2) and problem statement (§2.3).
//! * [`Error`] — the workspace error type.
//!
//! # Examples
//!
//! ```
//! use session_types::{Dur, KnownBounds, SessionSpec, Time, TimingModel};
//!
//! # fn main() -> Result<(), session_types::Error> {
//! // A semi-synchronous model with step time in c1..c2 = 1..6, delay <= 20.
//! let bounds = KnownBounds::semi_synchronous(Dur::from_int(1), Dur::from_int(6),
//!                                            Dur::from_int(20))?;
//! assert_eq!(bounds.model(), TimingModel::SemiSynchronous);
//!
//! // The (s, n)-session problem with s = 4 sessions over n = 8 ports,
//! // b = 3 processes allowed per shared variable.
//! let spec = SessionSpec::new(4, 8, 3)?;
//! assert_eq!(spec.s(), 4);
//!
//! let t = Time::ZERO + Dur::from_int(5);
//! assert_eq!(t, Time::from_int(5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ids;
mod params;
mod ratio;
mod time;

pub use error::{Error, Result};
pub use ids::{MsgId, PortId, ProcessId, VarId};
pub use params::{CommModel, KnownBounds, SessionSpec, TimingModel};
pub use ratio::Ratio;
pub use time::{Dur, Time};
