//! End-to-end loopback tests: real sockets, real shards, real clocks.
//!
//! Every test binds an ephemeral port on 127.0.0.1, runs full
//! open→close session lifecycles through the wire protocol, and tears
//! the service down checking the merged report. Sampling is set to
//! 1-in-1 so every session is replayed through `verify_conformance`.

use std::time::Duration;

use session_serve::{
    ConformanceVerdict, RejectCode, ServeClient, ServeConfig, ServeTransport, Server, ServerFrame,
    UdpServeClient,
};
use session_types::TimingModel;

/// A small-footprint config for tests: every session sampled, short
/// wheel ticks, modest caps.
fn test_config() -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        shards: 2,
        max_sessions_per_shard: 64,
        sample_every: 1,
        tick_us: 500,
        ..ServeConfig::default()
    }
}

const HELLO_TIMEOUT: Duration = Duration::from_secs(5);
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn tcp_sessions_run_all_models_to_close_and_pass_conformance() {
    let server = Server::start(test_config()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let capacity = client.hello(0, HELLO_TIMEOUT).unwrap();
    assert_eq!(capacity, 128);

    // Two sessions per timing model, all in flight at once.
    let total = 2 * TimingModel::ALL.len();
    for req in 0..total as u64 {
        let model = TimingModel::ALL[req as usize % TimingModel::ALL.len()];
        client.open(req, model, 2, 3, 2000, 0xBEEF + req).unwrap();
    }
    client.flush().unwrap();

    let mut opened = 0;
    let mut closed = 0;
    while closed < total {
        match client.recv_timeout(FRAME_TIMEOUT) {
            Some(ServerFrame::Opened { .. }) => opened += 1,
            Some(ServerFrame::Closed {
                sessions,
                conformance,
                nominal_close_us,
                ..
            }) => {
                closed += 1;
                assert_eq!(conformance, ConformanceVerdict::Pass);
                assert!(sessions >= 2, "s=2 sessions required, got {sessions}");
                assert!(nominal_close_us > 0);
            }
            other => panic!("unexpected frame {other:?} (closed {closed}/{total})"),
        }
    }
    assert_eq!(opened, total);

    let report = server.shutdown();
    let m = &report.metrics;
    assert_eq!(m.counter("serve.sessions_opened"), total as u64);
    assert_eq!(m.counter("serve.sessions_closed"), total as u64);
    assert_eq!(m.counter("serve.conformance_samples"), total as u64);
    assert_eq!(m.counter("serve.conformance_failures"), 0);
    assert!(m.counter("serve.frames_in") > total as u64);
    assert!(m.counter("serve.frames_out") > 2 * total as u64);
    assert!(m.histogram("serve.close_latency_ms").is_some());
    assert!(report.peak_live_sessions >= 1);
}

#[test]
fn udp_sessions_open_and_close_over_datagrams() {
    let server = Server::start(ServeConfig {
        transport: ServeTransport::Udp,
        ..test_config()
    })
    .unwrap();
    let client = UdpServeClient::connect(server.addr()).unwrap();

    client
        .send(&session_serve::ClientFrame::Hello { token: 0 })
        .unwrap();
    match client.recv_timeout(HELLO_TIMEOUT) {
        Some(ServerFrame::HelloOk { capacity }) => assert_eq!(capacity, 128),
        other => panic!("expected HelloOk, got {other:?}"),
    }

    for req in 0..2u64 {
        client
            .send(&session_serve::ClientFrame::Open {
                req,
                model: TimingModel::Periodic,
                s: 2,
                n: 2,
                unit_us: 2000,
                seed: 42 + req,
            })
            .unwrap();
    }
    let mut closed = 0;
    let deadline = std::time::Instant::now() + FRAME_TIMEOUT;
    while closed < 2 && std::time::Instant::now() < deadline {
        match client.recv_timeout(Duration::from_millis(500)) {
            Some(ServerFrame::Closed { conformance, .. }) => {
                closed += 1;
                assert_eq!(conformance, ConformanceVerdict::Pass);
            }
            Some(ServerFrame::Opened { .. }) | None => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(closed, 2, "both UDP sessions must close");

    let report = server.shutdown();
    assert_eq!(report.metrics.counter("serve.sessions_closed"), 2);
    assert_eq!(report.metrics.counter("serve.conformance_failures"), 0);
}

#[test]
fn auth_and_admission_rejections() {
    let server = Server::start(ServeConfig {
        auth_token: Some(0x5EC_C0DE),
        ..test_config()
    })
    .unwrap();

    // Wrong token: the hello helper sees Bye{Unauthorized}, not HelloOk.
    let mut bad = ServeClient::connect(server.addr()).unwrap();
    assert!(bad.hello(0xDEAD, HELLO_TIMEOUT).is_err());
    drop(bad);

    // No Hello at all: opens bounce with Unauthorized.
    let mut cold = ServeClient::connect(server.addr()).unwrap();
    cold.open(7, TimingModel::Periodic, 2, 2, 1000, 1).unwrap();
    cold.flush().unwrap();
    match cold.recv_timeout(FRAME_TIMEOUT) {
        Some(ServerFrame::Reject { req, code }) => {
            assert_eq!((req, code), (7, RejectCode::Unauthorized));
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    drop(cold);

    // Correct token, but a spec outside the admission limits.
    let mut good = ServeClient::connect(server.addr()).unwrap();
    good.hello(0x5EC_C0DE, HELLO_TIMEOUT).unwrap();
    good.open(8, TimingModel::Periodic, 2, 0, 1000, 1).unwrap();
    good.open(9, TimingModel::Periodic, 2, 100, 1000, 1)
        .unwrap();
    good.flush().unwrap();
    for _ in 0..2 {
        match good.recv_timeout(FRAME_TIMEOUT) {
            Some(ServerFrame::Reject { code, .. }) => assert_eq!(code, RejectCode::Invalid),
            other => panic!("expected Reject{{Invalid}}, got {other:?}"),
        }
    }

    // A valid open on the same connection still works.
    good.open(10, TimingModel::Periodic, 2, 2, 1000, 1).unwrap();
    good.flush().unwrap();
    let mut saw_close = false;
    for _ in 0..2 {
        match good.recv_timeout(FRAME_TIMEOUT) {
            Some(ServerFrame::Opened { req, .. }) => assert_eq!(req, 10),
            Some(ServerFrame::Closed { conformance, .. }) => {
                assert_eq!(conformance, ConformanceVerdict::Pass);
                saw_close = true;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(saw_close);

    let report = server.shutdown();
    assert_eq!(report.metrics.counter("serve.sessions_closed"), 1);
}
