//! The synchronous message-passing algorithm: no communication at all.

use session_mpm::{Envelope, MpProcess};

use crate::msg::SessionMsg;

/// In the synchronous model all processes step in lockstep every `c2`, and
/// in the message-passing model every step of a port process is a port step
/// — so `s` silent steps suffice (Table 1 row 1).
#[derive(Clone, Debug)]
pub struct SyncMpPort {
    s: u64,
    steps: u64,
}

impl SyncMpPort {
    /// Creates the port process for the `s`-session requirement.
    pub fn new(s: u64) -> SyncMpPort {
        SyncMpPort { s, steps: 0 }
    }

    /// Port steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }
}

impl MpProcess<SessionMsg> for SyncMpPort {
    fn step(&mut self, _inbox: Vec<Envelope<SessionMsg>>) -> Option<SessionMsg> {
        if self.steps < self.s {
            self.steps += 1;
        }
        None
    }

    fn is_idle(&self) -> bool {
        self.steps >= self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idles_after_s_steps_without_broadcasting() {
        let mut p = SyncMpPort::new(2);
        assert_eq!(p.step(vec![]), None);
        assert!(!p.is_idle());
        assert_eq!(p.step(vec![]), None);
        assert!(p.is_idle());
        assert_eq!(p.steps_taken(), 2);
        // Absorbing.
        assert_eq!(p.step(vec![]), None);
        assert_eq!(p.steps_taken(), 2);
    }

    #[test]
    fn ignores_any_messages() {
        use session_types::ProcessId;
        let mut p = SyncMpPort::new(1);
        let inbox = vec![Envelope::new(ProcessId::new(3), SessionMsg::new(9))];
        assert_eq!(p.step(inbox), None);
        assert!(p.is_idle());
    }
}
