//! CLI for the workspace linter. Arguments use the same `key=value`
//! grammar as the other session binaries:
//!
//! ```text
//! session-wslint [root=DIR] [format=md|json|github] [json=PATH] [--list]
//! ```
//!
//! Exit codes mirror `session-cli analyze`: 0 clean, 1 findings, 2
//! usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use session_wslint::{checks, Config, ALL_CODES};

const USAGE: &str = "usage: session-wslint [root=DIR] [format=md|json|github] [json=PATH] [--list]
  root=DIR     workspace root to lint (default: current directory)
  format=F     stdout format: md (default), json, github (CI annotations)
  json=PATH    additionally write the json report to PATH
  --list       print the WSxxx check table and exit";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "md".to_owned();
    let mut json_path: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--list" {
            for code in ALL_CODES {
                println!("{}  {}", code.code(), code.name());
            }
            return ExitCode::SUCCESS;
        }
        if arg == "--help" || arg == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("error: unrecognized argument `{arg}`\n{USAGE}");
            return ExitCode::from(2);
        };
        match key {
            "root" => root = PathBuf::from(value),
            "format" => {
                if !matches!(value, "md" | "json" | "github") {
                    eprintln!("error: format must be md, json or github (got `{value}`)\n{USAGE}");
                    return ExitCode::from(2);
                }
                value.clone_into(&mut format);
            }
            "json" => json_path = Some(PathBuf::from(value)),
            _ => {
                eprintln!("error: unrecognized key `{key}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !root.is_dir() {
        eprintln!("error: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let config = Config::workspace(root);
    let report = match checks::run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        "github" => {
            print!("{}", report.to_github());
            // The summary line keeps CI logs self-describing even when
            // every annotation is surfaced elsewhere by the runner.
            eprintln!(
                "session-wslint: {} findings across {} files",
                report.findings.len(),
                report.stats.files_scanned
            );
        }
        _ => print!("{}", report.to_markdown()),
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
