//! Message-passing substrate for the reproduction of *"The Impact of Time on
//! the Session Problem"* (Rhee & Welch, PODC 1992).
//!
//! This crate implements the paper's message-passing model (§2.1.2):
//!
//! * the process set is `P = R ∪ {N}`: regular processes plus the network;
//! * a step of a regular process `p` receives the entire contents of its
//!   delivery buffer `buf_p` and, based solely on those messages and its
//!   state, updates its state and (optionally) **broadcasts** a message to
//!   all regular processes — the formal model broadcasts at every step; a
//!   `None` return here is the practical equivalent of broadcasting a
//!   message nobody inspects;
//! * a step of the network `N` delivers one `(m, q)` pair from `net` into
//!   `buf_q`; the engine realizes each such step as a delivery event whose
//!   time is chosen by a [`session_sim::DelayPolicy`] — an equivalent
//!   formulation of the paper's explicit network process;
//! * a message's *delay* is the time from the sending step to the delivery
//!   step, excluding the time it then waits in the buffer (§2.1.2); the
//!   [`session_sim::Trace`] records both timestamps so admissibility
//!   checkers can verify `[d1, d2]` exactly.
//!
//! In this model every step of a port process involves its buffer, so every
//! step of a port process is a **port step** (§2.3).
//!
//! # Examples
//!
//! ```
//! use session_mpm::{Envelope, MpEngine, MpProcess};
//! use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
//! use session_types::{Dur, PortId, ProcessId};
//!
//! /// Broadcasts once, then idles after hearing from everyone.
//! #[derive(Debug)]
//! struct HelloAll {
//!     heard: usize,
//!     n: usize,
//!     sent: bool,
//! }
//!
//! impl MpProcess<&'static str> for HelloAll {
//!     fn step(&mut self, inbox: Vec<Envelope<&'static str>>) -> Option<&'static str> {
//!         self.heard += inbox.len();
//!         if !self.sent {
//!             self.sent = true;
//!             Some("hello")
//!         } else {
//!             None
//!         }
//!     }
//!     fn is_idle(&self) -> bool {
//!         self.heard >= self.n
//!     }
//! }
//!
//! # fn main() -> Result<(), session_types::Error> {
//! let n = 3;
//! let procs: Vec<Box<dyn MpProcess<&'static str>>> = (0..n)
//!     .map(|_| Box::new(HelloAll { heard: 0, n, sent: false }) as Box<_>)
//!     .collect();
//! let ports = (0..n).map(|i| (ProcessId::new(i), PortId::new(i))).collect();
//! let mut engine = MpEngine::new(procs, ports)?;
//! let mut sched = FixedPeriods::uniform(n, Dur::from_int(1))?;
//! let mut delays = ConstantDelay::new(Dur::from_int(2))?;
//! let outcome = engine.run(&mut sched, &mut delays, RunLimits::default())?;
//! assert!(outcome.terminated);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod process;

pub use engine::MpEngine;
pub use process::{step_process, Envelope, MpProcess, StepResult};
