#!/usr/bin/env bash
# The workspace's static-analysis gate, run by CI and locally before
# merging:
#
#   1. rustfmt          -- formatting is canonical
#   2. clippy           -- the workspace lint policy, warnings are errors
#   3. analyzer (release tests) -- including the #[ignore]d large
#      explorations that are too slow under the debug profile
#   4. session-cli analyze -- the ten paper algorithms must explore clean,
#      and the three naive witnesses must be flagged with their exact
#      codes and make the run exit non-zero
#
# Usage: scripts/static-analysis.sh
#
# `set -euo pipefail` + the ERR trap make every failure loud: the script
# stops at the first failing step and names it, instead of continuing and
# reporting a stale "OK".
set -Eeuo pipefail
cd "$(dirname "$0")/.."

current_step="(startup)"
trap 'echo "static-analysis: FAILED during: $current_step" >&2' ERR

current_step="rustfmt"
echo "== rustfmt =="
cargo fmt --all -- --check

current_step="clippy"
echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

current_step="analyzer release tests"
echo "== analyzer test suite (release, including large explorations) =="
cargo test -p session-analyzer --release -- --include-ignored

current_step="building session-cli"
echo "== building session-cli =="
cargo build -q --release --bin session-cli

current_step="analyze (paper algorithms must be clean)"
echo "== analyze: the ten paper algorithms must be clean =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    | tee /tmp/analyze-clean.md
grep -q "No findings." /tmp/analyze-clean.md

current_step="analyze --all (witnesses must be flagged)"
echo "== analyze --all: the witnesses must be flagged and fail the run =="
# The full run must exit 1 (deny findings present) -- invert the check.
if ./target/release/session-cli analyze --all > /tmp/analyze-all.md; then
    echo "ERROR: analyze --all exited 0, the naive witnesses were not flagged" >&2
    exit 1
fi
grep -q "SA001 session-deficit | deny | NaivePeriodicSm" /tmp/analyze-all.md
grep -q "SA001 session-deficit | deny | NaiveSemiSyncSm" /tmp/analyze-all.md
grep -q "SA003 stale-evidence | deny | NaiveSporadicMp" /tmp/analyze-all.md

echo "static analysis: OK"
