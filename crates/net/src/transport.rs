//! The wire between real processes: packets, endpoints, and the in-process
//! channel transport.
//!
//! The runtime injects the timing model's message-delay window at this
//! layer: a packet carries both its nominal send time and its nominal
//! delivery time (drawn from `[d1, d2]` by the sender), and the receiving
//! thread holds drained packets until its first step at or after
//! `deliver_at`. The transport itself only has to move bytes promptly —
//! admissible delays are a property of the *nominal* timestamps, not of
//! how fast the OS moves the packet.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use session_types::{ProcessId, Result, Time};

/// Which transport a [`crate::RealConfig`] selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process `std::sync::mpsc` channels: lossless and deterministic
    /// enough for the conformance tests.
    Chan,
    /// UDP sockets on `127.0.0.1`: real datagrams through the kernel's
    /// loopback stack.
    Udp,
}

impl TransportKind {
    /// Parses `"chan"` or `"udp"`.
    pub fn parse(text: &str) -> Option<TransportKind> {
        match text {
            "chan" => Some(TransportKind::Chan),
            "udp" => Some(TransportKind::Udp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Chan => "chan",
            TransportKind::Udp => "udp",
        })
    }
}

/// One broadcast message on the wire, stamped with its nominal times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sending process.
    pub from: ProcessId,
    /// The algorithm payload (`SessionMsg::value`).
    pub value: u64,
    /// Nominal (logical-clock) send time.
    pub sent_at: Time,
    /// Nominal delivery time, drawn from the model's `[d1, d2]` window by
    /// the sender.
    pub deliver_at: Time,
}

/// A process's handle on the transport: send to any peer, drain whatever
/// has arrived. Implementations must be [`Send`] — each endpoint moves
/// into its process's OS thread.
pub trait Endpoint: Send {
    /// Enqueues `packet` toward process `to`. Must not block on the
    /// receiver.
    ///
    /// # Errors
    ///
    /// Returns an error only for transport faults (e.g. an I/O error on a
    /// socket); a peer that has already exited is not an error.
    fn send(&mut self, to: ProcessId, packet: &Packet) -> Result<()>;

    /// Takes every packet that has arrived so far, without blocking.
    fn drain(&mut self) -> Vec<Packet>;
}

/// Builds the `n` per-process endpoints of one network.
pub trait Transport {
    /// Creates one connected endpoint per process, indexed by
    /// [`ProcessId`].
    ///
    /// # Errors
    ///
    /// Returns an error if the transport cannot be set up (e.g. socket
    /// binding fails).
    fn endpoints(&mut self, n: usize) -> Result<Vec<Box<dyn Endpoint>>>;
}

/// The in-process channel transport: one `mpsc` channel per process, every
/// endpoint holding a sender to each peer.
#[derive(Debug, Default)]
pub struct ChanTransport;

impl ChanTransport {
    /// Creates the transport.
    pub fn new() -> ChanTransport {
        ChanTransport
    }
}

struct ChanEndpoint {
    peers: BTreeMap<ProcessId, Sender<Packet>>,
    inbox: Receiver<Packet>,
}

impl std::fmt::Debug for ChanEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChanEndpoint")
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl Endpoint for ChanEndpoint {
    fn send(&mut self, to: ProcessId, packet: &Packet) -> Result<()> {
        if let Some(tx) = self.peers.get(&to) {
            // A disconnected peer has already quiesced and exited; the
            // packet can no longer affect the outcome.
            let _ = tx.send(*packet);
        }
        Ok(())
    }

    fn drain(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Ok(packet) = self.inbox.try_recv() {
            out.push(packet);
        }
        out
    }
}

impl Transport for ChanTransport {
    fn endpoints(&mut self, n: usize) -> Result<Vec<Box<dyn Endpoint>>> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        Ok(receivers
            .into_iter()
            .map(|inbox| {
                let peers: BTreeMap<ProcessId, Sender<Packet>> = senders
                    .iter()
                    .enumerate()
                    .map(|(i, tx)| (ProcessId::new(i), tx.clone()))
                    .collect();
                Box::new(ChanEndpoint { peers, inbox }) as Box<dyn Endpoint>
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(from: usize, value: u64) -> Packet {
        Packet {
            from: ProcessId::new(from),
            value,
            sent_at: Time::from_int(1),
            deliver_at: Time::from_int(2),
        }
    }

    #[test]
    fn chan_transport_routes_between_endpoints() {
        let mut transport = ChanTransport::new();
        let mut eps = transport.endpoints(3).unwrap();
        eps[0].send(ProcessId::new(2), &packet(0, 7)).unwrap();
        eps[0].send(ProcessId::new(2), &packet(0, 8)).unwrap();
        eps[1].send(ProcessId::new(0), &packet(1, 9)).unwrap();
        let at2 = eps[2].drain();
        assert_eq!(at2.len(), 2);
        assert_eq!(at2[0].value, 7);
        assert_eq!(at2[1].value, 8);
        let at0 = eps[0].drain();
        assert_eq!(at0.len(), 1);
        assert_eq!(at0[0].from, ProcessId::new(1));
        assert!(eps[1].drain().is_empty());
    }

    #[test]
    fn send_to_dropped_peer_is_not_an_error() {
        let mut transport = ChanTransport::new();
        let mut eps = transport.endpoints(2).unwrap();
        drop(eps.remove(1));
        eps[0].send(ProcessId::new(1), &packet(0, 1)).unwrap();
    }

    #[test]
    fn self_send_loops_back() {
        let mut transport = ChanTransport::new();
        let mut eps = transport.endpoints(1).unwrap();
        eps[0].send(ProcessId::new(0), &packet(0, 42)).unwrap();
        let got = eps[0].drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, 42);
    }

    #[test]
    fn transport_kind_parses() {
        assert_eq!(TransportKind::parse("chan"), Some(TransportKind::Chan));
        assert_eq!(TransportKind::parse("udp"), Some(TransportKind::Udp));
        assert_eq!(TransportKind::parse("tcp"), None);
        assert_eq!(TransportKind::Chan.to_string(), "chan");
    }
}
