//! Ablation bench (DESIGN.md §6.1): the cost of exact rational time.
//!
//! The simulator's clock is an `i128` rational so that the lower-bound
//! retimings are exact. This bench quantifies the overhead against raw
//! `i128` integer-tick arithmetic — the representation a less careful
//! simulator would use.

use criterion::{criterion_group, criterion_main, Criterion};
use session_types::Ratio;
use std::hint::black_box;
use std::time::Duration;

fn bench_ratio_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("time-repr");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    let a = Ratio::new(355, 113);
    let b = Ratio::new(22, 7);
    group.bench_function("ratio-add", |bench| {
        bench.iter(|| black_box(a) + black_box(b));
    });
    group.bench_function("ratio-mul", |bench| {
        bench.iter(|| black_box(a) * black_box(b));
    });
    group.bench_function("ratio-cmp", |bench| {
        bench.iter(|| black_box(a) < black_box(b));
    });
    let x: i128 = 355_000;
    let y: i128 = 113_000;
    group.bench_function("i128-add", |bench| {
        bench.iter(|| black_box(x) + black_box(y));
    });
    group.bench_function("i128-cmp", |bench| {
        bench.iter(|| black_box(x) < black_box(y));
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use session_sim::EventQueue;
    use session_types::Time;
    let mut group = c.benchmark_group("time-repr/queue");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.bench_function("push-pop-1000-rational", |bench| {
        bench.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000i128 {
                q.push(Time::from_ratio(Ratio::new(i, i % 7 + 1)), i);
            }
            while let Some(item) = q.pop() {
                black_box(item);
            }
        });
    });
    group.bench_function("push-pop-1000-integer", |bench| {
        bench.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000i128 {
                q.push(Time::from_int(i), i);
            }
            while let Some(item) = q.pop() {
                black_box(item);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ratio_ops, bench_event_queue);
criterion_main!(benches);
