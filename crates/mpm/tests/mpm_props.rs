//! Property-based tests for the message-passing substrate: broadcast
//! fan-out, message conservation, buffer semantics and determinism.

use proptest::prelude::*;
use session_mpm::{Envelope, MpEngine, MpProcess};
use session_sim::{FixedPeriods, RunLimits, StepKind, UniformDelay};
use session_types::{Dur, PortId, ProcessId};

/// Broadcasts a counter every step until it has sent `to_send`, then goes
/// quiet; idles after hearing `to_hear` messages.
#[derive(Debug)]
struct Worker {
    sent: u64,
    to_send: u64,
    heard: usize,
    to_hear: usize,
}

impl MpProcess<u64> for Worker {
    fn step(&mut self, inbox: Vec<Envelope<u64>>) -> Option<u64> {
        self.heard += inbox.len();
        if self.sent < self.to_send {
            self.sent += 1;
            Some(self.sent)
        } else {
            None
        }
    }

    fn is_idle(&self) -> bool {
        self.heard >= self.to_hear
    }
}

fn build(n: usize, to_send: u64, to_hear: usize) -> MpEngine<u64> {
    let processes: Vec<Box<dyn MpProcess<u64>>> = (0..n)
        .map(|_| {
            Box::new(Worker {
                sent: 0,
                to_send,
                heard: 0,
                to_hear,
            }) as Box<_>
        })
        .collect();
    let ports = (0..n)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    MpEngine::new(processes, ports).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every broadcast fans out to exactly n recipients (self included),
    /// so the send count is always a multiple of n with the right total.
    #[test]
    fn broadcast_fanout_is_exactly_n(
        n in 1usize..6,
        to_send in 0u64..5,
        period in 1i128..4,
        seed in any::<u64>(),
    ) {
        let mut engine = build(n, to_send, usize::MAX);
        let mut sched = FixedPeriods::uniform(n, Dur::from_int(period)).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, Dur::from_int(3), seed).unwrap();
        let steps_budget = (to_send + 3) * n as u64;
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default().with_max_steps(steps_budget))
            .unwrap();
        let broadcasts = outcome
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, StepKind::MpStep { broadcast: true, .. }))
            .count();
        prop_assert_eq!(outcome.trace.messages().len(), broadcasts * n);
        // Each broadcasting step addressed every process exactly once.
        for chunk in outcome.trace.messages().chunks(n) {
            let recipients: std::collections::BTreeSet<ProcessId> =
                chunk.iter().map(|m| m.to).collect();
            prop_assert_eq!(recipients.len(), n);
            let senders: std::collections::BTreeSet<ProcessId> =
                chunk.iter().map(|m| m.from).collect();
            prop_assert_eq!(senders.len(), 1);
        }
    }

    /// Conservation: messages received by steps == messages delivered by
    /// the network within the trace; deliveries never exceed sends; each
    /// delivery matches one Deliver event.
    #[test]
    fn message_conservation(
        n in 1usize..6,
        to_send in 0u64..5,
        seed in any::<u64>(),
    ) {
        let mut engine = build(n, to_send, usize::MAX);
        let mut sched = FixedPeriods::uniform(n, Dur::from_int(2)).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, Dur::from_int(2), seed).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default().with_max_steps(60))
            .unwrap();
        let delivered = outcome
            .trace
            .messages()
            .iter()
            .filter(|m| m.delivered_at.is_some())
            .count();
        let deliver_events = outcome
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, StepKind::Deliver { .. }))
            .count();
        prop_assert_eq!(delivered, deliver_events);
        prop_assert!(delivered <= outcome.trace.messages().len());
        // Deliveries are never before their send.
        for m in outcome.trace.messages() {
            if let Some(at) = m.delivered_at {
                prop_assert!(at >= m.sent_at);
            }
        }
    }

    /// The engine is deterministic: identical seeds produce identical
    /// traces, event by event.
    #[test]
    fn runs_are_deterministic(
        n in 1usize..5,
        to_send in 0u64..4,
        seed in any::<u64>(),
    ) {
        let run = |_| {
            let mut engine = build(n, to_send, usize::MAX);
            let mut sched = FixedPeriods::uniform(n, Dur::from_int(1)).unwrap();
            let mut delays = UniformDelay::new(Dur::ZERO, Dur::from_int(4), seed).unwrap();
            engine
                .run(&mut sched, &mut delays, RunLimits::default().with_max_steps(40))
                .unwrap()
        };
        let a = run(0);
        let b = run(1);
        prop_assert_eq!(a.trace.events(), b.trace.events());
        prop_assert_eq!(a.trace.messages(), b.trace.messages());
        prop_assert_eq!(a.steps, b.steps);
    }

    /// Buffers drain exactly once: the total `received` across steps never
    /// exceeds the number of deliveries, and after the run every delivered
    /// message was either received by some step or still sits in a buffer.
    #[test]
    fn buffers_drain_exactly_once(
        n in 1usize..5,
        to_send in 1u64..4,
        seed in any::<u64>(),
    ) {
        let mut engine = build(n, to_send, usize::MAX);
        let mut sched = FixedPeriods::uniform(n, Dur::from_int(1)).unwrap();
        let mut delays = UniformDelay::new(Dur::ZERO, Dur::from_int(2), seed).unwrap();
        let outcome = engine
            .run(&mut sched, &mut delays, RunLimits::default().with_max_steps(50))
            .unwrap();
        let total_received: usize = outcome
            .trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                StepKind::MpStep { received, .. } => Some(received),
                _ => None,
            })
            .sum();
        let delivered = outcome
            .trace
            .messages()
            .iter()
            .filter(|m| m.delivered_at.is_some())
            .count();
        prop_assert!(total_received <= delivered, "{total_received} > {delivered}");
    }
}
