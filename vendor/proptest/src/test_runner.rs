//! The deterministic case runner behind [`crate::proptest!`].

use std::io::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

/// Runner configuration. Mirrors the `proptest::test_runner::ProptestConfig`
/// fields this workspace touches.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases required for the test to pass.
    pub cases: u32,
    /// Give up after this many rejected cases (filters and `prop_assume!`).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator from a case seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform sample from an integer range.
    pub fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(&mut self.inner)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn random_unit_f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Panic payload used by [`crate::prop_assume!`] to discard a case.
#[derive(Clone, Copy, Debug)]
pub struct AssumeRejected;

/// Outcome of one generated case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseResult {
    /// The case ran to completion.
    Pass,
    /// The case was discarded before running (filter or assume).
    Reject,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mix(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `<manifest dir>/proptest-regressions/<source file stem>.txt` — the one
/// place recorded failures are read from (and appended to). Keeping this in
/// one function pins the layout the repo's regression files must use.
fn regression_path(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
    let stem = Path::new(source_file).file_stem()?;
    let mut path = PathBuf::from(manifest_dir);
    path.push("proptest-regressions");
    path.push(stem);
    path.set_extension("txt");
    Some(path)
}

/// Parses recorded `cc <16 hex digits> [# comment]` lines into case seeds.
/// Anything else (comments, the upstream sha-based `cc` format) is skipped.
fn recorded_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            (token.len() == 16).then(|| u64::from_str_radix(token, 16).ok())?
        })
        .collect()
}

fn record_failure(path: &Path, seed: u64, test_name: &str) {
    // Best effort: failures are still fully reported on stderr if the
    // source tree is read-only.
    let header_needed = !path.exists();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if header_needed {
        let _ = writeln!(
            file,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # Format: each line is `cc <16-hex-digit case seed> # comment`."
        );
    }
    let _ = writeln!(file, "cc {seed:016x} # failed case in {test_name}");
}

/// Runs one property test: replays recorded regression seeds, then runs
/// fresh deterministic cases until `config.cases` accept.
///
/// # Panics
///
/// Re-raises the first case failure (after printing the inputs and replay
/// seed), and panics if too many cases are rejected.
pub fn run<F>(
    config: &ProptestConfig,
    test_name: &str,
    manifest_dir: &str,
    source_file: &str,
    mut case: F,
) where
    F: FnMut(&mut TestRng, &mut String) -> CaseResult,
{
    let regressions = regression_path(manifest_dir, source_file);
    if let Some(path) = &regressions {
        for seed in recorded_seeds(path) {
            let _ = run_one(seed, test_name, None, &mut case);
        }
    }
    let base_seed = fnv1a(test_name.as_bytes());
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    let mut index: u64 = 0;
    while accepted < config.cases {
        let seed = mix(base_seed, index);
        index += 1;
        match run_one(seed, test_name, regressions.as_deref(), &mut case) {
            CaseResult::Pass => accepted += 1,
            CaseResult::Reject => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest: {test_name} rejected {rejected} cases \
                     (accepted {accepted}/{} wanted); filters or prop_assume! \
                     are too strict",
                    config.cases
                );
            }
        }
    }
}

fn run_one<F>(seed: u64, test_name: &str, record_to: Option<&Path>, case: &mut F) -> CaseResult
where
    F: FnMut(&mut TestRng, &mut String) -> CaseResult,
{
    let mut rng = TestRng::new(seed);
    let mut desc = String::new();
    match catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut desc))) {
        Ok(result) => result,
        Err(payload) => {
            if payload.downcast_ref::<AssumeRejected>().is_some() {
                return CaseResult::Reject;
            }
            eprintln!(
                "proptest: {test_name} failed (no shrinking in the vendored runner)\n\
                   replay line: cc {seed:016x}\n\
                   inputs:\n{desc}"
            );
            if let Some(path) = record_to {
                record_failure(path, seed, test_name);
            }
            resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_overrides_only_cases() {
        let config = ProptestConfig::with_cases(7);
        assert_eq!(config.cases, 7);
        assert_eq!(
            config.max_global_rejects,
            ProptestConfig::default().max_global_rejects
        );
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        assert_eq!(fnv1a(b"a::b"), fnv1a(b"a::b"));
        assert_ne!(fnv1a(b"a::b"), fnv1a(b"a::c"));
        assert_ne!(mix(1, 0), mix(1, 1));
    }

    #[test]
    fn recorded_seed_lines_are_parsed_and_junk_is_skipped() {
        let dir = std::env::temp_dir().join("session-proptest-stub-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("seeds.txt");
        std::fs::write(
            &path,
            "# comment\ncc 00000000000000ff # pinned\ncc a33a774bd1e7af552ccee210cf2c8efd # sha-format, skipped\n",
        )
        .unwrap();
        assert_eq!(recorded_seeds(&path), vec![0xff]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejecting_every_case_gives_up() {
        let config = ProptestConfig {
            cases: 4,
            max_global_rejects: 10,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(&config, "t", "/nonexistent", "x.rs", |_, _| {
                CaseResult::Reject
            });
        }));
        assert!(result.is_err());
    }
}
