//! The `(s, n)`-session problem under five timing models — the primary
//! contribution of *"The Impact of Time on the Session Problem"*
//! (Rhee & Welch, PODC 1992).
//!
//! # What this crate provides
//!
//! * **Algorithms** ([`algorithms`]): one session algorithm per cell of the
//!   paper's Table 1 —
//!   synchronous / periodic (`A(p)`) / semi-synchronous / sporadic (`A(sp)`)
//!   / asynchronous, in both the shared-memory and message-passing models.
//! * **System assembly** ([`system`]): wiring an algorithm into a runnable
//!   [`session_smm::SmEngine`] (port processes + §3 tree network) or
//!   [`session_mpm::MpEngine`].
//! * **Verification** ([`verify`]): an *independent* checker layer — greedy
//!   disjoint-session counting (with a brute-force reference in tests),
//!   round counting, and per-model admissibility checks over recorded
//!   traces. Algorithms are never trusted: every experiment recounts
//!   sessions from the trace.
//! * **Bounds** ([`bounds`]): the closed-form Table 1 expressions, used by
//!   the benchmark harness to print paper-vs-measured tables.
//! * **Reports** ([`report`]): a one-call façade that runs a model ×
//!   communication-substrate configuration under a schedule and returns
//!   sessions, rounds, running time and `γ`.
//! * **Analysis** ([`analysis`]): a one-pass whole-trace summary (session
//!   close times, per-process step statistics, message delays).
//!
//! # Example: the periodic algorithm `A(p)` over message passing
//!
//! ```
//! use session_core::report::{run_mp, MpConfig};
//! use session_sim::{ConstantDelay, FixedPeriods, RunLimits};
//! use session_types::{Dur, KnownBounds, SessionSpec, TimingModel};
//!
//! # fn main() -> Result<(), session_types::Error> {
//! let spec = SessionSpec::new(4, 3, 2)?; // 4 sessions, 3 ports
//! let bounds = KnownBounds::periodic(Dur::from_int(10))?;
//! // Hidden periods (unknown to the processes): 2, 3 and 5.
//! let mut schedule = FixedPeriods::new(vec![
//!     Dur::from_int(2), Dur::from_int(3), Dur::from_int(5),
//! ])?;
//! let mut delays = ConstantDelay::new(Dur::from_int(10))?;
//! let report = run_mp(
//!     MpConfig { model: TimingModel::Periodic, spec, bounds },
//!     &mut schedule,
//!     &mut delays,
//!     RunLimits::default(),
//! )?;
//! assert!(report.terminated);
//! assert!(report.sessions >= 4, "the paper's correctness condition");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod analysis;
pub mod bounds;
pub mod report;
pub mod system;
pub mod verify;

mod msg;

pub use msg::SessionMsg;
