//! The shared-memory process abstraction.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use session_types::VarId;

/// A process of the shared-memory model (§2.1.1).
///
/// Each step atomically reads and writes exactly one shared variable. The
/// engine drives the protocol as: ask [`target`](SmProcess::target) which
/// variable the next step accesses, then call [`step`](SmProcess::step) with
/// the variable's current value and store the returned value back.
///
/// Processes have **no clock**: the trait deliberately does not expose the
/// current time. Everything an algorithm may use is its own state, the value
/// it reads, and the model constants it was constructed with — exactly the
/// information the paper grants (§2.2).
///
/// Once [`is_idle`](SmProcess::is_idle) returns `true` it must remain `true`
/// forever (idle states are closed under steps, §2.3); the engine keeps
/// scheduling idle processes (every process takes infinitely many steps in
/// the formal model) until the run's termination condition is met, so an
/// idle process's `step` is typically the identity on the variable.
pub trait SmProcess<V>: fmt::Debug {
    /// The variable the next step will access.
    fn target(&self) -> VarId;

    /// Executes one atomic step: observes `value` (the target variable's
    /// current contents) and returns the value to write back.
    fn step(&mut self, value: &V) -> V;

    /// Returns `true` if the process is in an idle state.
    fn is_idle(&self) -> bool;

    /// A hash of the process's internal state, used by the lower-bound
    /// machinery to check that reordered computations reach the same global
    /// state (Claim 5.2). The default hashes the `Debug` rendering, which is
    /// faithful for the `#[derive(Debug)]` state structs used throughout
    /// this workspace.
    fn fingerprint(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        format!("{self:?}").hash(&mut hasher);
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Toggler {
        var: VarId,
        on: bool,
    }

    impl SmProcess<bool> for Toggler {
        fn target(&self) -> VarId {
            self.var
        }

        fn step(&mut self, value: &bool) -> bool {
            self.on = !self.on;
            !*value
        }

        fn is_idle(&self) -> bool {
            false
        }
    }

    #[test]
    fn fingerprint_tracks_state_changes() {
        let mut t = Toggler {
            var: VarId::new(0),
            on: false,
        };
        let before = t.fingerprint();
        let _ = t.step(&false);
        let after = t.fingerprint();
        assert_ne!(before, after);
        let _ = t.step(&true);
        assert_eq!(t.fingerprint(), before);
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut boxed: Box<dyn SmProcess<bool>> = Box::new(Toggler {
            var: VarId::new(3),
            on: false,
        });
        assert_eq!(boxed.target(), VarId::new(3));
        assert!(!boxed.step(&true));
        assert!(!boxed.is_idle());
        // Debug supertrait works through the trait object.
        assert!(format!("{boxed:?}").contains("Toggler"));
    }
}
