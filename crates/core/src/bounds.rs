//! The closed-form bounds of Table 1.
//!
//! Each function evaluates one cell of the paper's summary table. `O(·)`
//! entries (the shared-memory communication terms) are parameterized by the
//! *concrete* number of communication rounds of the tree network actually
//! built ([`session_smm::TreeSpec::flood_rounds_bound`]), so that
//! paper-vs-measured comparisons in `EXPERIMENTS.md` are honest about
//! constants.
//!
//! Note on the sporadic constant `K`: the paper's abstract and the proof of
//! Theorem 6.5 derive `K = 2·d2·c1 / (d2 − u/2)` (the proof rescales time by
//! `2c1/K` and states the rescaled delay is `d2 − u/2`); the theorem
//! statement itself prints `d2 − u/4` once. We follow the derivation.

use session_types::{Dur, Ratio, SessionSpec};

/// Synchronous, both models, lower = upper: `s · c2`.
pub fn sync_time(s: u64, c2: Dur) -> Dur {
    c2 * s as i128
}

/// Periodic shared memory, lower bound (Theorem 4.3):
/// `max(s · c_max, ⌊log_{2b−1}(2n−1)⌋ · c_min)`.
pub fn periodic_sm_lower(spec: &SessionSpec, c_min: Dur, c_max: Dur) -> Dur {
    let sessions = c_max * spec.s() as i128;
    let contamination = c_min * spec.contamination_depth() as i128;
    sessions.max(contamination)
}

/// Periodic shared memory, upper bound (Theorem 4.1):
/// `s · c_max + O(log_b n) · c_max`, with the `O(log_b n)` factor
/// instantiated by the concrete tree-network flood bound `comm_rounds`.
pub fn periodic_sm_upper(spec: &SessionSpec, c_max: Dur, comm_rounds: u64) -> Dur {
    c_max * spec.s() as i128 + c_max * comm_rounds as i128
}

/// Periodic message passing, lower bound (Theorem 4.2):
/// `max(s · c_max, d2)`.
pub fn periodic_mp_lower(s: u64, c_max: Dur, d2: Dur) -> Dur {
    (c_max * s as i128).max(d2)
}

/// Periodic message passing, upper bound (Theorem 4.1):
/// `s · c_max + d2`.
pub fn periodic_mp_upper(s: u64, c_max: Dur, d2: Dur) -> Dur {
    c_max * s as i128 + d2
}

/// Semi-synchronous shared memory, lower bound (Theorem 5.1):
/// `min(⌊c2/2c1⌋, ⌊log_b n⌋) · c2 · (s − 1)`.
pub fn semisync_sm_lower(spec: &SessionSpec, c1: Dur, c2: Dur) -> Dur {
    let step_counting = c2.div_floor(c1 * 2);
    let communication = spec.log_b_n_floor() as i128;
    c2 * step_counting.min(communication) * (spec.s() as i128 - 1)
}

/// Semi-synchronous shared memory, upper bound:
/// `min(⌊c2/c1⌋ + 1, comm_rounds) · c2 · (s − 1) + c2`, with the
/// `O(log_b n)` communication term instantiated by `comm_rounds`.
pub fn semisync_sm_upper(s: u64, c1: Dur, c2: Dur, comm_rounds: u64) -> Dur {
    let step_counting = c2.div_floor(c1) + 1;
    let per_session = step_counting.min(comm_rounds as i128);
    c2 * per_session * (s as i128 - 1) + c2
}

/// Semi-synchronous message passing, lower bound (from \[4\], converted):
/// `min(⌊c2/2c1⌋ · c2, d2 + c2) · (s − 1)`.
pub fn semisync_mp_lower(s: u64, c1: Dur, c2: Dur, d2: Dur) -> Dur {
    let step_counting = c2 * c2.div_floor(c1 * 2);
    let communication = d2 + c2;
    step_counting.min(communication) * (s as i128 - 1)
}

/// Semi-synchronous message passing, upper bound (from \[4\], converted):
/// `min((⌊c2/c1⌋ + 1) · c2, d2 + c2) · (s − 1) + c2`.
pub fn semisync_mp_upper(s: u64, c1: Dur, c2: Dur, d2: Dur) -> Dur {
    let step_counting = c2 * (c2.div_floor(c1) + 1);
    let communication = d2 + c2;
    step_counting.min(communication) * (s as i128 - 1) + c2
}

/// The sporadic constant `K = 2·d2·c1 / (d2 − u/2)` with `u = d2 − d1`.
///
/// Returns `None` when `d2 = 0` (no message ever takes time; the `K` term
/// vanishes because `⌊u/4c1⌋ = 0`).
pub fn sporadic_k(c1: Dur, d1: Dur, d2: Dur) -> Option<Dur> {
    if !d2.is_positive() {
        return None;
    }
    let u = d2 - d1;
    let denominator = d2 - u / 2;
    debug_assert!(denominator.is_positive());
    Some(d2 * c1.as_ratio() * Ratio::from_int(2) / denominator.as_ratio())
}

/// Sporadic message passing, lower bound (Theorem 6.5):
/// `max(⌊u/4c1⌋ · K, c1) · (s − 1)`.
pub fn sporadic_mp_lower(s: u64, c1: Dur, d1: Dur, d2: Dur) -> Dur {
    let u = d2 - d1;
    let blocks = u.div_floor(c1 * 4);
    let k_term = match sporadic_k(c1, d1, d2) {
        Some(k) if blocks > 0 => k * blocks,
        _ => Dur::ZERO,
    };
    k_term.max(c1) * (s as i128 - 1)
}

/// Sporadic message passing, upper bound (Theorem 6.1, final form):
/// `min((⌊u/c1⌋ + 3) · γ + u, d2 + γ) · (s − 1) + γ`, where `γ` is the
/// largest step time observed in the computation.
pub fn sporadic_mp_upper(s: u64, c1: Dur, d1: Dur, d2: Dur, gamma: Dur) -> Dur {
    let u = d2 - d1;
    let waiting = gamma * (u.div_floor(c1) + 3) + u;
    let direct = d2 + gamma;
    waiting.min(direct) * (s as i128 - 1) + gamma
}

/// Asynchronous shared memory, lower bound in rounds (\[2\]):
/// `(s − 1) · ⌊log_b n⌋`.
pub fn async_sm_lower_rounds(spec: &SessionSpec) -> u64 {
    (spec.s() - 1) * spec.log_b_n_floor() as u64
}

/// Asynchronous shared memory, upper bound in rounds (\[2\]):
/// `(s − 1) · O(log_b n)`, instantiated by the concrete tree flood bound.
pub fn async_sm_upper_rounds(s: u64, comm_rounds: u64) -> u64 {
    (s - 1) * comm_rounds
}

/// Asynchronous message passing, lower bound (\[4\], converted):
/// `(s − 1) · d2`.
pub fn async_mp_lower(s: u64, d2: Dur) -> Dur {
    d2 * (s as i128 - 1)
}

/// Asynchronous message passing, upper bound (\[4\], converted):
/// `(s − 1) · (d2 + c2) + c2`.
pub fn async_mp_upper(s: u64, c2: Dur, d2: Dur) -> Dur {
    (d2 + c2) * (s as i128 - 1) + c2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: i128) -> Dur {
        Dur::from_int(x)
    }

    fn spec(s: u64, n: usize, b: usize) -> SessionSpec {
        SessionSpec::new(s, n, b).unwrap()
    }

    #[test]
    fn sync_is_linear_in_s() {
        assert_eq!(sync_time(5, d(3)), d(15));
        assert_eq!(sync_time(1, d(3)), d(3));
    }

    #[test]
    fn periodic_sm_lower_takes_the_max() {
        // s*c_max dominates: s=10, c_max=5 => 50 vs log term.
        let sp = spec(10, 8, 2);
        assert_eq!(periodic_sm_lower(&sp, d(1), d(5)), d(50));
        // contamination dominates: s=1, c_min large.
        // b=2 => base 3, n=8 => 2n-1=15 => floor(log3 15) = 2.
        let sp = spec(1, 8, 2);
        assert_eq!(periodic_sm_lower(&sp, d(100), d(1)), d(200));
    }

    #[test]
    fn periodic_bounds_bracket() {
        let sp = spec(4, 8, 2);
        let lower = periodic_sm_lower(&sp, d(2), d(3));
        let upper = periodic_sm_upper(&sp, d(3), 12);
        assert!(lower <= upper);
        assert!(periodic_mp_lower(4, d(3), d(7)) <= periodic_mp_upper(4, d(3), d(7)));
        assert_eq!(periodic_mp_lower(4, d(3), d(20)), d(20)); // d2 dominates
        assert_eq!(periodic_mp_upper(4, d(3), d(7)), d(19));
    }

    #[test]
    fn semisync_min_switches_between_strategies() {
        // Step counting cheap: c2/c1 small.
        // floor(8 / (2*4)) = 1 < floor(log2 256) = 8.
        let sp = spec(3, 256, 2);
        assert_eq!(semisync_sm_lower(&sp, d(4), d(8)), d(16)); // 8 * min-term 1 * (s-1)=2
                                                               // Communication cheap: c2/c1 huge.
                                                               // floor(1000/2) = 500 > 8 => min is 8.
        assert_eq!(semisync_sm_lower(&sp, d(1), d(1000)), d(1000 * 8 * 2));

        // MP: d2 + c2 vs (floor(c2/c1)+1)*c2.
        assert_eq!(semisync_mp_lower(3, d(1), d(4), d(100)), d(8 * 2)); // floor(4/2)*4 = 8
        assert_eq!(semisync_mp_upper(3, d(1), d(4), d(2)), d(6 * 2 + 4)); // d2+c2=6 wins
    }

    #[test]
    fn semisync_bounds_bracket() {
        let sp = spec(5, 16, 2);
        let comm = 16; // generous concrete flood bound
        assert!(semisync_sm_lower(&sp, d(1), d(6)) <= semisync_sm_upper(5, d(1), d(6), comm));
        assert!(semisync_mp_lower(5, d(1), d(6), d(9)) <= semisync_mp_upper(5, d(1), d(6), d(9)));
    }

    #[test]
    fn sporadic_k_matches_derivation() {
        // u = d2 (d1 = 0): K = 2*c1*d2/(d2/2) = 4*c1.
        assert_eq!(sporadic_k(d(3), d(0), d(100)), Some(d(12)));
        // d1 = d2 (u = 0): K = 2*c1*d2/d2 = 2*c1.
        assert_eq!(sporadic_k(d(3), d(10), d(10)), Some(d(6)));
        assert_eq!(sporadic_k(d(3), d(0), d(0)), None);
    }

    #[test]
    fn sporadic_lower_interpolates_between_sync_and_async() {
        let c1 = d(1);
        let s = 2; // (s-1) = 1: per-session cost directly
                   // d1 -> d2: per-session cost collapses to c1 (synchronous-like).
        assert_eq!(sporadic_mp_lower(s, c1, d(10), d(10)), c1);
        // d1 -> 0: per-session cost ~ d2 (asynchronous-like).
        // u = 16, floor(16/4) = 4, K = 2*16/(16-8) = 4 => 4*4 = 16 = d2.
        assert_eq!(sporadic_mp_lower(s, c1, d(0), d(16)), d(16));
    }

    #[test]
    fn sporadic_upper_interpolates() {
        let gamma = d(2);
        // d1 = d2 = 10: min(3*gamma + 0, d2+gamma) = min(6, 12) = 6.
        assert_eq!(sporadic_mp_upper(2, d(1), d(10), d(10), gamma), d(6 + 2));
        // d1 = 0, d2 = 100: direct term d2 + gamma wins.
        assert_eq!(sporadic_mp_upper(2, d(1), d(0), d(100), gamma), d(102 + 2));
    }

    #[test]
    fn sporadic_bounds_bracket() {
        for (d1, d2) in [(0, 16), (4, 16), (8, 16), (16, 16)] {
            let lower = sporadic_mp_lower(3, d(1), d(d1), d(d2));
            // gamma >= c1 always; use a modest gamma.
            let upper = sporadic_mp_upper(3, d(1), d(d1), d(d2), d(2));
            assert!(lower <= upper, "d1={d1}, d2={d2}: {lower} > {upper}");
        }
    }

    #[test]
    fn async_bounds() {
        let sp = spec(4, 8, 2);
        assert_eq!(async_sm_lower_rounds(&sp), 3 * 3); // floor(log2 8) = 3
        assert_eq!(async_sm_upper_rounds(4, 12), 36);
        assert_eq!(async_mp_lower(4, d(7)), d(21));
        assert_eq!(async_mp_upper(4, d(2), d(7)), d(27 + 2));
        assert!(async_mp_lower(4, d(7)) <= async_mp_upper(4, d(2), d(7)));
    }

    #[test]
    fn s_equals_one_needs_no_communication() {
        assert_eq!(semisync_sm_lower(&spec(1, 8, 2), d(1), d(2)), Dur::ZERO);
        assert_eq!(async_mp_lower(1, d(9)), Dur::ZERO);
        assert_eq!(sporadic_mp_lower(1, d(1), d(0), d(8)), Dur::ZERO);
    }
}
