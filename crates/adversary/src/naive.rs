//! Witness algorithms that run *faster* than the lower bounds allow — and
//! the adversarial schedules that consequently defeat them.
//!
//! Each witness is a plausible-looking algorithm whose running time beats an
//! `L` row of Table 1. The paper's theorems say such algorithms cannot be
//! correct; the functions in this module exhibit the incorrectness as an
//! actual admissible computation with fewer than `s` sessions, verified by
//! the independent session counter. Each experiment also runs the paper's
//! *correct* algorithm under the same adversary and confirms it still
//! produces `s` sessions.

use session_core::algorithms::{SporadicMpPort, StepCountingSmPort};
use session_core::system::{build_mp_system, build_sm_system, port_of};
use session_core::verify::{check_admissible, count_sessions};
use session_mpm::{Envelope, MpEngine, MpProcess};
use session_sim::{FixedPeriods, RunLimits, SlowProcess};
use session_smm::{JoinSemiLattice, Knowledge, PortBinding, SmEngine, SmProcess, TreeSpec};
use session_types::{Dur, Error, KnownBounds, PortId, ProcessId, Result, SessionSpec, Time, VarId};

use crate::retime::block_constant;

/// A shared-memory port process that takes `s` port steps and idles without
/// any communication — correct in the synchronous model, a lower-bound
/// witness everywhere else.
#[derive(Clone, Debug)]
pub struct NaiveSmPort {
    port_var: VarId,
    steps_to_take: u64,
    steps: u64,
}

impl NaiveSmPort {
    /// Creates the witness taking `steps_to_take` port steps.
    pub fn new(port_var: VarId, steps_to_take: u64) -> NaiveSmPort {
        NaiveSmPort {
            port_var,
            steps_to_take,
            steps: 0,
        }
    }
}

impl SmProcess<Knowledge> for NaiveSmPort {
    fn target(&self) -> VarId {
        self.port_var
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        if self.steps < self.steps_to_take {
            self.steps += 1;
        }
        let mut unchanged = Knowledge::bottom();
        unchanged.join(value);
        unchanged
    }

    fn is_idle(&self) -> bool {
        self.steps >= self.steps_to_take
    }
}

/// The message-passing twin of [`NaiveSmPort`].
#[derive(Clone, Debug)]
pub struct NaiveMpPort {
    steps_to_take: u64,
    steps: u64,
}

impl NaiveMpPort {
    /// Creates the witness taking `steps_to_take` steps.
    pub fn new(steps_to_take: u64) -> NaiveMpPort {
        NaiveMpPort {
            steps_to_take,
            steps: 0,
        }
    }
}

impl MpProcess<session_core::SessionMsg> for NaiveMpPort {
    fn step(
        &mut self,
        _inbox: Vec<Envelope<session_core::SessionMsg>>,
    ) -> Option<session_core::SessionMsg> {
        if self.steps < self.steps_to_take {
            self.steps += 1;
        }
        None
    }

    fn is_idle(&self) -> bool {
        self.steps >= self.steps_to_take
    }
}

/// The `NaivePeriodicSm` analyzer witness: a port process that takes `s`
/// silent steps in the periodic model and idles without ever hearing from
/// anyone. A slower port process defeats it (Theorem 4.3); the analyzer
/// flags the resulting session deficit as `SA001`.
pub fn naive_periodic_sm_port(port_var: VarId, s: u64) -> NaiveSmPort {
    NaiveSmPort::new(port_var, s)
}

/// The `NaiveSemiSyncSm` analyzer witness: a step-counting port process
/// whose block constant is computed as if steps were at least `2·c1` apart
/// — i.e. `⌊c2/2c1⌋ + 1` instead of the honest `⌊c2/c1⌋ + 1`. Run under
/// the true `[c1, c2]` bounds it certifies sessions its own steps have not
/// actually spanned (the step-counting arm of Theorem 5.1); the analyzer
/// flags the deficit as `SA001`.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if `c1 <= 0` or `2·c1 > c2`.
pub fn naive_semisync_sm_port(
    port_var: VarId,
    s: u64,
    c1: Dur,
    c2: Dur,
) -> Result<StepCountingSmPort> {
    StepCountingSmPort::new(port_var, s, c1 * 2, c2)
}

/// The `NaiveSporadicMp` analyzer witness: `A(sp)` with its waiting
/// constant overridden to `B = 0`, so condition 2 trusts "freshness"
/// evidence without waiting out the delay uncertainty `u = d2 − d1`. An
/// adversarial delay assignment makes it certify sessions that never
/// happened; the analyzer flags the phantom certification as `SA003`.
pub fn naive_sporadic_mp_port(id: ProcessId, s: u64, n: usize) -> SporadicMpPort {
    SporadicMpPort::with_wait_override(id, s, n, 0)
}

/// The outcome of one lower-bound experiment: the same adversary applied to
/// the naive witness and to the paper's correct algorithm.
#[derive(Clone, Debug)]
pub struct LowerBoundDemo {
    /// Sessions the naive witness produced (expected `< s`).
    pub naive_sessions: u64,
    /// When the naive witness finished (it finishes fast — that is its sin).
    pub naive_running_time: Option<Time>,
    /// Sessions the correct algorithm produced under the same adversary
    /// (expected `>= s`).
    pub correct_sessions: u64,
    /// When the correct algorithm finished.
    pub correct_running_time: Option<Time>,
    /// The required number of sessions.
    pub s: u64,
}

impl LowerBoundDemo {
    /// Returns `true` if the experiment demonstrates the lower bound: the
    /// witness under-delivers and the correct algorithm does not.
    pub fn demonstrates_bound(&self) -> bool {
        self.naive_sessions < self.s && self.correct_sessions >= self.s
    }
}

/// Assembles the shared-memory system in which every port process is a
/// [`NaiveSmPort`] taking `steps_to_take` steps, over the usual tree
/// network — the standard system the adversaries attack.
pub fn naive_sm_system(spec: &SessionSpec, steps_to_take: u64) -> Result<SmEngine<Knowledge>> {
    let tree = TreeSpec::build(spec.n(), spec.b());
    let mut processes: Vec<Box<dyn SmProcess<Knowledge>>> = Vec::new();
    for i in 0..spec.n() {
        processes.push(Box::new(NaiveSmPort::new(tree.leaf_var(i), steps_to_take)));
    }
    for relay in tree.relay_processes() {
        processes.push(Box::new(relay));
    }
    let bindings = (0..spec.n())
        .map(|i| PortBinding {
            port: PortId::new(i),
            var: VarId::new(i),
            process: ProcessId::new(i),
        })
        .collect();
    SmEngine::new(
        vec![Knowledge::new(); tree.num_nodes()],
        processes,
        spec.b(),
        bindings,
    )
}

/// **Theorem 4.3 / 4.2, executed**: in the periodic model a single port
/// process may be arbitrarily slower than the rest. The naive witness (take
/// `s` steps, idle, never communicate) idles before the slowed process has
/// taken a single step, so fewer than `s` sessions exist; the paper's
/// `A(p)` waits to hear from everyone and survives.
///
/// `slow_factor` is how many times slower the slowed port process runs.
///
/// # Errors
///
/// Propagates engine errors; fails if either run exhausts `limits`.
pub fn periodic_sm_demo(
    spec: &SessionSpec,
    slow_factor: i128,
    limits: RunLimits,
) -> Result<LowerBoundDemo> {
    let slow = ProcessId::new(spec.n() - 1);
    let base = Dur::from_int(1);
    let slow_period = Dur::from_int(slow_factor.max(2));
    let bounds = KnownBounds::periodic(Dur::from_int(1))?;

    // The naive witness under the slowed schedule.
    let mut naive_engine = naive_sm_system(spec, spec.s())?;
    let mut sched = SlowProcess::new(base, slow, slow_period)?;
    let naive_outcome = naive_engine.run(&mut sched, limits)?;
    check_admissible(&naive_outcome.trace, &bounds)?;
    let naive_sessions = count_sessions(&naive_outcome.trace, spec.n(), |_| None);

    // The correct A(p) under the same adversary.
    let mut correct_engine = build_sm_system(spec, &bounds)?;
    let mut sched = SlowProcess::new(base, slow, slow_period)?;
    let correct_outcome = correct_engine.run(&mut sched, limits)?;
    check_admissible(&correct_outcome.trace, &bounds)?;
    let correct_sessions = count_sessions(&correct_outcome.trace, spec.n(), |_| None);

    let ports = (0..spec.n()).map(ProcessId::new).collect::<Vec<_>>();
    Ok(LowerBoundDemo {
        naive_sessions,
        naive_running_time: naive_outcome.trace.all_idle_time(ports.iter().copied()),
        correct_sessions,
        correct_running_time: correct_outcome.trace.all_idle_time(ports),
        s: spec.s(),
    })
}

/// **Theorem 4.2, executed (message passing)**: same slowed-process
/// adversary, message-passing substrate. The naive witness idles after `s`
/// fast steps; `A(p)` waits for everyone's announcement.
///
/// # Errors
///
/// Propagates engine errors.
pub fn periodic_mp_demo(
    spec: &SessionSpec,
    slow_factor: i128,
    d2: Dur,
    limits: RunLimits,
) -> Result<LowerBoundDemo> {
    let slow = ProcessId::new(spec.n() - 1);
    let base = Dur::from_int(1);
    let slow_period = Dur::from_int(slow_factor.max(2));
    let bounds = KnownBounds::periodic(d2)?;

    let mut delays = session_sim::ConstantDelay::new(d2)?;
    let processes: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..spec.n())
        .map(|_| Box::new(NaiveMpPort::new(spec.s())) as Box<_>)
        .collect();
    let ports = (0..spec.n())
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();
    let mut naive_engine = MpEngine::new(processes, ports)?;
    let mut sched = SlowProcess::new(base, slow, slow_period)?;
    let naive_outcome = naive_engine.run(&mut sched, &mut delays, limits)?;
    check_admissible(&naive_outcome.trace, &bounds)?;
    let naive_sessions = count_sessions(&naive_outcome.trace, spec.n(), port_of(spec));

    let mut correct_engine = build_mp_system(spec, &bounds)?;
    let mut sched = SlowProcess::new(base, slow, slow_period)?;
    let mut delays = session_sim::ConstantDelay::new(d2)?;
    let correct_outcome = correct_engine.run(&mut sched, &mut delays, limits)?;
    check_admissible(&correct_outcome.trace, &bounds)?;
    let correct_sessions = count_sessions(&correct_outcome.trace, spec.n(), port_of(spec));

    let port_ids = (0..spec.n()).map(ProcessId::new).collect::<Vec<_>>();
    Ok(LowerBoundDemo {
        naive_sessions,
        naive_running_time: naive_outcome.trace.all_idle_time(port_ids.iter().copied()),
        correct_sessions,
        correct_running_time: correct_outcome.trace.all_idle_time(port_ids),
        s: spec.s(),
    })
}

/// **Theorem 5.1's quantitative content, executed with a simple schedule**:
/// a semi-synchronous step-counting algorithm that certifies a session
/// after only `cheat_block <= ⌊c2/2c1⌋` own steps finishes too fast. Run
/// the cheater at `c1` while everyone else runs at `c2`: its
/// `(s−1)·cheat_block + 1` steps span less than `(s−1)·c2`, so the slow
/// processes cannot have closed `s` sessions. The honest step counter
/// (block `⌊c2/c1⌋ + 1`) survives the same schedule.
///
/// (The full reorder-and-retime machinery of Theorem 5.1 lives in
/// [`crate::retime`]; this demo isolates the *step-counting* arm of the
/// bound with a directly admissible schedule.)
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if `c2 < 4·c1` (the cheat needs a
/// nontrivial `⌊c2/2c1⌋`), and propagates engine errors.
pub fn semisync_sm_step_counting_demo(
    spec: &SessionSpec,
    c1: Dur,
    c2: Dur,
    limits: RunLimits,
) -> Result<LowerBoundDemo> {
    let half_block = c2.div_floor(c1 * 2);
    if half_block < 1 {
        return Err(Error::invalid_params("cheating demo requires c2 >= 2*c1"));
    }
    let cheat_block = half_block as u64;
    let honest_block = c2.div_floor(c1) as u64 + 1;
    let bounds = KnownBounds::semi_synchronous(c1, c2, Dur::from_int(1))?;

    // Everyone cheats: (s-1)*cheat_block + 1 steps each. The adversary runs
    // port process 0 at c1 and everyone else at c2; process 0 idles long
    // before the others have taken enough steps.
    let cheat_steps = (spec.s() - 1) * cheat_block + 1;
    let mut naive_engine = naive_sm_system(spec, cheat_steps)?;
    let mut sched = fast_one_schedule(naive_engine.num_processes(), c1, c2);
    let naive_outcome = naive_engine.run(&mut sched, limits)?;
    check_admissible(&naive_outcome.trace, &bounds)?;
    let naive_sessions = count_sessions(&naive_outcome.trace, spec.n(), |_| None);

    // The honest block size under the same schedule.
    let honest_steps = (spec.s() - 1) * honest_block + 1;
    let mut honest_engine = naive_sm_system(spec, honest_steps)?;
    let mut sched = fast_one_schedule(honest_engine.num_processes(), c1, c2);
    let honest_outcome = honest_engine.run(&mut sched, limits)?;
    check_admissible(&honest_outcome.trace, &bounds)?;
    let correct_sessions = count_sessions(&honest_outcome.trace, spec.n(), |_| None);

    let ports = (0..spec.n()).map(ProcessId::new).collect::<Vec<_>>();
    Ok(LowerBoundDemo {
        naive_sessions,
        naive_running_time: naive_outcome.trace.all_idle_time(ports.iter().copied()),
        correct_sessions,
        correct_running_time: honest_outcome.trace.all_idle_time(ports),
        s: spec.s(),
    })
}

/// Process 0 steps at `c1`; everyone else at `c2`.
fn fast_one_schedule(num_processes: usize, c1: Dur, c2: Dur) -> FixedPeriods {
    let mut periods = vec![c2; num_processes];
    periods[0] = c1;
    FixedPeriods::new(periods).expect("positive periods")
}

/// **The sporadic model's unbounded step time, executed**: there is no
/// upper bound on the gap between a process's steps, so a silent algorithm
/// that idles after a fixed number of steps is defeated by simply pausing
/// one process: the fast processes idle long before the paused process
/// resumes, and no further sessions can form. The honest `A(sp)` under the
/// very same schedule and delays keeps broadcasting and waiting for
/// evidence, and survives. (The quantitative per-session cost
/// `⌊u/4c1⌋ · K` of Theorem 6.5 is regenerated by the rescale-and-retime
/// machinery in [`crate::rescale`].)
///
/// Fixed scenario: `n = 2`, `s = 3`, `c1 = 1`, `d1 = 0`, delays 1.
///
/// # Errors
///
/// Propagates engine errors.
pub fn sporadic_mp_demo(d2: Dur, limits: RunLimits) -> Result<LowerBoundDemo> {
    let spec = SessionSpec::new(3, 2, 2)?;
    let c1 = Dur::from_int(1);
    let d1 = Dur::ZERO;
    let bounds = KnownBounds::sporadic(c1, d1, d2)?;
    let pause = Dur::from_int(1_000);
    let delay = Dur::from_int(1).min(d2);

    let make_schedule = || SlowProcess::new(c1, ProcessId::new(1), pause);
    let ports: Vec<(ProcessId, PortId)> = (0..2)
        .map(|i| (ProcessId::new(i), PortId::new(i)))
        .collect();

    // The witness: s silent steps, then idle.
    let naive: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..2)
        .map(|_| Box::new(NaiveMpPort::new(3)) as Box<_>)
        .collect();
    let mut naive_engine = MpEngine::new(naive, ports.clone())?;
    let mut sched = make_schedule()?;
    let mut delays = session_sim::ConstantDelay::new(delay)?;
    let naive_outcome = naive_engine.run(&mut sched, &mut delays, limits)?;
    check_admissible(&naive_outcome.trace, &bounds)?;
    let naive_sessions = count_sessions(&naive_outcome.trace, 2, port_of(&spec));

    // The honest A(sp) under the same adversary.
    let honest: Vec<Box<dyn MpProcess<session_core::SessionMsg>>> = (0..2)
        .map(|i| {
            Box::new(SporadicMpPort::new(ProcessId::new(i), 3, 2, c1, d1, d2).expect("valid"))
                as Box<_>
        })
        .collect();
    let mut honest_engine = MpEngine::new(honest, ports)?;
    let mut sched = make_schedule()?;
    let mut delays = session_sim::ConstantDelay::new(delay)?;
    let honest_outcome = honest_engine.run(&mut sched, &mut delays, limits)?;
    check_admissible(&honest_outcome.trace, &bounds)?;
    let correct_sessions = count_sessions(&honest_outcome.trace, 2, port_of(&spec));

    let port_ids = [ProcessId::new(0), ProcessId::new(1)];
    Ok(LowerBoundDemo {
        naive_sessions,
        naive_running_time: naive_outcome.trace.all_idle_time(port_ids),
        correct_sessions,
        correct_running_time: honest_outcome.trace.all_idle_time(port_ids),
        s: 3,
    })
}

/// The block constant `B = min(⌊c2/2c1⌋, ⌊log_b n⌋)` of Theorem 5.1,
/// re-exported for reporting.
pub fn semisync_block_constant(spec: &SessionSpec, c1: Dur, c2: Dur) -> u64 {
    block_constant(spec, c1, c2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_sm_port_behaves() {
        let mut p = NaiveSmPort::new(VarId::new(0), 2);
        assert!(!p.is_idle());
        let _ = p.step(&Knowledge::new());
        let _ = p.step(&Knowledge::new());
        assert!(p.is_idle());
    }

    #[test]
    fn naive_mp_port_behaves() {
        let mut p = NaiveMpPort::new(1);
        assert_eq!(p.step(vec![]), None);
        assert!(p.is_idle());
    }

    #[test]
    fn periodic_sm_lower_bound_demonstrated() {
        let spec = SessionSpec::new(3, 4, 2).unwrap();
        let demo = periodic_sm_demo(&spec, 100, RunLimits::default()).unwrap();
        assert!(
            demo.demonstrates_bound(),
            "naive {} vs correct {} (s = {})",
            demo.naive_sessions,
            demo.correct_sessions,
            demo.s
        );
        // The witness finished no later than the correct algorithm — its
        // speed is exactly its sin.
        assert!(demo.naive_running_time.unwrap() <= demo.correct_running_time.unwrap());
    }

    #[test]
    fn periodic_mp_lower_bound_demonstrated() {
        let spec = SessionSpec::new(3, 3, 2).unwrap();
        let demo = periodic_mp_demo(&spec, 100, Dur::from_int(5), RunLimits::default()).unwrap();
        assert!(
            demo.demonstrates_bound(),
            "naive {} vs correct {}",
            demo.naive_sessions,
            demo.correct_sessions
        );
    }

    #[test]
    fn semisync_step_counting_lower_bound_demonstrated() {
        let spec = SessionSpec::new(4, 3, 2).unwrap();
        let demo = semisync_sm_step_counting_demo(
            &spec,
            Dur::from_int(1),
            Dur::from_int(8),
            RunLimits::default(),
        )
        .unwrap();
        assert!(
            demo.demonstrates_bound(),
            "naive {} vs correct {}",
            demo.naive_sessions,
            demo.correct_sessions
        );
    }

    #[test]
    fn semisync_demo_rejects_degenerate_parameters() {
        let spec = SessionSpec::new(2, 2, 2).unwrap();
        assert!(semisync_sm_step_counting_demo(
            &spec,
            Dur::from_int(3),
            Dur::from_int(4),
            RunLimits::default(),
        )
        .is_err());
    }

    #[test]
    fn sporadic_lower_bound_demonstrated() {
        let demo = sporadic_mp_demo(Dur::from_int(64), RunLimits::default()).unwrap();
        assert!(
            demo.demonstrates_bound(),
            "naive {} vs correct {} (s = {})",
            demo.naive_sessions,
            demo.correct_sessions,
            demo.s
        );
    }
}
