//! Ablation bench (DESIGN.md §6.2): the tree broadcast network's flood cost
//! across the fan-in bound `b` and the leaf count `n`. The paper's
//! `O(log_b n)` communication term is realized with arity `max(2, b − 1)`;
//! this bench tracks how the choice plays out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use session_core::report::{run_sm, SmConfig};
use session_sim::{FixedPeriods, RunLimits};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, SessionSpec, TimingModel};
use std::time::Duration;

/// One full asynchronous run (every session is a flood): the heaviest
/// consumer of the tree network.
fn flood_run(n: usize, b: usize) {
    let spec = SessionSpec::new(3, n, b).unwrap();
    let tree = TreeSpec::build(n, b);
    let mut sched = FixedPeriods::uniform(n + tree.num_relays(), Dur::from_int(1)).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::Asynchronous,
            spec,
            bounds: KnownBounds::asynchronous(),
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec));
}

fn bench_flood_by_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/flood-by-b");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for b in [2usize, 3, 5, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            bench.iter(|| flood_run(32, b));
        });
    }
    group.finish();
}

fn bench_flood_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/flood-by-n");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [4usize, 16, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| flood_run(n, 2));
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/build");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for n in [16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| TreeSpec::build(n, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flood_by_b, bench_flood_by_n, bench_build);
criterion_main!(benches);
