//! Counting rounds in a trace.
//!
//! A *round* is a minimal-length computation fragment in which every process
//! takes at least one step (§2.3). Rounds are the running-time measure for
//! the models without real-time step bounds (asynchronous, and sporadic
//! shared memory). Like sessions, the maximal disjoint decomposition is
//! computed greedily, which is optimal for minimal-fragment decompositions.

use std::collections::BTreeSet;

use session_sim::Trace;
use session_types::ProcessId;

/// The maximum number of disjoint rounds in the trace, over the processes
/// `p0 .. p(num_processes - 1)`.
///
/// Unlike session counting, *all* process steps count — an idle process
/// keeps taking steps in the formal model, and those steps still complete
/// rounds. Network deliveries are not process steps.
///
/// # Examples
///
/// ```
/// use session_core::verify::count_rounds;
/// use session_sim::{StepKind, Trace, TraceEvent};
/// use session_types::{ProcessId, Time, VarId};
///
/// let mut trace = Trace::new(2);
/// for (t, p) in [(1, 0), (1, 1), (2, 0), (3, 0), (3, 1)] {
///     trace.push(TraceEvent {
///         time: Time::from_int(t),
///         process: ProcessId::new(p),
///         kind: StepKind::VarAccess { var: VarId::new(0), port: None },
///         idle_after: false,
///     });
/// }
/// // {p0 p1} {p0 p0 p1}: 2 rounds.
/// assert_eq!(count_rounds(&trace, 2), 2);
/// ```
pub fn count_rounds(trace: &Trace, num_processes: usize) -> u64 {
    if num_processes == 0 {
        return 0;
    }
    let mut rounds = 0;
    let mut covered: BTreeSet<ProcessId> = BTreeSet::new();
    for event in trace.events() {
        if !event.kind.is_process_step() {
            continue;
        }
        if event.process.index() < num_processes {
            covered.insert(event.process);
            if covered.len() >= num_processes {
                rounds += 1;
                covered.clear();
            }
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::{StepKind, TraceEvent};
    use session_types::{Time, VarId};

    fn trace_of(num: usize, procs: &[usize]) -> Trace {
        let mut trace = Trace::new(num);
        for (i, &p) in procs.iter().enumerate() {
            trace.push(TraceEvent {
                time: Time::from_int(i as i128 + 1),
                process: ProcessId::new(p),
                kind: StepKind::VarAccess {
                    var: VarId::new(0),
                    port: None,
                },
                idle_after: false,
            });
        }
        trace
    }

    #[test]
    fn round_robin_gives_one_round_per_pass() {
        let trace = trace_of(3, &[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(count_rounds(&trace, 3), 3);
    }

    #[test]
    fn skewed_interleavings_count_minimal_fragments() {
        // p0 p0 p0 p1 | p1 p0 -> 2 rounds over 2 processes.
        let trace = trace_of(2, &[0, 0, 0, 1, 1, 0]);
        assert_eq!(count_rounds(&trace, 2), 2);
    }

    #[test]
    fn missing_process_means_zero_rounds() {
        let trace = trace_of(3, &[0, 1, 0, 1, 0, 1]);
        assert_eq!(count_rounds(&trace, 3), 0);
    }

    #[test]
    fn zero_processes_is_zero_rounds() {
        let trace = trace_of(1, &[0]);
        assert_eq!(count_rounds(&trace, 0), 0);
    }

    #[test]
    fn deliveries_are_not_steps() {
        let mut trace = Trace::new(1);
        let msg = trace.record_send(ProcessId::new(0), ProcessId::new(0), Time::ZERO);
        trace.push(TraceEvent {
            time: Time::from_int(1),
            process: ProcessId::new(0),
            kind: StepKind::Deliver { msg },
            idle_after: false,
        });
        assert_eq!(count_rounds(&trace, 1), 0);
    }

    #[test]
    fn processes_outside_range_are_ignored() {
        // Process 5 steps but only processes 0..2 are counted.
        let trace = trace_of(6, &[0, 5, 1]);
        assert_eq!(count_rounds(&trace, 2), 1);
    }
}
