//! Property tests for the dependency-free JSON layer (`session_obs::json`).
//!
//! Every exporter and telemetry report in the workspace goes through this
//! module, so its two safety properties are checked exhaustively here:
//! string escaping must produce valid JSON for *any* input (including
//! control characters, quotes and backslashes), and non-finite floats must
//! never leak into the output (JSON has no NaN/Infinity — they are
//! rejected by substitution with `null`).

use proptest::collection::vec;
use proptest::prelude::*;
use session_obs::json::{self, JsonWriter};

/// Arbitrary strings biased toward JSON's danger zone: control characters,
/// quotes, backslashes, plus ordinary ASCII and some multi-byte chars.
fn wild_string() -> impl Strategy<Value = String> {
    vec(0u32..0x07FF, 0..=48)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

/// Finite doubles from raw bit patterns (covers subnormals, huge
/// magnitudes, negative zero).
fn finite_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX)
        .prop_map(f64::from_bits)
        .prop_filter("finite", |f| f.is_finite())
}

/// Undoes [`json::escape`]: parses the body of a JSON string literal.
fn unescape(escaped: &str) -> String {
    let mut out = String::new();
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).expect("4 hex digits");
                out.push(char::from_u32(code).expect("valid scalar"));
            }
            other => panic!("unknown escape \\{other:?}"),
        }
    }
    out
}

proptest! {
    #[test]
    fn escaped_strings_are_valid_json(s in wild_string()) {
        let literal = format!("\"{}\"", json::escape(&s));
        prop_assert!(
            json::validate(&literal).is_ok(),
            "escape produced invalid JSON for {s:?}: {literal}"
        );
    }

    #[test]
    fn escaping_round_trips(s in wild_string()) {
        prop_assert_eq!(unescape(&json::escape(&s)), s);
    }

    #[test]
    fn escaped_output_has_no_raw_control_chars(s in wild_string()) {
        let escaped = json::escape(&s);
        prop_assert!(
            escaped.chars().all(|c| (c as u32) >= 0x20),
            "raw control char survived escaping {s:?}: {escaped:?}"
        );
    }

    #[test]
    fn finite_numbers_serialize_and_round_trip(f in finite_f64()) {
        let text = json::number(f);
        prop_assert!(json::validate(&text).is_ok(), "invalid number JSON: {text}");
        let back: f64 = text.parse().expect("numeric text");
        prop_assert!(back == f || (back == 0.0 && f == 0.0), "{f} → {text} → {back}");
    }

    #[test]
    fn non_finite_numbers_become_null(mantissa in 0u64..(1u64 << 52), sign in 0u64..2) {
        // Exponent all-ones: NaN for any nonzero mantissa, ±inf for zero.
        let bits = (sign << 63) | (0x7FFu64 << 52) | mantissa;
        let f = f64::from_bits(bits);
        prop_assert!(!f.is_finite());
        prop_assert_eq!(json::number(f), "null");
    }

    #[test]
    fn writer_documents_survive_wild_keys_and_values(
        pairs in vec((wild_string(), wild_string()), 0..=12),
        num in finite_f64(),
    ) {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (i, (_key, value)) in pairs.iter().enumerate() {
            // Keys must be unique only for strict parsers; the validator
            // does not mind, but index them anyway for realism.
            w.key(&format!("k{i}"));
            w.value_str(value);
        }
        w.key("n");
        w.value_f64(num);
        w.end_object();
        let doc = w.finish();
        prop_assert!(json::validate(&doc).is_ok(), "invalid document: {doc}");
    }
}

#[test]
fn non_finite_specials_are_null() {
    assert_eq!(json::number(f64::NAN), "null");
    assert_eq!(json::number(f64::INFINITY), "null");
    assert_eq!(json::number(f64::NEG_INFINITY), "null");
}
