//! Differential testing of the admissibility checker: random timed traces
//! are judged both by `verify::check_admissible` and by an independent,
//! naively-written reference implementation; the verdicts must agree.
//! A second suite mutates genuinely admissible recorded computations and
//! asserts the checker notices every violation it should.

use proptest::prelude::*;
use session_core::report::{run_sm, SmConfig};
use session_core::verify::check_admissible;
use session_sim::{FixedPeriods, RunLimits, StepKind, Trace, TraceEvent};
use session_smm::TreeSpec;
use session_types::{Dur, KnownBounds, ProcessId, SessionSpec, Time, TimingModel, VarId};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

/// The reference judge, written as plainly as possible.
fn reference_admissible(trace: &Trace, bounds: &KnownBounds) -> bool {
    // Step gaps.
    let mut last: std::collections::BTreeMap<ProcessId, Time> = Default::default();
    let mut first_gap: std::collections::BTreeMap<ProcessId, Dur> = Default::default();
    for e in trace.events() {
        if !e.kind.is_process_step() {
            continue;
        }
        let prev = last.get(&e.process).copied().unwrap_or(Time::ZERO);
        let gap = e.time - prev;
        if let Some(c1) = bounds.c1() {
            if gap < c1 {
                return false;
            }
        }
        if let Some(c2) = bounds.c2() {
            if gap > c2 {
                return false;
            }
        }
        if bounds.model() == TimingModel::Periodic {
            if gap <= Dur::ZERO {
                return false;
            }
            match first_gap.get(&e.process) {
                None => {
                    first_gap.insert(e.process, gap);
                }
                Some(&period) => {
                    if period != gap {
                        return false;
                    }
                }
            }
        }
        last.insert(e.process, e.time);
    }
    // Delays.
    let end = trace.end_time().unwrap_or(Time::ZERO);
    for m in trace.messages() {
        match m.delay() {
            Some(delay) => {
                if let Some(d1) = bounds.d1() {
                    if delay < d1 {
                        return false;
                    }
                }
                if let Some(d2) = bounds.d2() {
                    if delay > d2 {
                        return false;
                    }
                }
            }
            None => {
                if let Some(d2) = bounds.d2() {
                    if end - m.sent_at > d2 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Random step-only traces: per process, a list of strictly increasing
/// times drawn from a coarse grid so that violations are common but not
/// universal.
fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    let per_process = proptest::collection::vec(1i128..=6, 0..8);
    proptest::collection::vec(per_process, 1..4).prop_map(|gaps_per_proc| {
        let mut events = Vec::new();
        for (p, gaps) in gaps_per_proc.iter().enumerate() {
            let mut t = Time::ZERO;
            for &g in gaps {
                t += Dur::from_int(g);
                events.push(TraceEvent {
                    time: t,
                    process: ProcessId::new(p),
                    kind: StepKind::VarAccess {
                        var: VarId::new(p),
                        port: None,
                    },
                    idle_after: false,
                });
            }
        }
        Trace::from_unsorted_events(gaps_per_proc.len(), events)
    })
}

fn arbitrary_bounds() -> impl Strategy<Value = KnownBounds> {
    prop_oneof![
        (1i128..=4, 0i128..=4)
            .prop_map(|(c2, dd)| { KnownBounds::synchronous(d(c2), d(dd)).unwrap() }),
        (0i128..=5).prop_map(|dd| KnownBounds::periodic(d(dd)).unwrap()),
        (1i128..=3, 0i128..=4, 0i128..=5).prop_map(|(c1, extra, dd)| {
            KnownBounds::semi_synchronous(d(c1), d(c1 + extra), d(dd)).unwrap()
        }),
        (1i128..=3, 0i128..=2, 0i128..=4)
            .prop_map(|(c1, d1, du)| { KnownBounds::sporadic(d(c1), d(d1), d(d1 + du)).unwrap() }),
        Just(KnownBounds::asynchronous()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The checker and the reference judge always agree.
    #[test]
    fn checker_matches_reference(trace in arbitrary_trace(), bounds in arbitrary_bounds()) {
        let checker = check_admissible(&trace, &bounds).is_ok();
        let reference = reference_admissible(&trace, &bounds);
        prop_assert_eq!(checker, reference, "bounds: {:?}", bounds);
    }
}

/// Records one genuinely admissible semi-synchronous computation.
fn recorded_admissible_trace(c1: Dur, c2: Dur) -> (Trace, KnownBounds) {
    let spec = SessionSpec::new(3, 4, 2).unwrap();
    let bounds = KnownBounds::semi_synchronous(c1, c2, d(5)).unwrap();
    let tree = TreeSpec::build(spec.n(), spec.b());
    let mut sched = FixedPeriods::uniform(spec.n() + tree.num_relays(), c2).unwrap();
    let report = run_sm(
        SmConfig {
            model: TimingModel::SemiSynchronous,
            spec,
            bounds,
        },
        &mut sched,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.terminated);
    check_admissible(&report.trace, &bounds).unwrap();
    (report.trace, bounds)
}

/// Rebuilds a trace with event `idx` moved to `new_time`.
fn with_moved_event(trace: &Trace, idx: usize, new_time: Time) -> Trace {
    let mut events: Vec<TraceEvent> = trace.events().to_vec();
    events[idx].time = new_time;
    Trace::from_unsorted_events(trace.num_processes(), events)
}

#[test]
fn mutations_that_shrink_a_gap_below_c1_are_caught() {
    let c1 = d(2);
    let c2 = d(4);
    let (trace, bounds) = recorded_admissible_trace(c1, c2);
    // Find some process's second step and pull it to within c1 of its
    // first: the checker must reject.
    let p0 = ProcessId::new(0);
    let steps: Vec<usize> = trace
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.process == p0 && e.kind.is_process_step())
        .map(|(i, _)| i)
        .collect();
    assert!(steps.len() >= 2);
    let first_time = trace.events()[steps[0]].time;
    let mutated = with_moved_event(&trace, steps[1], first_time + d(1)); // gap 1 < c1
    assert!(check_admissible(&mutated, &bounds).is_err());
}

#[test]
fn mutations_that_stretch_a_gap_beyond_c2_are_caught() {
    let c1 = d(2);
    let c2 = d(4);
    let (trace, bounds) = recorded_admissible_trace(c1, c2);
    // Push the last step of some process far into the future.
    let last_idx = trace.events().len() - 1;
    let far = trace.end_time().unwrap() + d(100);
    let mutated = with_moved_event(&trace, last_idx, far);
    assert!(check_admissible(&mutated, &bounds).is_err());
}

#[test]
fn every_single_event_shift_by_half_c2_is_caught_or_harmless() {
    // Exhaustive single-event mutations: shifting any one step by +c2
    // either keeps the trace admissible (never true here: it always breaks
    // the shifted process's next gap or its own) or is caught. What must
    // NEVER happen is a panic or a wrong "ok" verdict vs the reference.
    let c1 = d(2);
    let c2 = d(4);
    let (trace, bounds) = recorded_admissible_trace(c1, c2);
    for idx in 0..trace.events().len() {
        let t = trace.events()[idx].time;
        let mutated = with_moved_event(&trace, idx, t + c2);
        let verdict = check_admissible(&mutated, &bounds).is_ok();
        let reference = reference_admissible(&mutated, &bounds);
        assert_eq!(verdict, reference, "event {idx}");
    }
}

#[test]
fn periodic_checker_rejects_any_drift() {
    // An exactly periodic trace stays admissible; drifting any single
    // non-final step breaks the constant-gap requirement.
    let mut events = Vec::new();
    for k in 1..=6i128 {
        events.push(TraceEvent {
            time: Time::from_int(3 * k),
            process: ProcessId::new(0),
            kind: StepKind::VarAccess {
                var: VarId::new(0),
                port: None,
            },
            idle_after: false,
        });
    }
    let trace = Trace::from_unsorted_events(1, events.clone());
    let bounds = KnownBounds::periodic(d(5)).unwrap();
    assert!(check_admissible(&trace, &bounds).is_ok());
    for (idx, event) in events.iter().enumerate().take(events.len() - 1) {
        let mutated = with_moved_event(&trace, idx, event.time + d(1));
        assert!(
            check_admissible(&mutated, &bounds).is_err(),
            "drift at step {idx} must break periodicity"
        );
    }
    // Moving only the FINAL step changes that gap and the previous one...
    // there is no following gap, so it still breaks the preceding period.
    let last = events.len() - 1;
    let mutated = with_moved_event(&trace, last, events[last].time + d(1));
    assert!(check_admissible(&mutated, &bounds).is_err());
}
