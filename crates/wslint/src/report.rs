//! Findings, the stable WSxxx code table, and report rendering.
//!
//! Exit-code contract mirrors `session-cli analyze`: `0` clean, `1` at
//! least one finding, `2` usage/configuration error.

use std::fmt::Write as _;

/// The stable check codes. Codes never change meaning; new checks get
/// new codes (same contract as the analyzer's SAxxx registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WsCode {
    /// WS001 `wall-clock-discipline`: raw `Instant::now`/`SystemTime::now`
    /// outside the allowlisted timing modules (DESIGN.md §16 nominal-time
    /// recording).
    Ws001,
    /// WS002 `unbounded-channel`: `std::sync::mpsc::channel` in non-test
    /// code; egress must be bounded (`sync_channel`).
    Ws002,
    /// WS003 `lock-order-cycle`: a cycle in the acquired-before graph of
    /// `Mutex`/`RwLock` acquisitions — a potential deadlock.
    Ws003,
    /// WS004 `panic-path`: `unwrap`/`expect`/`panic!` in resident runtime
    /// code without a justifying `wslint: allow(ws004)` annotation.
    Ws004,
    /// WS005 `lint-registry`: a `LintCode` variant without a stable SAxxx
    /// mapping or without a paper-section (§) doc reference.
    Ws005,
    /// WS006 `registry-coverage`: an SAxxx code lacking a positive or
    /// negative test (`saXXX_positive_*` / `saXXX_negative_*`).
    Ws006,
    /// WS007 `metric-registry`: a `METRIC_NAMES` entry undocumented in
    /// DESIGN.md §15, or an emitted `serve.*` string not in
    /// `METRIC_NAMES`.
    Ws007,
}

/// Every registered code, in order.
pub const ALL_CODES: &[WsCode] = &[
    WsCode::Ws001,
    WsCode::Ws002,
    WsCode::Ws003,
    WsCode::Ws004,
    WsCode::Ws005,
    WsCode::Ws006,
    WsCode::Ws007,
];

impl WsCode {
    /// The stable `WSxxx` string.
    pub fn code(self) -> &'static str {
        match self {
            WsCode::Ws001 => "WS001",
            WsCode::Ws002 => "WS002",
            WsCode::Ws003 => "WS003",
            WsCode::Ws004 => "WS004",
            WsCode::Ws005 => "WS005",
            WsCode::Ws006 => "WS006",
            WsCode::Ws007 => "WS007",
        }
    }

    /// Lower-case form used in annotations (`ws004`).
    pub fn lower(self) -> &'static str {
        match self {
            WsCode::Ws001 => "ws001",
            WsCode::Ws002 => "ws002",
            WsCode::Ws003 => "ws003",
            WsCode::Ws004 => "ws004",
            WsCode::Ws005 => "ws005",
            WsCode::Ws006 => "ws006",
            WsCode::Ws007 => "ws007",
        }
    }

    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            WsCode::Ws001 => "wall-clock-discipline",
            WsCode::Ws002 => "unbounded-channel",
            WsCode::Ws003 => "lock-order-cycle",
            WsCode::Ws004 => "panic-path",
            WsCode::Ws005 => "lint-registry",
            WsCode::Ws006 => "registry-coverage",
            WsCode::Ws007 => "metric-registry",
        }
    }
}

/// One finding with its span.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which check fired.
    pub code: WsCode,
    /// Path relative to the lint root.
    pub file: String,
    /// 1-based line (0 for file-level registry findings with no precise
    /// span, rendered as line 1).
    pub line: u32,
    /// What went wrong and what the discipline demands instead.
    pub message: String,
}

/// Coverage counters proving the registry checks actually scanned
/// something — a silently-empty registry must look different from a
/// clean one.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// `.rs` files lexed.
    pub files_scanned: usize,
    /// `LintCode` variants checked by WS005.
    pub lint_variants: usize,
    /// SAxxx codes checked by WS006.
    pub registry_codes: usize,
    /// `METRIC_NAMES` entries checked by WS007.
    pub metric_names: usize,
    /// Emitted `serve.*` strings checked by WS007.
    pub serve_metrics_emitted: usize,
    /// Lock-acquisition edges in the WS003 graph.
    pub lock_edges: usize,
}

/// A whole run's outcome.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Findings, in (file, line, code) order.
    pub findings: Vec<Finding>,
    /// Scan-coverage counters.
    pub stats: Stats,
}

impl Report {
    /// Sorts findings into the stable report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    }

    /// The process exit code this report maps to.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.findings.is_empty())
    }

    /// Markdown rendering (the default stdout format).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# session-wslint report\n\n");
        if self.findings.is_empty() {
            out.push_str("No findings.\n");
        } else {
            out.push_str("| code | name | file:line | message |\n");
            out.push_str("|------|------|-----------|---------|\n");
            for f in &self.findings {
                let _ = writeln!(
                    out,
                    "| {} | {} | {}:{} | {} |",
                    f.code.code(),
                    f.code.name(),
                    f.file,
                    f.line.max(1),
                    f.message.replace('|', "\\|")
                );
            }
        }
        let s = &self.stats;
        let _ = writeln!(
            out,
            "\n{} findings · {} files · {} lint variants · {} registry codes · {} metric names · {} serve metrics · {} lock edges",
            self.findings.len(),
            s.files_scanned,
            s.lint_variants,
            s.registry_codes,
            s.metric_names,
            s.serve_metrics_emitted,
            s.lock_edges,
        );
        out
    }

    /// GitHub Actions annotation rendering (`::error file=…`).
    pub fn to_github(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "::error file={},line={},title={} {}::{}",
                f.file,
                f.line.max(1),
                f.code.code(),
                f.code.name(),
                f.message
            );
        }
        out
    }

    /// JSON rendering (`session-wslint/v1`). Hand-rolled writer — the
    /// crate is dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"session-wslint/v1\",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"code\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.code.code(),
                f.code.name(),
                escape_json(&f.file),
                f.line.max(1),
                escape_json(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        let s = &self.stats;
        let _ = write!(
            out,
            "],\n  \"stats\": {{\"files_scanned\": {}, \"lint_variants\": {}, \"registry_codes\": {}, \"metric_names\": {}, \"serve_metrics_emitted\": {}, \"lock_edges\": {}}}\n}}\n",
            s.files_scanned,
            s.lint_variants,
            s.registry_codes,
            s.metric_names,
            s.serve_metrics_emitted,
            s.lock_edges,
        );
        out
    }
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                code: WsCode::Ws002,
                file: "crates/serve/src/client.rs".into(),
                line: 39,
                message: "unbounded mpsc::channel".into(),
            }],
            stats: Stats::default(),
        }
    }

    #[test]
    fn exit_codes_mirror_analyze() {
        assert_eq!(Report::default().exit_code(), 0);
        assert_eq!(sample().exit_code(), 1);
    }

    #[test]
    fn markdown_has_code_and_span() {
        let md = sample().to_markdown();
        assert!(md.contains("WS002"), "{md}");
        assert!(md.contains("crates/serve/src/client.rs:39"), "{md}");
        assert!(Report::default().to_markdown().contains("No findings."));
    }

    #[test]
    fn github_annotations_are_one_per_finding() {
        let gh = sample().to_github();
        assert!(
            gh.starts_with("::error file=crates/serve/src/client.rs,line=39,"),
            "{gh}"
        );
    }

    #[test]
    fn json_escapes_and_carries_stats() {
        let mut rep = sample();
        rep.findings[0].message = "a \"quoted\"\nmessage".into();
        rep.stats.files_scanned = 7;
        let json = rep.to_json();
        assert!(json.contains("\\\"quoted\\\"\\n"), "{json}");
        assert!(json.contains("\"files_scanned\": 7"), "{json}");
        assert!(json.contains("session-wslint/v1"), "{json}");
    }
}
