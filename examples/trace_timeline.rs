//! Looking inside a computation: record a run, render its timeline, print
//! the full trace analysis, and export the same computation as a Perfetto
//! trace — the debugging workflow for timing-model experiments.
//!
//! ```text
//! cargo run --example trace_timeline
//! # then open trace_timeline.perfetto.json in https://ui.perfetto.dev
//! ```

use session_problem::core::analysis::analyze;
use session_problem::core::report::{run_mp, MpConfig};
use session_problem::core::system::port_of;
use session_problem::obs::export::{perfetto_json, ExportMeta};
use session_problem::sim::{render_timeline, ConstantDelay, FixedPeriods, RunLimits};
use session_problem::types::{Dur, Error, KnownBounds, ProcessId, SessionSpec, TimingModel};

fn main() -> Result<(), Error> {
    let spec = SessionSpec::new(3, 3, 2)?;
    let d2 = Dur::from_int(4);
    let bounds = KnownBounds::asynchronous();
    let mut schedule = FixedPeriods::new([2, 3, 5].map(Dur::from_int).to_vec())?;
    let mut delays = ConstantDelay::new(d2)?;
    let report = run_mp(
        MpConfig {
            model: TimingModel::Asynchronous,
            spec,
            bounds,
        },
        &mut schedule,
        &mut delays,
        RunLimits::default(),
    )?;
    assert!(report.solves(&spec));

    println!("== Timeline (p! = broadcast, p. = silent, p<-m = delivery, zZ = idle) ==\n");
    print!("{}", render_timeline(&report.trace, 40));

    println!("\n== Analysis ==\n");
    let analysis = analyze(&report.trace, spec.n(), port_of(&spec));
    println!(
        "sessions: {} (close times: {})",
        analysis.sessions,
        analysis
            .session_close_times
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("rounds: {}, γ = {}", analysis.rounds, analysis.gamma);
    println!(
        "messages: {} sent, {} delivered, delays in [{}, {}]",
        analysis.messages_sent,
        analysis.messages_delivered,
        analysis
            .min_delay
            .map_or_else(|| "-".into(), |d| d.to_string()),
        analysis
            .max_delay
            .map_or_else(|| "-".into(), |d| d.to_string()),
    );
    for (p, summary) in &analysis.per_process {
        println!(
            "{p}: {} steps ({} port steps), gaps in [{}, {}], idle at {}",
            summary.steps,
            summary.port_steps,
            summary
                .min_gap
                .map_or_else(|| "-".into(), |d| d.to_string()),
            summary
                .max_gap
                .map_or_else(|| "-".into(), |d| d.to_string()),
            summary
                .idle_at
                .map_or_else(|| "never".into(), |t| t.to_string()),
        );
    }

    // The same computation as a Perfetto trace: one track per process,
    // instants for steps and deliveries, flows per message, session spans.
    let ports = (0..report.trace.num_processes())
        .map(|i| port_of(&spec)(ProcessId::new(i)))
        .collect();
    let meta = ExportMeta::new("trace_timeline example — async MP (3, 3)")
        .with_ports(ports)
        .with_sessions(analysis.session_close_times.clone());
    let path = "trace_timeline.perfetto.json";
    std::fs::write(path, perfetto_json(&report.trace, &meta))
        .map_err(|e| Error::invalid_params(format!("cannot write {path}: {e}")))?;
    println!("\nwrote {path} (open in https://ui.perfetto.dev)");
    Ok(())
}
