//! A shard: one event-loop thread owning a slice of the live sessions.
//!
//! Each shard owns a time wheel, a session table, and the receiving end
//! of a command channel. Its loop advances the wheel to "now", fires
//! every due process step, drains commands (opens, shutdown), then
//! parks in `recv_timeout` for at most one wheel tick — the only
//! blocking point, so a shard with no due work costs one wakeup per
//! tick, and a busy shard never sleeps at all.
//!
//! Backpressure is explicit and front-loaded: an `Open` that would push
//! the shard past its live-session cap is refused with `Reject{Busy}`
//! *before* any per-session allocation. Admitted sessions are never
//! degraded to make room — load-shedding new work is how the service
//! keeps the Table 1 bounds of the sessions it already accepted.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use session_obs::{InMemoryRecorder, MetricsSnapshot, Recorder};
use session_types::{SessionSpec, TimingModel};

use crate::config::ServeConfig;
use crate::peer::PeerHandle;
use crate::session::{FireOutcome, SessionInstance};
use crate::wheel::TimeWheel;
use crate::wire::{ConformanceVerdict, RejectCode, ServerFrame};

/// Live/peak session occupancy, shared between a shard and the router.
#[derive(Debug, Default)]
pub struct LoadStats {
    live: AtomicU64,
    peak: AtomicU64,
    routed: AtomicU64,
    processed: AtomicU64,
}

impl LoadStats {
    /// Currently live sessions.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// The high-water mark of live sessions.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Live sessions plus `Open`s routed to the shard but still queued.
    /// The router balances on this, not on [`LoadStats::live`] alone: a
    /// burst of opens outruns the shard's processing, and live counts
    /// alone would funnel the whole burst into one shard's queue (then
    /// shed it at the cap) while its siblings sit empty.
    pub fn load_estimate(&self) -> u64 {
        let queued = self
            .routed
            .load(Ordering::Relaxed)
            .saturating_sub(self.processed.load(Ordering::Relaxed));
        self.live() + queued
    }

    /// Records one `Open` routed to this shard (router side).
    pub(crate) fn note_routed(&self) {
        self.routed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one routed `Open` reaching the shard's event loop.
    pub(crate) fn note_processed(&self) {
        self.processed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one routed `Open` bounced by a full shard queue (router
    /// side) so the queued estimate does not drift upward forever.
    pub(crate) fn note_unrouted(&self) {
        self.processed.fetch_add(1, Ordering::Relaxed);
    }

    fn incr(&self) {
        let now = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn decr(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Commands a shard accepts from the server front end.
#[derive(Debug)]
pub enum ShardCommand {
    /// Admit one session instance (or load-shed it).
    Open {
        /// Client request id.
        req: u64,
        /// The opening peer.
        peer: PeerHandle,
        /// Timing model to realize.
        model: TimingModel,
        /// Validated spec.
        spec: SessionSpec,
        /// Microseconds per nominal unit.
        unit_us: u32,
        /// Client-supplied seed.
        seed: u64,
    },
    /// Stop admitting, finish live sessions, then exit.
    Shutdown,
}

struct Slot {
    instance: SessionInstance,
    /// Shard-clock microseconds at open; nominal offsets add to this.
    origin_us: u64,
}

pub(crate) struct Shard {
    index: u64,
    config: ServeConfig,
    stats: Arc<LoadStats>,
    global: Arc<LoadStats>,
    sessions: HashMap<u64, Slot>,
    wheel: TimeWheel<(u64, u32)>,
    rec: InMemoryRecorder,
    next_session: u64,
    opened_total: u64,
    stopping: bool,
}

impl Shard {
    pub(crate) fn new(
        index: u64,
        config: ServeConfig,
        stats: Arc<LoadStats>,
        global: Arc<LoadStats>,
    ) -> Shard {
        let tick_us = config.tick_us;
        Shard {
            index,
            config,
            stats,
            global,
            sessions: HashMap::new(),
            // One slot per tick across a 4-second horizon; farther-out
            // steps wrap and wait their round.
            wheel: TimeWheel::new(4096, tick_us),
            rec: InMemoryRecorder::new(),
            next_session: 0,
            opened_total: 0,
            stopping: false,
        }
    }

    /// The shard's event loop; returns its metrics at exit.
    pub(crate) fn run(mut self, rx: &Receiver<ShardCommand>) -> MetricsSnapshot {
        let origin = Instant::now();
        let tick = Duration::from_micros(self.config.tick_us);
        let mut due: Vec<(u64, u32)> = Vec::new();
        loop {
            let now_us = elapsed_us(origin);
            due.clear();
            self.wheel.advance(now_us, &mut due);
            for (sid, pidx) in due.drain(..) {
                self.fire(sid, pidx);
            }
            loop {
                match rx.try_recv() {
                    Ok(cmd) => self.handle(cmd, origin),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.stopping = true;
                        break;
                    }
                }
            }
            if self.stopping {
                if self.sessions.is_empty() {
                    break;
                }
                // The channel may be disconnected; park on the clock.
                std::thread::sleep(tick);
                continue;
            }
            match rx.recv_timeout(tick) {
                Ok(cmd) => self.handle(cmd, origin),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => self.stopping = true,
            }
        }
        self.rec
            .gauge("serve.peak_live_sessions", self.stats.peak() as f64);
        self.rec.snapshot()
    }

    fn handle(&mut self, cmd: ShardCommand, origin: Instant) {
        match cmd {
            ShardCommand::Shutdown => self.stopping = true,
            ShardCommand::Open {
                req,
                peer,
                model,
                spec,
                unit_us,
                seed,
            } => self.open(req, peer, model, spec, unit_us, seed, origin),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn open(
        &mut self,
        req: u64,
        peer: PeerHandle,
        model: TimingModel,
        spec: SessionSpec,
        unit_us: u32,
        seed: u64,
        origin: Instant,
    ) {
        self.stats.note_processed();
        if self.stopping || self.sessions.len() >= self.config.max_sessions_per_shard {
            self.rec.counter("serve.sessions_shed", 1);
            peer.send(ServerFrame::Reject {
                req,
                code: RejectCode::Busy,
            });
            return;
        }
        let id = (self.next_session << 8) | self.index;
        self.next_session += 1;
        self.opened_total += 1;
        let sampled = self.config.sample_every > 0
            && (self.opened_total - 1).is_multiple_of(self.config.sample_every);
        let Ok(instance) = SessionInstance::new(
            id,
            req,
            peer.clone(),
            model,
            spec,
            unit_us,
            seed ^ self.config.seed,
            self.config.max_steps_per_session,
            sampled,
            Instant::now(),
        ) else {
            self.rec.counter("serve.sessions_shed", 1);
            peer.send(ServerFrame::Reject {
                req,
                code: RejectCode::Invalid,
            });
            return;
        };
        let origin_us = elapsed_us(origin);
        let mut slot = Slot {
            instance,
            origin_us,
        };
        for (pidx, offset_us) in slot.instance.initial_schedule() {
            self.wheel.schedule(origin_us + offset_us, (id, pidx));
        }
        slot.instance
            .peer
            .send(ServerFrame::Opened { req, session: id });
        self.sessions.insert(id, slot);
        self.rec.counter("serve.sessions_opened", 1);
        self.stats.incr();
        self.global.incr();
    }

    fn fire(&mut self, sid: u64, pidx: u32) {
        let Some(slot) = self.sessions.get_mut(&sid) else {
            return; // session already closed/aborted; stale wheel entry
        };
        match slot.instance.fire(pidx as usize) {
            FireOutcome::Reschedule(offset_us) => {
                let at = slot.origin_us + offset_us;
                self.wheel.schedule(at, (sid, pidx));
            }
            FireOutcome::ProcIdle => {}
            FireOutcome::Closed => self.close(sid),
            FireOutcome::Watchdog => self.abort(sid, "serve.sessions_aborted", true),
            FireOutcome::Orphaned => self.abort(sid, "serve.sessions_orphaned", false),
        }
    }

    fn close(&mut self, sid: u64) {
        let Some(slot) = self.sessions.remove(&sid) else {
            return;
        };
        let session = slot.instance;
        self.retire_counters(&session);
        let elapsed = session.opened.elapsed();
        let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let nominal_close_us = session.nominal_close_us();
        let (verdict, sessions) = session.verify(elapsed);
        if session.sampled() {
            self.rec.counter("serve.conformance_samples", 1);
            if verdict == ConformanceVerdict::Fail {
                self.rec.counter("serve.conformance_failures", 1);
            }
        }
        self.rec.counter("serve.sessions_closed", 1);
        self.rec
            .observe("serve.close_latency_ms", elapsed.as_secs_f64() * 1e3);
        let lag_us = elapsed_us.saturating_sub(nominal_close_us);
        self.rec.observe("serve.close_lag_ms", lag_us as f64 / 1e3);
        session.peer.send(ServerFrame::Closed {
            session: sid,
            sessions,
            nominal_close_us,
            elapsed_us,
            conformance: verdict,
        });
        self.stats.decr();
        self.global.decr();
    }

    fn abort(&mut self, sid: u64, counter: &'static str, notify: bool) {
        let Some(slot) = self.sessions.remove(&sid) else {
            return;
        };
        self.retire_counters(&slot.instance);
        self.rec.counter(counter, 1);
        if notify {
            let elapsed_us =
                u64::try_from(slot.instance.opened.elapsed().as_micros()).unwrap_or(u64::MAX);
            slot.instance.peer.send(ServerFrame::Closed {
                session: sid,
                sessions: 0,
                nominal_close_us: slot.instance.nominal_close_us(),
                elapsed_us,
                conformance: ConformanceVerdict::Watchdog,
            });
        }
        self.stats.decr();
        self.global.decr();
    }

    fn retire_counters(&mut self, session: &SessionInstance) {
        self.rec.counter("serve.steps", session.steps());
        self.rec.counter("serve.broadcasts", session.broadcasts());
        self.rec.counter("serve.deliveries", session.deliveries());
    }
}

fn elapsed_us(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;
    use std::sync::mpsc::channel;

    fn peer_pair(cap: usize) -> (PeerHandle, Receiver<ServerFrame>) {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        PeerHandle::new(addr, cap, None)
    }

    fn open_cmd(req: u64, peer: PeerHandle) -> ShardCommand {
        ShardCommand::Open {
            req,
            peer,
            model: TimingModel::Periodic,
            spec: SessionSpec::new(2, 2, 2).unwrap(),
            unit_us: 200,
            seed: req,
        }
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            max_sessions_per_shard: 4,
            sample_every: 1,
            tick_us: 200,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn shard_runs_sessions_to_close_and_reports_metrics() {
        let (tx, rx) = channel();
        let (peer, frames) = peer_pair(64);
        tx.send(open_cmd(1, peer.clone())).unwrap();
        tx.send(open_cmd(2, peer)).unwrap();
        tx.send(ShardCommand::Shutdown).unwrap();
        let shard = Shard::new(
            0,
            small_config(),
            Arc::new(LoadStats::default()),
            Arc::new(LoadStats::default()),
        );
        let snapshot = shard.run(&rx);
        assert_eq!(snapshot.counter("serve.sessions_opened"), 2);
        assert_eq!(snapshot.counter("serve.sessions_closed"), 2);
        assert_eq!(snapshot.counter("serve.conformance_samples"), 2);
        assert_eq!(snapshot.counter("serve.conformance_failures"), 0);
        assert!(snapshot.histogram("serve.close_latency_ms").is_some());
        let mut opened = 0;
        let mut closed = 0;
        while let Ok(frame) = frames.try_recv() {
            match frame {
                ServerFrame::Opened { .. } => opened += 1,
                ServerFrame::Closed {
                    conformance,
                    sessions,
                    ..
                } => {
                    closed += 1;
                    assert_eq!(conformance, ConformanceVerdict::Pass);
                    assert!(sessions >= 2);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!((opened, closed), (2, 2));
    }

    #[test]
    fn shard_load_sheds_past_its_cap_without_degrading_live_sessions() {
        let (tx, rx) = channel();
        let (peer, frames) = peer_pair(64);
        for req in 0..6 {
            tx.send(open_cmd(req, peer.clone())).unwrap();
        }
        tx.send(ShardCommand::Shutdown).unwrap();
        // All six opens drain in one command pass, before any session
        // can close, so the cap of 4 must shed the last two.
        let (g1, g2) = (
            Arc::new(LoadStats::default()),
            Arc::new(LoadStats::default()),
        );
        let shard = Shard::new(0, small_config(), g1.clone(), g2);
        let snapshot = shard.run(&rx);
        let shed = snapshot.counter("serve.sessions_shed");
        let closed = snapshot.counter("serve.sessions_closed");
        assert_eq!(shed + closed, 6);
        assert!(shed >= 2, "cap of 4 must shed at least 2 of 6 rapid opens");
        let mut rejects = 0;
        while let Ok(frame) = frames.try_recv() {
            if let ServerFrame::Reject { code, .. } = frame {
                assert_eq!(code, RejectCode::Busy);
                rejects += 1;
            }
        }
        assert_eq!(rejects, shed);
        assert_eq!(g1.peak(), 4);
    }

    #[test]
    fn dead_peer_sessions_are_orphaned_and_capacity_reclaimed() {
        let (tx, rx) = channel();
        let (peer, _frames) = peer_pair(64);
        tx.send(open_cmd(1, peer.clone())).unwrap();
        peer.kill(RejectCode::Protocol);
        tx.send(ShardCommand::Shutdown).unwrap();
        let stats = Arc::new(LoadStats::default());
        let shard = Shard::new(
            0,
            small_config(),
            stats.clone(),
            Arc::new(LoadStats::default()),
        );
        let snapshot = shard.run(&rx);
        assert_eq!(snapshot.counter("serve.sessions_orphaned"), 1);
        assert_eq!(stats.live(), 0);
    }
}
