//! One-call experiment façade: run a configuration, verify it from the
//! trace, report the measures the paper reports.

use session_obs::{NullRecorder, Recorder};
use session_sim::{DelayPolicy, RunLimits, StepSchedule, Trace};
use session_types::{Dur, Error, KnownBounds, Result, SessionSpec, Time, TimingModel};

use crate::system::{build_mp_system, build_sm_system, port_of, port_processes};
use crate::verify::{count_rounds, count_sessions};

/// A shared-memory experiment configuration.
#[derive(Clone, Debug)]
pub struct SmConfig {
    /// The timing model to solve under (must match `bounds.model()`).
    pub model: TimingModel,
    /// The problem instance.
    pub spec: SessionSpec,
    /// The constants known to the processes.
    pub bounds: KnownBounds,
}

/// A message-passing experiment configuration.
#[derive(Clone, Debug)]
pub struct MpConfig {
    /// The timing model to solve under (must match `bounds.model()`).
    pub model: TimingModel,
    /// The problem instance.
    pub spec: SessionSpec,
    /// The constants known to the processes.
    pub bounds: KnownBounds,
}

/// Everything the paper measures about one run, recomputed from the trace
/// by the independent verifiers.
#[derive(Clone, Debug)]
#[must_use = "a run report carries the verified measurements"]
pub struct RunReport {
    /// Whether all port processes reached idle states within budget.
    pub terminated: bool,
    /// Process steps executed.
    pub steps: u64,
    /// Disjoint sessions found in the trace (greedy count, idle steps
    /// excluded).
    pub sessions: u64,
    /// Disjoint rounds in the trace, over all processes of the system.
    pub rounds: u64,
    /// The running time: when the last port process entered an idle state.
    /// `None` if the run did not terminate.
    pub running_time: Option<Time>,
    /// The largest step time observed (`γ` of §2.3).
    pub gamma: Dur,
    /// The recorded computation, for further analysis (admissibility
    /// checks, adversary constructions, …).
    pub trace: Trace,
}

impl RunReport {
    /// Returns `true` if the run satisfied the `(s, n)`-session problem:
    /// terminated with at least `s` sessions.
    pub fn solves(&self, spec: &SessionSpec) -> bool {
        self.terminated && self.sessions >= spec.s()
    }
}

fn check_model(expected: TimingModel, bounds: &KnownBounds) -> Result<()> {
    if expected != bounds.model() {
        return Err(Error::invalid_params(format!(
            "config model {expected} does not match bounds model {}",
            bounds.model()
        )));
    }
    Ok(())
}

fn report_from(
    spec: &SessionSpec,
    outcome: session_sim::RunOutcome,
    num_processes: usize,
    mp: bool,
    recorder: &mut dyn Recorder,
) -> RunReport {
    let port_map = port_of(spec);
    let sessions = if mp {
        count_sessions(&outcome.trace, spec.n(), port_map)
    } else {
        count_sessions(&outcome.trace, spec.n(), |_| None)
    };
    let rounds = count_rounds(&outcome.trace, num_processes);
    let running_time = if outcome.terminated {
        outcome.trace.all_idle_time(port_processes(spec))
    } else {
        None
    };
    if recorder.is_enabled() {
        recorder.counter("run.sessions_closed", sessions);
        recorder.counter("run.rounds", rounds);
        if let Some(t) = running_time {
            recorder.gauge("run.running_time_ms", t.to_f64());
        }
        recorder.gauge("run.gamma_ms", outcome.trace.gamma().to_f64());
    }
    RunReport {
        terminated: outcome.terminated,
        steps: outcome.steps,
        sessions,
        rounds,
        running_time,
        gamma: outcome.trace.gamma(),
        trace: outcome.trace,
    }
}

/// Builds and runs the shared-memory system for `config` under `schedule`.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if the config's model does not match
/// its bounds, and propagates engine errors (e.g. a `b`-bound violation).
pub fn run_sm(
    config: SmConfig,
    schedule: &mut dyn StepSchedule,
    limits: RunLimits,
) -> Result<RunReport> {
    run_sm_recorded(config, schedule, limits, &mut NullRecorder)
}

/// [`run_sm`] with instrumentation: forwards engine counters (`sm.*`,
/// `sched.*`) and adds the verified run measures (`run.sessions_closed`,
/// `run.rounds`, `run.running_time_ms`, `run.gamma_ms`) to `recorder`.
///
/// # Errors
///
/// As for [`run_sm`].
pub fn run_sm_recorded(
    config: SmConfig,
    schedule: &mut dyn StepSchedule,
    limits: RunLimits,
    recorder: &mut dyn Recorder,
) -> Result<RunReport> {
    check_model(config.model, &config.bounds)?;
    let mut engine = build_sm_system(&config.spec, &config.bounds)?;
    let num_processes = engine.num_processes();
    let outcome = engine.run_recorded(schedule, limits, recorder)?;
    Ok(report_from(
        &config.spec,
        outcome,
        num_processes,
        false,
        recorder,
    ))
}

/// Builds and runs the message-passing system for `config` under `schedule`
/// and `delays`.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if the config's model does not match
/// its bounds, and propagates engine errors.
pub fn run_mp(
    config: MpConfig,
    schedule: &mut dyn StepSchedule,
    delays: &mut dyn DelayPolicy,
    limits: RunLimits,
) -> Result<RunReport> {
    run_mp_recorded(config, schedule, delays, limits, &mut NullRecorder)
}

/// [`run_mp`] with instrumentation: forwards engine counters (`mp.*`,
/// `sched.*`) and adds the verified run measures (`run.sessions_closed`,
/// `run.rounds`, `run.running_time_ms`, `run.gamma_ms`) to `recorder`.
///
/// # Errors
///
/// As for [`run_mp`].
pub fn run_mp_recorded(
    config: MpConfig,
    schedule: &mut dyn StepSchedule,
    delays: &mut dyn DelayPolicy,
    limits: RunLimits,
    recorder: &mut dyn Recorder,
) -> Result<RunReport> {
    check_model(config.model, &config.bounds)?;
    let mut engine = build_mp_system(&config.spec, &config.bounds)?;
    let num_processes = engine.num_processes();
    let outcome = engine.run_recorded(schedule, delays, limits, recorder)?;
    Ok(report_from(
        &config.spec,
        outcome,
        num_processes,
        true,
        recorder,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::{ConstantDelay, FixedPeriods};

    fn spec(s: u64, n: usize) -> SessionSpec {
        SessionSpec::new(s, n, 2).unwrap()
    }

    #[test]
    fn synchronous_sm_runs_in_s_times_c2() {
        let c2 = Dur::from_int(3);
        let config = SmConfig {
            model: TimingModel::Synchronous,
            spec: spec(4, 4),
            bounds: KnownBounds::synchronous(c2, Dur::from_int(1)).unwrap(),
        };
        let mut sched = FixedPeriods::uniform(4 + 3, c2).unwrap(); // ports + relays
        let report = run_sm(config, &mut sched, RunLimits::default()).unwrap();
        assert!(report.terminated);
        assert_eq!(report.sessions, 4);
        assert_eq!(report.running_time, Some(Time::from_int(12))); // s * c2
        assert!(report.solves(&spec(4, 4)));
    }

    #[test]
    fn synchronous_mp_runs_in_s_times_c2() {
        let c2 = Dur::from_int(2);
        let config = MpConfig {
            model: TimingModel::Synchronous,
            spec: spec(3, 5),
            bounds: KnownBounds::synchronous(c2, Dur::from_int(1)).unwrap(),
        };
        let mut sched = FixedPeriods::uniform(5, c2).unwrap();
        let mut delays = ConstantDelay::new(Dur::from_int(1)).unwrap();
        let report = run_mp(config, &mut sched, &mut delays, RunLimits::default()).unwrap();
        assert!(report.terminated);
        assert_eq!(report.sessions, 3);
        assert_eq!(report.running_time, Some(Time::from_int(6)));
        assert_eq!(report.gamma, c2);
    }

    #[test]
    fn recorded_run_reports_verified_measures() {
        let c2 = Dur::from_int(2);
        let config = MpConfig {
            model: TimingModel::Synchronous,
            spec: spec(3, 5),
            bounds: KnownBounds::synchronous(c2, Dur::from_int(1)).unwrap(),
        };
        let mut sched = FixedPeriods::uniform(5, c2).unwrap();
        let mut delays = ConstantDelay::new(Dur::from_int(1)).unwrap();
        let mut rec = session_obs::InMemoryRecorder::new();
        let report = run_mp_recorded(
            config,
            &mut sched,
            &mut delays,
            RunLimits::default(),
            &mut rec,
        )
        .unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("run.sessions_closed"), report.sessions);
        assert_eq!(snap.counter("run.rounds"), report.rounds);
        assert_eq!(snap.counter("mp.steps"), report.steps);
        assert_eq!(
            snap.gauge("run.running_time_ms"),
            report.running_time.map(Time::to_f64)
        );
    }

    #[test]
    fn model_mismatch_is_rejected() {
        let config = SmConfig {
            model: TimingModel::Synchronous,
            spec: spec(2, 2),
            bounds: KnownBounds::asynchronous(),
        };
        let mut sched = FixedPeriods::uniform(2, Dur::ONE).unwrap();
        assert!(run_sm(config, &mut sched, RunLimits::default()).is_err());
    }

    #[test]
    fn nonterminating_run_reports_no_running_time() {
        // Synchronous algorithm expects lockstep; it terminates regardless,
        // so use a tiny budget to force a non-terminated report.
        let config = MpConfig {
            model: TimingModel::Asynchronous,
            spec: spec(50, 3),
            bounds: KnownBounds::asynchronous(),
        };
        let mut sched = FixedPeriods::uniform(3, Dur::ONE).unwrap();
        let mut delays = ConstantDelay::new(Dur::from_int(1)).unwrap();
        let report = run_mp(
            config,
            &mut sched,
            &mut delays,
            RunLimits::default().with_max_steps(10),
        )
        .unwrap();
        assert!(!report.terminated);
        assert_eq!(report.running_time, None);
        assert!(!report.solves(&spec(50, 3)));
    }
}
