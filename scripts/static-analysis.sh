#!/usr/bin/env bash
# The workspace's static-analysis gate, run by CI and locally before
# merging:
#
#   1. rustfmt          -- formatting is canonical
#   2. clippy           -- the workspace lint policy, warnings are errors
#   3. lint-code registry -- every LintCode variant must carry a stable
#      SAxxx code-string mapping and a paper-section (§) reference in its
#      doc comment
#   4. registry test coverage -- every SAxxx code must have at least one
#      positive (`saXXX_positive_*`) and one negative (`saXXX_negative_*`)
#      test demonstrating the code firing and staying silent
#   5. metric-name registry -- every METRIC_NAMES entry in
#      crates/obs/src/metrics.rs must be documented in DESIGN.md §15, so
#      the unified `session-cli stats` snapshot never grows an
#      undocumented row; and every `serve.*` metric string emitted by
#      crates/serve must be in METRIC_NAMES, so the service cannot grow
#      an unregistered (hence undocumented) metric
#   6. analyzer (release tests) -- including the #[ignore]d large
#      explorations, the reduction differentials and the symbolic
#      zone/explicit differentials that are too slow under the debug
#      profile
#   7. session-cli analyze -- the ten paper algorithms must explore clean
#      (with and without the reduction layers), and the three naive
#      witnesses must be flagged with their exact codes and make the run
#      exit non-zero
#   8. session-cli analyze symbolic=on -- the ten paper algorithms must
#      also verify through the zone-graph engine with zero findings, and
#      the witnesses must be flagged by the symbolic engine too (each
#      deny line present twice: explicit + symbolic)
#
# Usage: scripts/static-analysis.sh
#
# `set -euo pipefail` + the ERR trap make every failure loud: the script
# stops at the first failing step and names it, instead of continuing and
# reporting a stale "OK".
set -Eeuo pipefail
cd "$(dirname "$0")/.."

current_step="(startup)"
trap 'echo "static-analysis: FAILED during: $current_step" >&2' ERR

current_step="rustfmt"
echo "== rustfmt =="
cargo fmt --all -- --check

current_step="clippy"
echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

current_step="lint-code registry gate"
echo "== lint codes: every variant mapped and paper-referenced =="
diag=crates/analyzer/src/diag.rs
variants=$(awk '/^pub enum LintCode \{/{f=1;next} f&&/^\}/{f=0} f&&/^    [A-Z][A-Za-z0-9]*,$/{gsub(/[ ,]/,"");print}' "$diag")
[ -n "$variants" ] || { echo "ERROR: found no LintCode variants in $diag" >&2; exit 1; }
for v in $variants; do
    if ! grep -q "LintCode::$v => \"SA[0-9][0-9][0-9]\"" "$diag"; then
        echo "ERROR: LintCode::$v has no stable SAxxx code-string mapping in code()" >&2
        exit 1
    fi
    if ! awk -v v="$v" '
        /^    \/\/\// { doc = doc $0; next }
        /^    [A-Z][A-Za-z0-9]*,$/ {
            name = $1; gsub(/,/, "", name)
            if (name == v) { found = 1; if (doc ~ /§/) ok = 1 }
            doc = ""
            next
        }
        { doc = "" }
        END { exit (found && ok) ? 0 : 1 }
    ' "$diag"; then
        echo "ERROR: LintCode::$v lacks a paper-section (§) reference in its doc comment" >&2
        exit 1
    fi
done
echo "lint codes: $(echo "$variants" | wc -l) variants mapped and referenced"

current_step="registry test coverage gate"
echo "== lint codes: every SAxxx has a positive and a negative test =="
# Only the code() mapping arms (`=> "SAxxx"`) define registry codes;
# bare SAxxx literals elsewhere in the file are test fixtures.
codes=$(grep -o '=> "SA[0-9][0-9][0-9]"' "$diag" | grep -o 'SA[0-9][0-9][0-9]' | sort -u)
[ -n "$codes" ] || { echo "ERROR: found no SAxxx code strings in $diag" >&2; exit 1; }
for code in $codes; do
    lc=$(echo "$code" | tr '[:upper:]' '[:lower:]')
    for direction in positive negative; do
        if ! grep -rq "fn ${lc}_${direction}" crates/analyzer/src crates/analyzer/tests; then
            echo "ERROR: $code has no ${direction} test (expected a fn named ${lc}_${direction}_*)" >&2
            exit 1
        fi
    done
done
echo "registry coverage: $(echo "$codes" | wc -l) codes with positive+negative tests"

current_step="metric-name documentation gate"
echo "== metrics: every METRIC_NAMES entry documented in DESIGN.md §15 =="
metrics_src=crates/obs/src/metrics.rs
names=$(awk '/^pub const METRIC_NAMES/{f=1;next} f&&/^\];/{f=0} f{gsub(/[ ",]/,"");print}' "$metrics_src")
[ -n "$names" ] || { echo "ERROR: found no METRIC_NAMES entries in $metrics_src" >&2; exit 1; }
section=$(awk '/^## 15\./{f=1;next} f&&/^## /{f=0} f' DESIGN.md)
[ -n "$section" ] || { echo "ERROR: DESIGN.md has no '## 15.' section" >&2; exit 1; }
for name in $names; do
    if ! printf '%s\n' "$section" | grep -qF "\`$name\`"; then
        echo "ERROR: metric \`$name\` is not documented in DESIGN.md §15" >&2
        exit 1
    fi
done
echo "metrics: $(echo "$names" | wc -l) names documented in DESIGN.md §15"

current_step="serve metric registration gate"
echo "== metrics: every serve.* name emitted by crates/serve is registered =="
emitted=$(grep -rhoE '"serve\.[a-z_]+"' crates/serve/src | tr -d '"' | sort -u)
[ -n "$emitted" ] || { echo "ERROR: found no serve.* metric strings in crates/serve/src" >&2; exit 1; }
for name in $emitted; do
    if ! printf '%s\n' "$names" | grep -qxF "$name"; then
        echo "ERROR: crates/serve emits \`$name\` but it is not in METRIC_NAMES" >&2
        exit 1
    fi
done
echo "serve metrics: $(echo "$emitted" | wc -l) emitted names all registered"

current_step="analyzer release tests"
echo "== analyzer test suite (release, including large explorations) =="
cargo test -p session-analyzer --release -- --include-ignored

current_step="building session-cli"
echo "== building session-cli =="
cargo build -q --release --bin session-cli

current_step="analyze (paper algorithms must be clean)"
echo "== analyze: the ten paper algorithms must be clean =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    | tee /tmp/analyze-clean.md
grep -q "No findings." /tmp/analyze-clean.md

current_step="analyze reduce=all (same verdict, fewer states)"
echo "== analyze reduce=all: the reductions must agree =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    reduce=all \
    | tee /tmp/analyze-reduced.md
grep -q "No findings." /tmp/analyze-reduced.md

current_step="analyze --all (witnesses must be flagged)"
echo "== analyze --all: the witnesses must be flagged and fail the run =="
# The full run must exit 1 (deny findings present) -- invert the check.
if ./target/release/session-cli analyze --all > /tmp/analyze-all.md; then
    echo "ERROR: analyze --all exited 0, the naive witnesses were not flagged" >&2
    exit 1
fi
grep -q "SA001 session-deficit | deny | NaivePeriodicSm" /tmp/analyze-all.md
grep -q "SA001 session-deficit | deny | NaiveSemiSyncSm" /tmp/analyze-all.md
grep -q "SA003 stale-evidence | deny | NaiveSporadicMp" /tmp/analyze-all.md

current_step="analyze symbolic=on (paper algorithms must verify symbolically)"
echo "== analyze symbolic=on: the ten paper algorithms must be clean =="
./target/release/session-cli analyze \
    SyncSm PeriodicSm SemiSyncSm SporadicSm AsyncSm \
    SyncMp PeriodicMp SemiSyncMp SporadicMp AsyncMp \
    symbolic=on \
    | tee /tmp/analyze-symbolic.md
grep -q "No findings." /tmp/analyze-symbolic.md
# The zone-graph engine actually ran: one "(symbolic)" summary per target.
[ "$(grep -c "(symbolic)" /tmp/analyze-symbolic.md)" -eq 10 ]

current_step="analyze --all symbolic=on (witnesses flagged symbolically)"
echo "== analyze --all symbolic=on: witnesses flagged by both engines =="
if ./target/release/session-cli analyze --all symbolic=on > /tmp/analyze-all-symbolic.md; then
    echo "ERROR: analyze --all symbolic=on exited 0, the witnesses were not flagged" >&2
    exit 1
fi
# Each witness deny line appears at least twice: once from the explicit
# explorer, once re-derived by the symbolic zone walk.
[ "$(grep -c "SA001 session-deficit | deny | NaivePeriodicSm" /tmp/analyze-all-symbolic.md)" -ge 2 ]
[ "$(grep -c "SA001 session-deficit | deny | NaiveSemiSyncSm" /tmp/analyze-all-symbolic.md)" -ge 2 ]
[ "$(grep -c "SA003 stale-evidence | deny | NaiveSporadicMp" /tmp/analyze-all-symbolic.md)" -ge 2 ]

echo "static analysis: OK"
