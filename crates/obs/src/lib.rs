//! Instrumentation layer for the session-problem reproduction.
//!
//! The paper's evaluation is Table 1 — worst-case running times of timed
//! computations. Reproducing it at production scale requires *observing*
//! the machinery that produces those computations: how many steps the
//! engines execute, how messages flow, where the explorer spends its
//! states. This crate reifies that telemetry as structured data:
//!
//! * [`Recorder`] — the instrumentation sink: named counters, gauges,
//!   fixed-bucket histograms and nested span timings. Hot paths call it
//!   through `&mut dyn Recorder`; names are `&'static str` so recording
//!   never allocates on the caller's side.
//! * [`NullRecorder`] — the default no-op backend. Engines route their
//!   un-instrumented entry points through it; every method body is empty,
//!   so the cost is one virtual call per hook.
//! * [`InMemoryRecorder`] — aggregates everything into a
//!   [`MetricsSnapshot`] for reports (`session-cli stats`, bench JSON).
//! * [`JsonlRecorder`] — streams every recording as one JSON object per
//!   line to any [`std::io::Write`].
//! * [`SharedRecorder`] — a cloneable `Arc<Mutex<_>>` adapter so the
//!   multi-threaded real-clock runtime (`session-net`) can feed any
//!   backend from one OS thread per process.
//! * [`metrics`] — lock-free primitives for the explorer flight
//!   recorder: atomic counters/histograms, a fixed [`MetricsRegistry`],
//!   per-worker span timelines and the live-progress scoreboard. These
//!   exist because `&mut dyn Recorder` would serialize the parallel
//!   explorer's workers on the contention they are measuring.
//! * [`export`] — turns any recorded [`session_sim::Trace`] into Chrome
//!   trace-event / Perfetto JSON (open in <https://ui.perfetto.dev>) or a
//!   structured JSONL event stream.
//! * [`json`] — the dependency-free JSON writer the exporters and the
//!   bench telemetry share (this workspace builds without network access,
//!   so no serde).
//!
//! # Examples
//!
//! ```
//! use session_obs::{InMemoryRecorder, Recorder};
//!
//! let mut rec = InMemoryRecorder::new();
//! rec.counter("engine.steps", 3);
//! rec.observe("engine.buffer_occupancy", 2.0);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("engine.steps"), 3);
//! assert_eq!(snap.histogram("engine.buffer_occupancy").unwrap().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
mod jsonl;
mod memory;
pub mod metrics;
mod recorder;
mod sync;

pub use jsonl::JsonlRecorder;
pub use memory::{Histogram, InMemoryRecorder, MetricsSnapshot};
pub use metrics::{
    AtomicCounter, AtomicHistogram, MetricsRegistry, ProgressBoard, ProgressSnapshot, TimelineSpan,
    WorkerTimeline,
};
pub use recorder::{NullRecorder, Recorder, Span};
pub use sync::SharedRecorder;
