//! Reconstructing one global [`Trace`] from per-thread logs.
//!
//! The runtime's threads log locally — steps with nominal times, sends
//! with nominal delivery times. This module merges those logs into the
//! same [`Trace`] shape the simulator engine produces, so the verification
//! stack (`check_admissible`, `count_sessions`, `count_rounds`) applies
//! unchanged:
//!
//! * message records are allocated in `(sent_at, from, to)` order, so the
//!   reconstruction is deterministic regardless of thread interleaving;
//! * every sent copy gets a `Deliver` event at its *nominal* delivery
//!   time, whether or not the physical packet was drained before the run
//!   ended — the timing models constrain when messages are *delivered*
//!   (enter the buffer), not when the recipient consumes them, and a copy
//!   still in flight at quiescence was nominally delivered all the same;
//! * all events are merged in nondecreasing time order.

use session_sim::{StepKind, Trace, TraceEvent};
use session_types::Time;

use crate::runtime::ProcessLog;

pub(crate) fn merge_trace(n: usize, logs: &[ProcessLog]) -> Trace {
    let mut trace = Trace::new(n);

    let mut sends: Vec<_> = logs.iter().flat_map(|l| l.sends.iter()).collect();
    sends.sort_by_key(|s| (s.sent_at, s.from.index(), s.to.index()));
    let msg_ids: Vec<_> = sends
        .iter()
        .map(|s| trace.record_send(s.from, s.to, s.sent_at))
        .collect();

    let mut events: Vec<TraceEvent> = Vec::new();
    for (index, log) in logs.iter().enumerate() {
        let process = session_types::ProcessId::new(index);
        for step in &log.steps {
            events.push(TraceEvent {
                time: step.time,
                process,
                kind: StepKind::MpStep {
                    received: step.received,
                    broadcast: step.broadcast,
                },
                idle_after: step.idle_after,
            });
        }
    }
    for (send, msg) in sends.iter().zip(&msg_ids) {
        trace.record_delivery(*msg, send.deliver_at);
        events.push(TraceEvent {
            time: send.deliver_at,
            process: send.to,
            kind: StepKind::Deliver { msg: *msg },
            idle_after: false,
        });
    }

    events.sort_by_key(|e| e.time);
    let mut last = Time::ZERO;
    for event in events {
        debug_assert!(event.time >= last);
        last = event.time;
        trace.push(event);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{SendRecord, StepRecord};
    use session_types::{Dur, ProcessId};

    fn t(x: i128) -> Time {
        Time::from_int(x)
    }

    fn step(time: i128, received: usize, broadcast: bool, idle_after: bool) -> StepRecord {
        StepRecord {
            time: t(time),
            received,
            broadcast,
            idle_after,
        }
    }

    #[test]
    fn merge_reconstructs_sends_deliveries_and_steps() {
        // p0 broadcasts at t=1 to both processes (delays 1 and 2); p1
        // consumes at t=3.
        let logs = vec![
            ProcessLog {
                steps: vec![step(1, 0, true, false), step(3, 1, false, true)],
                sends: vec![
                    SendRecord {
                        from: ProcessId::new(0),
                        to: ProcessId::new(0),
                        sent_at: t(1),
                        deliver_at: t(2),
                    },
                    SendRecord {
                        from: ProcessId::new(0),
                        to: ProcessId::new(1),
                        sent_at: t(1),
                        deliver_at: t(3),
                    },
                ],
                late_packets: 0,
            },
            ProcessLog {
                steps: vec![step(2, 0, false, false), step(3, 1, false, true)],
                sends: vec![],
                late_packets: 0,
            },
        ];
        let trace = merge_trace(2, &logs);
        assert_eq!(trace.messages().len(), 2);
        assert_eq!(trace.events().len(), 4 + 2);
        assert_eq!(trace.end_time(), Some(t(3)));
        // Every message was delivered at its nominal time.
        for msg in trace.messages() {
            assert!(msg.delivered_at.is_some());
        }
        // Events are in nondecreasing time order.
        let times: Vec<Time> = trace.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn message_allocation_is_interleaving_independent() {
        let send = |from: usize, to: usize, at: i128, deliver: i128| SendRecord {
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            sent_at: t(at),
            deliver_at: t(deliver),
        };
        let a = vec![
            ProcessLog {
                steps: vec![step(1, 0, true, true)],
                sends: vec![send(0, 0, 1, 2), send(0, 1, 1, 2)],
                late_packets: 0,
            },
            ProcessLog {
                steps: vec![step(1, 0, true, true)],
                sends: vec![send(1, 0, 1, 3), send(1, 1, 1, 3)],
                late_packets: 0,
            },
        ];
        let trace = merge_trace(2, &a);
        let froms: Vec<usize> = trace.messages().iter().map(|m| m.from.index()).collect();
        // Sorted by (sent_at, from, to): p0's copies precede p1's.
        assert_eq!(froms, vec![0, 0, 1, 1]);
    }

    #[test]
    fn unconsumed_sends_still_become_deliveries() {
        let logs = vec![ProcessLog {
            steps: vec![step(1, 0, true, true)],
            sends: vec![SendRecord {
                from: ProcessId::new(0),
                to: ProcessId::new(0),
                sent_at: t(1),
                deliver_at: t(4),
            }],
            late_packets: 0,
        }];
        let trace = merge_trace(1, &logs);
        // The copy's nominal delivery lands after the last step; the
        // merged trace records it delivered, and its delay is exact.
        let msg = &trace.messages()[0];
        assert_eq!(msg.delivered_at, Some(t(4)));
        assert_eq!(msg.delivered_at.unwrap() - msg.sent_at, Dur::from_int(3));
        assert_eq!(trace.end_time(), Some(t(4)));
    }
}
