//! A hand-rolled token-level lexer for Rust source.
//!
//! `session-wslint` deliberately does not parse Rust (no `syn`, no
//! `proc-macro2` — the workspace vendors every dependency and the linter
//! must stay dependency-free). Instead it lexes source into a flat token
//! stream that is *exact* about the three things a grep can never be
//! exact about:
//!
//! 1. **Strings** — `"Instant::now()"` inside a string literal is data,
//!    not code. All of Rust's string forms are handled: plain strings
//!    with escapes, raw strings with any `#` depth, byte strings, and
//!    C strings.
//! 2. **Char literals vs lifetimes** — `'a'` is a literal, `'a` in
//!    `&'a str` is a lifetime; naive quote-matching desynchronizes on
//!    the latter and then misreads the rest of the file.
//! 3. **Comments** — `// mpsc::channel()` is prose. Line and (nested)
//!    block comments are lexed as comment tokens so checks can ignore
//!    them while the annotation scanner (`wslint: allow(...)`) can still
//!    read them.
//!
//! Every token carries the 1-based line it starts on, which is all the
//! span precision the WSxxx reports need.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Token text. For string literals this is the *content* (quotes and
    /// raw-string hashes stripped, escapes left as written); for
    /// comments the full comment text including the delimiters.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token classification — exactly as much as the WSxxx checks need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or the loop-label quote form.
    Lifetime,
    /// Numeric literal.
    Num,
    /// One punctuation character (multi-char operators appear as
    /// consecutive tokens: `::` is `:`, `:`).
    Punct,
    /// `//` line comment (including `///` and `//!`).
    LineComment,
    /// `/* … */` block comment, nesting handled.
    BlockComment,
}

/// Lexes `source` into tokens. Never fails: unterminated literals are
/// closed at end of input (the linter must degrade gracefully on code
/// that rustc itself would reject).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start_line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start_line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start_line),
                b'"' => self.string(start_line, self.pos + 1),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_literal(start_line) => {}
                b'\'' => self.char_or_lifetime(start_line),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(start_line),
                _ if b.is_ascii_digit() => self.number(start_line),
                _ => {
                    self.push(TokenKind::Punct, (b as char).to_string(), start_line);
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn count_lines(&mut self, start: usize, end: usize) {
        self.line += self.bytes[start..end]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn text(&self, start: usize, end: usize) -> String {
        String::from_utf8_lossy(&self.bytes[start..end]).into_owned()
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = self.text(start, self.pos);
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        let text = self.text(start, self.pos);
        self.count_lines(start, self.pos);
        self.push(TokenKind::BlockComment, text, line);
    }

    /// A plain (escaped) string literal; `content_start` points past the
    /// opening quote.
    fn string(&mut self, line: u32, content_start: usize) {
        self.pos = content_start;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => break,
                _ => self.pos += 1,
            }
        }
        let end = self.pos.min(self.bytes.len());
        let text = self.text(content_start, end);
        self.count_lines(content_start, end);
        self.pos = (end + 1).min(self.bytes.len());
        self.push(TokenKind::Str, text, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"`.
    /// Returns `false` if the leading `r`/`b`/`c` starts an ordinary
    /// identifier instead (the caller then lexes it as one).
    fn raw_or_prefixed_literal(&mut self, line: u32) -> bool {
        let mut cursor = self.pos + 1;
        // Optional second prefix letter (`br`, `cr`).
        if matches!(self.bytes[self.pos], b'b' | b'c') && self.bytes.get(cursor) == Some(&b'r') {
            cursor += 1;
        }
        let raw = cursor > self.pos + 1 || self.bytes[self.pos] == b'r';
        if raw {
            let mut hashes = 0usize;
            while self.bytes.get(cursor + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if self.bytes.get(cursor + hashes) == Some(&b'"') {
                let content_start = cursor + hashes + 1;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let mut end = content_start;
                while end < self.bytes.len() && !self.bytes[end..].starts_with(&closer) {
                    end += 1;
                }
                let text = self.text(content_start, end);
                self.count_lines(self.pos, end);
                self.pos = (end + closer.len()).min(self.bytes.len());
                self.push(TokenKind::Str, text, line);
                return true;
            }
            return false; // `r` / `br` starting an identifier
        }
        // `b"…"` / `c"…"` / `b'…'`
        match self.bytes.get(self.pos + 1) {
            Some(b'"') => {
                self.string(line, self.pos + 2);
                true
            }
            Some(b'\'') => {
                self.pos += 1;
                self.char_or_lifetime(line);
                true
            }
            _ => false,
        }
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'a` (lifetime),
    /// `'static` (lifetime).
    fn char_or_lifetime(&mut self, line: u32) {
        let after = self.peek(1);
        let is_char = match after {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // `'a'` is a char; `'ab` or `'a ` is a lifetime.
                self.peek(2) == Some(b'\'')
            }
            Some(_) => true, // `'('`, `' '`, etc.
            None => false,
        };
        if !is_char {
            let start = self.pos;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            let text = self.text(start, self.pos);
            self.push(TokenKind::Lifetime, text, line);
            return;
        }
        let content_start = self.pos + 1;
        self.pos = content_start;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => break,
                _ => self.pos += 1,
            }
        }
        let end = self.pos.min(self.bytes.len());
        let text = self.text(content_start, end);
        self.count_lines(content_start, end);
        self.pos = (end + 1).min(self.bytes.len());
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = self.text(start, self.pos);
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        // A fractional part — but never eat `..` (range syntax).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
        let text = self.text(start, self.pos);
        self.push(TokenKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code_like_content() {
        let toks = kinds(r#"let x = "Instant::now()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "Instant::now()"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let x = r#"a "quoted" b"#; let y = 1;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == r#"a "quoted" b"#));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            3
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "str"));
    }

    #[test]
    fn char_literals_including_escaped_quote() {
        let toks = kinds(r"let a = '\''; let b = 'x'; let c = '\n';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = kinds("// mpsc::channel()\nlet x = 1;");
        assert!(matches!(toks[0].0, TokenKind::LineComment));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "mpsc"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("let a = \"x\ny\";\nlet b = 2;");
        let b = toks.iter().find(|t| t.text == "b").expect("ident b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_strings_and_loop_labels() {
        let toks = kinds("let x = b\"bytes\"; 'outer: loop { break 'outer; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "bytes"));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Lifetime && t == "'outer")
                .count(),
            2
        );
    }
}
