//! The lower bounds, live: watch each adversary defeat a plausible-looking
//! algorithm that is faster than the paper allows — and fail to defeat the
//! paper's algorithm under identical conditions.
//!
//! ```text
//! cargo run --example adversary_demo
//! ```

use session_problem::adversary::contamination::{contamination_analysis, lemma_bound};
use session_problem::adversary::naive::{naive_sm_system, periodic_sm_demo, sporadic_mp_demo};
use session_problem::adversary::retime::retiming_attack;
use session_problem::core::system::build_sm_system;
use session_problem::sim::RunLimits;
use session_problem::types::{Dur, Error, KnownBounds, ProcessId, SessionSpec};

fn main() -> Result<(), Error> {
    // --- Theorem 4.2/4.3: the periodic model needs communication. ----
    let spec = SessionSpec::new(3, 8, 2)?;
    println!("== Periodic SM (Theorems 4.2/4.3) ==");
    println!("Witness: take s = 3 port steps silently, then idle.");
    let demo = periodic_sm_demo(&spec, 100, RunLimits::default())?;
    println!(
        "Adversary slows one port process 100×: witness achieves {}/{} sessions;",
        demo.naive_sessions, demo.s
    );
    println!(
        "A(p) under the same schedule: {}/{} sessions by t = {}.",
        demo.correct_sessions,
        demo.s,
        demo.correct_running_time.expect("terminates")
    );
    assert!(demo.demonstrates_bound());

    // The information-flow side (Lemma 4.4): contamination spreads at
    // most (2b-1)-fold per subround.
    let bounds = KnownBounds::periodic(Dur::from_int(1))?;
    let report = contamination_analysis(
        || build_sm_system(&spec, &bounds),
        spec.n(),
        ProcessId::new(7),
        5,
        spec.b(),
    )?;
    println!("\nContamination after slowing p7 (b = 2, bound P_t = (3^t - 1)/2):");
    for sub in &report.subrounds {
        println!(
            "  subround {}: {} contaminated processes (lemma allows {})",
            sub.subround,
            sub.contaminated_processes.len(),
            lemma_bound(sub.subround, spec.b()),
        );
    }
    assert!(report.lemma_holds);

    // --- Theorem 5.1: the semi-synchronous retiming adversary. --------
    println!("\n== Semi-synchronous SM (Theorem 5.1) ==");
    let c1 = Dur::from_int(1);
    let c2 = Dur::from_int(8);
    println!("Witness: s silent steps; terminates in s·c2 = 24 < B·c2·(s−1) = 48.");
    let attack = retiming_attack(
        || naive_sm_system(&spec, spec.s()),
        &spec,
        c1,
        c2,
        RunLimits::default(),
    )?;
    println!(
        "Reorder-and-retime (B = {} rounds/block, {} blocks): {} sessions of {},",
        attack.block_rounds, attack.blocks, attack.sessions, attack.s
    );
    println!(
        "retimed computation admissible: {}, same global state: {}.",
        attack.admissible, attack.same_global_state
    );
    assert!(attack.defeated());

    // --- The sporadic model's unbounded step gaps. --------------------
    println!("\n== Sporadic MP (§6) ==");
    let pause_demo = sporadic_mp_demo(Dur::from_int(10), RunLimits::default())?;
    println!(
        "Pausing one process indefinitely: witness {}/{} sessions; A(sp) {}/{}.",
        pause_demo.naive_sessions, pause_demo.s, pause_demo.correct_sessions, pause_demo.s
    );
    assert!(pause_demo.demonstrates_bound());

    println!("\nEvery deficit above was counted by the independent verifier on an");
    println!("admissibility-checked trace — the proofs, executed.");
    Ok(())
}
