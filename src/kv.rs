//! Shared `key=value` argument machinery for `session-cli` and its
//! subcommands.
//!
//! Every subcommand speaks the same grammar — a bag of `key=value`
//! options, each key at most once, every error carrying the command's
//! usage text. [`KvArgs`] packages that contract so `cli`, `run-real`
//! and `serve` parse identically instead of each re-implementing the
//! splitting, duplicate detection, and typed-value error messages.

use std::collections::BTreeSet;
use std::str::FromStr;

use session_types::{Error, Result, TimingModel};

/// Duplicate-key detection for `key=value` parsers: each key may appear
/// at most once, and a repeat is reported by name instead of silently
/// letting the last occurrence win.
#[derive(Debug, Default)]
pub struct SeenKeys(BTreeSet<String>);

impl SeenKeys {
    /// Records `key`; returns the error message if it was already seen.
    pub fn duplicate(&mut self, key: &str) -> Option<String> {
        if self.0.insert(key.to_string()) {
            None
        } else {
            Some(format!(
                "duplicate option `{key}` (each key may be given once)"
            ))
        }
    }
}

/// A `key=value` argument scanner bound to one subcommand's usage text.
///
/// [`KvArgs::pair`] splits and duplicate-checks one argument;
/// [`KvArgs::value`] parses a typed value; [`KvArgs::error`] renders any
/// other parse failure. All errors append the usage text.
#[derive(Debug)]
pub struct KvArgs<'u> {
    usage: &'u str,
    seen: SeenKeys,
}

impl<'u> KvArgs<'u> {
    /// A scanner whose errors carry `usage`.
    pub fn new(usage: &'u str) -> KvArgs<'u> {
        KvArgs {
            usage,
            seen: SeenKeys::default(),
        }
    }

    /// An [`Error::InvalidParams`] carrying `msg` plus the usage text.
    pub fn error(&self, msg: impl std::fmt::Display) -> Error {
        Error::invalid_params(format!("{msg}\n{}", self.usage))
    }

    /// Splits one `key=value` argument, rejecting positional arguments
    /// and duplicate keys.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] (with usage) when `arg` has no
    /// `=` or its key was already seen.
    pub fn pair<'a>(&mut self, arg: &'a str) -> Result<(&'a str, &'a str)> {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| self.error(format_args!("expected key=value, got `{arg}`")))?;
        if let Some(msg) = self.seen.duplicate(key) {
            return Err(self.error(msg));
        }
        Ok((key, value))
    }

    /// Parses `value` for `key`, reporting failures as
    /// ``"{key} must be {expected}"`` plus the usage text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] when the value does not parse.
    pub fn value<T: FromStr>(&self, key: &str, value: &str, expected: &str) -> Result<T> {
        value
            .parse()
            .map_err(|_| self.error(format_args!("{key} must be {expected}")))
    }
}

/// Parses the shared `model=` vocabulary used by every subcommand.
pub fn parse_timing_model(value: &str) -> Option<TimingModel> {
    match value {
        "sync" | "synchronous" => Some(TimingModel::Synchronous),
        "periodic" => Some(TimingModel::Periodic),
        "semisync" | "semi-synchronous" => Some(TimingModel::SemiSynchronous),
        "sporadic" => Some(TimingModel::Sporadic),
        "async" | "asynchronous" => Some(TimingModel::Asynchronous),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_splits_and_rejects_duplicates_and_positionals() {
        let mut kv = KvArgs::new("usage: test");
        assert_eq!(kv.pair("s=3").unwrap(), ("s", "3"));
        assert_eq!(
            kv.pair("listen=127.0.0.1:0").unwrap(),
            ("listen", "127.0.0.1:0")
        );
        let err = kv.pair("s=5").unwrap_err().to_string();
        assert!(err.contains("duplicate option `s`"), "{err}");
        assert!(err.contains("usage: test"), "{err}");
        let err = kv.pair("positional").unwrap_err().to_string();
        assert!(err.contains("expected key=value"), "{err}");
    }

    #[test]
    fn value_errors_name_the_key_and_expected_shape() {
        let kv = KvArgs::new("usage: test");
        assert_eq!(kv.value::<u64>("s", "3", "an integer").unwrap(), 3);
        let err = kv
            .value::<u64>("shards", "many", "an integer")
            .unwrap_err()
            .to_string();
        assert!(err.contains("shards must be an integer"), "{err}");
        assert!(err.contains("usage: test"), "{err}");
    }

    #[test]
    fn timing_model_vocabulary() {
        assert_eq!(parse_timing_model("sync"), Some(TimingModel::Synchronous));
        assert_eq!(
            parse_timing_model("semi-synchronous"),
            Some(TimingModel::SemiSynchronous)
        );
        assert_eq!(parse_timing_model("async"), Some(TimingModel::Asynchronous));
        assert_eq!(parse_timing_model("quantum"), None);
    }

    #[test]
    fn timing_model_full_vocabulary_and_error_arms() {
        // Every accepted spelling, long and short.
        assert_eq!(
            parse_timing_model("synchronous"),
            Some(TimingModel::Synchronous)
        );
        assert_eq!(parse_timing_model("periodic"), Some(TimingModel::Periodic));
        assert_eq!(
            parse_timing_model("semisync"),
            Some(TimingModel::SemiSynchronous)
        );
        assert_eq!(parse_timing_model("sporadic"), Some(TimingModel::Sporadic));
        assert_eq!(
            parse_timing_model("asynchronous"),
            Some(TimingModel::Asynchronous)
        );
        // Near-misses must not parse: the vocabulary is exact.
        assert_eq!(parse_timing_model(""), None);
        assert_eq!(parse_timing_model("Sync"), None);
        assert_eq!(parse_timing_model("semi_synchronous"), None);
        assert_eq!(parse_timing_model(" periodic"), None);
    }

    #[test]
    fn empty_values_split_cleanly() {
        // `key=` is a well-formed pair with an empty value — rejecting
        // it (or not) is the typed parser's decision, not the splitter's.
        let mut kv = KvArgs::new("usage: test");
        assert_eq!(kv.pair("token=").unwrap(), ("token", ""));
        // And an empty value still fails typed parsing with the
        // key-naming message.
        let err = kv
            .value::<u64>("token", "", "an integer")
            .unwrap_err()
            .to_string();
        assert!(err.contains("token must be an integer"), "{err}");
    }

    #[test]
    fn duplicate_detection_is_by_key_name() {
        let mut seen = SeenKeys::default();
        assert_eq!(seen.duplicate("s"), None);
        assert_eq!(seen.duplicate("n"), None);
        let msg = seen.duplicate("s").expect("repeat reported");
        assert!(msg.contains('s'), "{msg}");
        // Distinct keys never collide, same key always does — even with
        // an empty name.
        assert_eq!(seen.duplicate(""), None);
        assert!(seen.duplicate("").is_some());
    }

    #[test]
    fn error_renders_message_then_usage() {
        let kv = KvArgs::new("usage: session-cli serve [key=value ...]");
        let err = kv.error("listen must be a socket address").to_string();
        let msg_at = err
            .find("listen must be a socket address")
            .expect("message present");
        let usage_at = err
            .find("usage: session-cli serve")
            .expect("usage appended");
        assert!(msg_at < usage_at, "usage follows the message: {err}");
    }
}
