//! Exact rational arithmetic over `i128`.
//!
//! Simulated real time in this workspace is represented exactly. The paper's
//! lower-bound constructions rescale and subdivide step times by rational
//! factors (e.g. `2c1/K` in Theorem 6.5 and half-interval retimings in
//! Theorem 5.1); exact rationals let the admissibility checker verify the
//! reconstructed computations with equality comparisons.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
///
/// Arithmetic panics on overflow of the underlying `i128` representation and
/// on division by zero; both are far outside the parameter ranges used by the
/// simulator (which works with small integer timing constants).
///
/// # Examples
///
/// ```
/// use session_types::Ratio;
///
/// let a = Ratio::new(3, 4);
/// let b = Ratio::new(1, 4);
/// assert_eq!(a + b, Ratio::from_int(1));
/// assert_eq!((a - b).to_string(), "1/2");
/// assert!(a > b);
/// assert_eq!(Ratio::new(7, 2).floor(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "Ratio denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Ratio::ZERO;
        }
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the rational `value / 1`.
    pub const fn from_int(value: i128) -> Ratio {
        Ratio { num: value, den: 1 }
    }

    /// The numerator of the lowest-terms representation.
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The (positive) denominator of the lowest-terms representation.
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// The largest integer `<= self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// The absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "cannot invert zero Ratio");
        Ratio::new(self.den, self.num)
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximates this rational as an `f64` (for reporting only; all model
    /// logic uses exact arithmetic).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Raises this rational to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics on overflow, or if `self` is zero and `exp < 0`.
    pub fn pow(self, exp: i32) -> Ratio {
        let base = if exp < 0 { self.recip() } else { self };
        let mut result = Ratio::ONE;
        for _ in 0..exp.unsigned_abs() {
            result *= base;
        }
        result
    }

    /// The sign of this rational: -1, 0 or 1.
    pub const fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Checked subtraction; `None` on `i128` overflow.
    pub fn checked_sub(self, other: Ratio) -> Option<Ratio> {
        self.checked_add(-other)
    }

    /// Checked division; `None` on overflow or when `other` is zero.
    pub fn checked_div(self, other: Ratio) -> Option<Ratio> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(other.recip())
    }

    /// Checked addition; `None` on `i128` overflow.
    pub fn checked_add(self, other: Ratio) -> Option<Ratio> {
        let num = self
            .num
            .checked_mul(other.den)?
            .checked_add(other.num.checked_mul(self.den)?)?;
        let den = self.den.checked_mul(other.den)?;
        Some(Ratio::new(num, den))
    }

    /// Checked multiplication; `None` on `i128` overflow.
    pub fn checked_mul(self, other: Ratio) -> Option<Ratio> {
        // Cross-reduce first to keep intermediate products small.
        let g1 = gcd(self.num, other.den);
        let g2 = gcd(other.num, self.den);
        let (g1, g2) = (g1.max(1), g2.max(1));
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Some(Ratio::new(num, den))
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl From<i128> for Ratio {
    fn from(value: i128) -> Ratio {
        Ratio::from_int(value)
    }
}

impl From<i64> for Ratio {
    fn from(value: i64) -> Ratio {
        Ratio::from_int(value as i128)
    }
}

impl From<u64> for Ratio {
    fn from(value: u64) -> Ratio {
        Ratio::from_int(value as i128)
    }
}

impl From<i32> for Ratio {
    fn from(value: i32) -> Ratio {
        Ratio::from_int(value as i128)
    }
}

impl From<u32> for Ratio {
    fn from(value: u32) -> Ratio {
        Ratio::from_int(value as i128)
    }
}

impl Add for Ratio {
    type Output = Ratio;

    fn add(self, other: Ratio) -> Ratio {
        self.checked_add(other).expect("Ratio addition overflowed")
    }
}

impl Sub for Ratio {
    type Output = Ratio;

    fn sub(self, other: Ratio) -> Ratio {
        self + (-other)
    }
}

impl Mul for Ratio {
    type Output = Ratio;

    fn mul(self, other: Ratio) -> Ratio {
        self.checked_mul(other)
            .expect("Ratio multiplication overflowed")
    }
}

impl Div for Ratio {
    type Output = Ratio;

    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a * b^-1 is the definition
    fn div(self, other: Ratio) -> Ratio {
        self * other.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;

    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, other: Ratio) {
        *self = *self + other;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, other: Ratio) {
        *self = *self - other;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, other: Ratio) {
        *self = *self * other;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, other: Ratio) {
        *self = *self / other;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("Ratio comparison overflowed");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("Ratio comparison overflowed");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, 4), Ratio::new(1, -2));
        assert_eq!(Ratio::new(0, 7), Ratio::ZERO);
        assert_eq!(Ratio::new(6, 3), Ratio::from_int(2));
    }

    #[test]
    fn negative_denominator_is_normalized_to_positive() {
        let r = Ratio::new(3, -6);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from_int(2));
        assert_eq!(-a, Ratio::new(-1, 3));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut x = Ratio::new(5, 4);
        x += Ratio::new(3, 4);
        assert_eq!(x, Ratio::from_int(2));
        x -= Ratio::ONE;
        assert_eq!(x, Ratio::ONE);
        x *= Ratio::new(3, 2);
        assert_eq!(x, Ratio::new(3, 2));
        x /= Ratio::from_int(3);
        assert_eq!(x, Ratio::new(1, 2));
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(7, 7) == Ratio::ONE);
        assert!(Ratio::new(10, 3) > Ratio::from_int(3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::from_int(5).floor(), 5);
        assert_eq!(Ratio::from_int(5).ceil(), 5);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Ratio::new(3, 4).recip(), Ratio::new(4, 3));
        assert_eq!(Ratio::new(-3, 4).abs(), Ratio::new(3, 4));
        assert_eq!(Ratio::new(-2, 5).recip(), Ratio::new(-5, 2));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_of_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }

    #[test]
    fn min_max() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(2, 3);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn predicates() {
        assert!(Ratio::from_int(3).is_integer());
        assert!(!Ratio::new(3, 2).is_integer());
        assert!(Ratio::ZERO.is_zero());
        assert!(Ratio::ONE.is_positive());
        assert!((-Ratio::ONE).is_negative());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ratio::new(3, 2).to_string(), "3/2");
        assert_eq!(Ratio::from_int(-4).to_string(), "-4");
        assert_eq!(format!("{:?}", Ratio::new(-1, 3)), "-1/3");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Ratio::from(3i32), Ratio::from_int(3));
        assert_eq!(Ratio::from(3u32), Ratio::from_int(3));
        assert_eq!(Ratio::from(3i64), Ratio::from_int(3));
        assert_eq!(Ratio::from(3u64), Ratio::from_int(3));
        assert_eq!(Ratio::from(3i128), Ratio::from_int(3));
    }

    #[test]
    fn to_f64_is_close() {
        assert!((Ratio::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pow_and_signum() {
        let half = Ratio::new(1, 2);
        assert_eq!(half.pow(3), Ratio::new(1, 8));
        assert_eq!(half.pow(0), Ratio::ONE);
        assert_eq!(half.pow(-2), Ratio::from_int(4));
        assert_eq!(Ratio::from_int(-3).pow(2), Ratio::from_int(9));
        assert_eq!(Ratio::from_int(-3).signum(), -1);
        assert_eq!(Ratio::ZERO.signum(), 0);
        assert_eq!(half.signum(), 1);
    }

    #[test]
    fn checked_sub_and_div() {
        assert_eq!(
            Ratio::ONE.checked_sub(Ratio::new(1, 2)),
            Some(Ratio::new(1, 2))
        );
        assert_eq!(
            Ratio::from_int(3).checked_div(Ratio::from_int(2)),
            Some(Ratio::new(3, 2))
        );
        assert_eq!(Ratio::ONE.checked_div(Ratio::ZERO), None);
        let huge = Ratio::from_int(i128::MAX);
        assert!(huge.checked_sub(-huge).is_none());
    }

    #[test]
    fn checked_ops_detect_overflow() {
        let huge = Ratio::from_int(i128::MAX);
        assert!(huge.checked_mul(Ratio::from_int(4)).is_none());
        assert!(huge.checked_add(huge).is_none());
        assert_eq!(
            Ratio::new(1, 2).checked_add(Ratio::new(1, 2)),
            Some(Ratio::ONE)
        );
    }
}
