//! Command-line front end: run any session-problem configuration and print
//! the verified report. See `session_problem::cli::CliConfig::USAGE`.

use session_problem::cli::CliConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        println!("{}", CliConfig::USAGE);
        return;
    }
    match CliConfig::parse(&args).and_then(|config| config.execute()) {
        Ok(report) => print!("{report}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}
