//! Service configuration and admission limits.

use session_types::{Error, Result};

/// Which socket transport the service listens on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTransport {
    /// Length-prefixed frames on TCP streams.
    Tcp,
    /// One frame per UDP datagram; peers are keyed by source address.
    Udp,
}

impl ServeTransport {
    /// Parses `"tcp"` or `"udp"`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] for anything else.
    pub fn parse(text: &str) -> Result<ServeTransport> {
        match text {
            "tcp" => Ok(ServeTransport::Tcp),
            "udp" => Ok(ServeTransport::Udp),
            other => Err(Error::invalid_params(format!(
                "unknown serve transport '{other}' (expected tcp or udp)"
            ))),
        }
    }
}

impl std::fmt::Display for ServeTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeTransport::Tcp => "tcp",
            ServeTransport::Udp => "udp",
        })
    }
}

/// Everything the service needs to start, with admission limits that
/// bound per-session state (the Charron-Bost/Penet de Monterno argument:
/// at ≥100k concurrent instances, per-session memory is the binding
/// constraint, so every per-session allocation is capped up front).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub listen: String,
    /// Socket transport.
    pub transport: ServeTransport,
    /// Shard (event-loop thread) count.
    pub shards: usize,
    /// Live-session cap per shard; `Open`s beyond it are load-shed with
    /// `Reject{Busy}` so admitted sessions keep their timing bounds.
    pub max_sessions_per_shard: usize,
    /// Shared auth token clients must present in `Hello`. `None` runs
    /// the service open (any token accepted).
    pub auth_token: Option<u64>,
    /// Token-bucket refill rate for `Open` requests, per peer, per
    /// second.
    pub open_rate: f64,
    /// Token-bucket burst capacity for `Open` requests.
    pub open_burst: f64,
    /// Bounded per-peer egress queue length (frames). A peer that stops
    /// reading overflows its own queue and only its own queue.
    pub egress_capacity: usize,
    /// Misbehavior score at which a peer's address is banned.
    pub ban_threshold: u32,
    /// Sample every k-th admitted session through the conformance
    /// harness (0 disables sampling).
    pub sample_every: u64,
    /// Largest `n` an `Open` may request — per-session state is
    /// `O(n²)` in recorded copies, so `n` is the knob that bounds it.
    pub max_spec_n: u32,
    /// Largest `s` an `Open` may request.
    pub max_spec_s: u32,
    /// Largest `unit_us` an `Open` may request (bounds how long one
    /// admitted session can occupy its slot).
    pub max_unit_us: u32,
    /// Per-session step watchdog: abort an instance after this many
    /// total algorithm steps.
    pub max_steps_per_session: u64,
    /// Time-wheel tick in microseconds.
    pub tick_us: u64,
    /// Seed mixed into every instance's RNG stream.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            transport: ServeTransport::Tcp,
            shards: 2,
            max_sessions_per_shard: 75_000,
            auth_token: None,
            open_rate: 50_000.0,
            open_burst: 20_000.0,
            egress_capacity: 4096,
            ban_threshold: 32,
            sample_every: 64,
            max_spec_n: 8,
            max_spec_s: 64,
            max_unit_us: 10_000_000,
            max_steps_per_session: 4096,
            tick_us: 1000,
            seed: 0,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::invalid_params("shards must be >= 1"));
        }
        if self.max_sessions_per_shard == 0 {
            return Err(Error::invalid_params("max_sessions_per_shard must be >= 1"));
        }
        let rate_ok = self.open_rate.is_finite() && self.open_rate > 0.0;
        let burst_ok = self.open_burst.is_finite() && self.open_burst >= 1.0;
        if !rate_ok || !burst_ok {
            return Err(Error::invalid_params(
                "open_rate must be > 0 and open_burst >= 1",
            ));
        }
        if self.egress_capacity == 0 {
            return Err(Error::invalid_params("egress_capacity must be >= 1"));
        }
        if self.ban_threshold == 0 {
            return Err(Error::invalid_params("ban_threshold must be >= 1"));
        }
        if self.max_spec_n < 1 || self.max_spec_s < 1 {
            return Err(Error::invalid_params(
                "max_spec_n and max_spec_s must be >= 1",
            ));
        }
        if self.max_unit_us == 0 || self.tick_us == 0 {
            return Err(Error::invalid_params(
                "max_unit_us and tick_us must be >= 1",
            ));
        }
        if self.max_steps_per_session == 0 {
            return Err(Error::invalid_params("max_steps_per_session must be >= 1"));
        }
        Ok(())
    }

    /// Total live-session capacity across all shards.
    pub fn capacity(&self) -> u64 {
        self.shards as u64 * self.max_sessions_per_shard as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_shards_is_rejected_with_a_clear_reason() {
        let cfg = ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("shards must be >= 1"), "{err}");
    }

    #[test]
    fn transport_parses_and_rejects() {
        assert_eq!(ServeTransport::parse("tcp").unwrap(), ServeTransport::Tcp);
        assert_eq!(ServeTransport::parse("udp").unwrap(), ServeTransport::Udp);
        assert!(ServeTransport::parse("sctp").is_err());
    }

    #[test]
    fn capacity_is_shards_times_per_shard_cap() {
        let cfg = ServeConfig {
            shards: 4,
            max_sessions_per_shard: 10,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.capacity(), 40);
    }
}
