//! The tree broadcast network of §3.
//!
//! In a `b`-bounded shared-memory system a value written by one process
//! reaches `n` processes only by relaying. This module builds the paper's
//! tree network: the `n` port variables are the leaves; each internal node
//! is a *relay process* with its own variable; a relay cyclically visits its
//! children's variables and its own, each visit atomically joining the
//! variable's [`Knowledge`] into its local knowledge and writing the merged
//! knowledge back. Announcements therefore flow both up (child var → relay →
//! parent var) and down (parent var → relay → child var), completing a full
//! flood in `O(arity · depth) = O(b · log_b n)` relay steps.

use session_types::VarId;

use crate::lattice::{JoinSemiLattice, Knowledge};
use crate::process::SmProcess;

/// The shape of a tree network over `n` leaves with fan-out
/// `arity = max(2, b - 1)`.
///
/// Node indices double as variable indices: node `i` (for `i < n`, a leaf —
/// i.e. a port) uses variable `x_i`; internal nodes continue upward. Every
/// variable is accessed by exactly two processes — its owner and its
/// parent's relay — so the construction is valid for every `b >= 2`.
///
/// # Examples
///
/// ```
/// use session_smm::TreeSpec;
///
/// let tree = TreeSpec::build(8, 3); // arity max(2, 3-1) = 2
/// assert_eq!(tree.num_leaves(), 8);
/// assert_eq!(tree.depth(), 3);           // 8 -> 4 -> 2 -> 1
/// assert_eq!(tree.num_nodes(), 15);      // full binary tree
/// assert_eq!(tree.num_relays(), 7);
/// ```
#[derive(Clone, Debug)]
pub struct TreeSpec {
    n: usize,
    arity: usize,
    /// `parents[v]` is the parent node of `v`, if any.
    parents: Vec<Option<usize>>,
    /// `children[v]` lists the child nodes of `v` (empty for leaves).
    children: Vec<Vec<usize>>,
    depth: usize,
}

impl TreeSpec {
    /// Builds the tree for `n` leaves in a `b`-bounded system.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `b < 2`.
    pub fn build(n: usize, b: usize) -> TreeSpec {
        assert!(n >= 1, "tree requires >= 1 leaf");
        assert!(b >= 2, "tree requires b >= 2");
        let arity = (b - 1).max(2);
        let mut parents: Vec<Option<usize>> = (0..n).map(|_| None).collect();
        let mut children: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
        let mut level: Vec<usize> = (0..n).collect();
        let mut depth = 0;
        while level.len() > 1 {
            depth += 1;
            let mut next_level = Vec::new();
            for chunk in level.chunks(arity) {
                let parent = parents.len();
                parents.push(None);
                children.push(chunk.to_vec());
                for &child in chunk {
                    parents[child] = Some(parent);
                }
                next_level.push(parent);
            }
            level = next_level;
        }
        TreeSpec {
            n,
            arity,
            parents,
            children,
            depth,
        }
    }

    /// The number of leaves `n`.
    pub fn num_leaves(&self) -> usize {
        self.n
    }

    /// The fan-out used, `max(2, b - 1)`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of tree nodes (= number of variables the network needs).
    pub fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    /// The number of internal nodes (= number of relay processes).
    pub fn num_relays(&self) -> usize {
        self.num_nodes() - self.n
    }

    /// The number of edges on the longest leaf-to-root path.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The variable realizing leaf (port) `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn leaf_var(&self, i: usize) -> VarId {
        assert!(i < self.n, "leaf index out of range");
        VarId::new(i)
    }

    /// The parent node of node `v`, if any.
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parents[v]
    }

    /// The children of node `v`.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Builds the relay processes, one per internal node, in internal-node
    /// order (so the caller assigns them the process ids
    /// `first .. first + num_relays()`).
    ///
    /// Each relay cyclically visits its children's variables and then its
    /// own variable.
    pub fn relay_processes(&self) -> Vec<RelayProcess> {
        (self.n..self.num_nodes())
            .map(|v| {
                let mut targets: Vec<VarId> =
                    self.children[v].iter().map(|&c| VarId::new(c)).collect();
                targets.push(VarId::new(v));
                RelayProcess::new(targets)
            })
            .collect()
    }

    /// An upper bound, in *rounds* (computation fragments in which every
    /// process of the network steps at least once), on a full flood: any
    /// announcement present in some leaf variable is joined into every leaf
    /// variable within this many rounds.
    ///
    /// One relay cycle takes `arity + 1` rounds; a flood crosses at most
    /// `depth` levels up and `depth` levels down, with one extra cycle of
    /// slack per level for cursor misalignment.
    pub fn flood_rounds_bound(&self) -> u64 {
        let cycle = (self.arity + 1) as u64;
        2 * cycle * (self.depth as u64 + 1)
    }
}

/// The relay process of an internal tree node.
///
/// Never idles (it is network infrastructure, not a port process); each step
/// joins the visited variable into its local [`Knowledge`] and writes the
/// merged knowledge back — a single atomic read-modify-write, as the model
/// requires.
#[derive(Clone, Debug)]
pub struct RelayProcess {
    targets: Vec<VarId>,
    cursor: usize,
    knowledge: Knowledge,
}

impl RelayProcess {
    /// Creates a relay cycling over `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<VarId>) -> RelayProcess {
        assert!(!targets.is_empty(), "relay requires >= 1 target variable");
        RelayProcess {
            targets,
            cursor: 0,
            knowledge: Knowledge::new(),
        }
    }

    /// The relay's accumulated knowledge.
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }
}

impl SmProcess<Knowledge> for RelayProcess {
    fn target(&self) -> VarId {
        self.targets[self.cursor]
    }

    fn step(&mut self, value: &Knowledge) -> Knowledge {
        self.knowledge.join(value);
        self.cursor = (self.cursor + 1) % self.targets.len();
        self.knowledge.clone()
    }

    fn is_idle(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SmEngine;
    use session_sim::{FixedPeriods, RunLimits};
    use session_types::{Dur, ProcessId};

    #[test]
    fn single_leaf_tree_is_trivial() {
        let tree = TreeSpec::build(1, 2);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.num_relays(), 0);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.leaf_var(0), VarId::new(0));
        assert!(tree.relay_processes().is_empty());
    }

    #[test]
    fn binary_tree_shape() {
        let tree = TreeSpec::build(4, 2); // arity 2
        assert_eq!(tree.arity(), 2);
        assert_eq!(tree.num_nodes(), 7);
        assert_eq!(tree.num_relays(), 3);
        assert_eq!(tree.depth(), 2);
        // Leaves 0..4, internal 4..7, root 6.
        assert_eq!(tree.children(4), &[0, 1]);
        assert_eq!(tree.children(5), &[2, 3]);
        assert_eq!(tree.children(6), &[4, 5]);
        assert_eq!(tree.parent(6), None);
        assert_eq!(tree.parent(0), Some(4));
    }

    #[test]
    fn higher_arity_reduces_depth() {
        let narrow = TreeSpec::build(27, 2);
        let wide = TreeSpec::build(27, 4); // arity 3
        assert!(wide.depth() < narrow.depth());
        assert_eq!(wide.depth(), 3); // 27 -> 9 -> 3 -> 1
    }

    #[test]
    fn uneven_leaf_counts_still_reach_a_single_root() {
        for n in 1..=40 {
            let tree = TreeSpec::build(n, 2);
            let roots = (0..tree.num_nodes())
                .filter(|&v| tree.parent(v).is_none())
                .count();
            assert_eq!(roots, 1, "n = {n} should have exactly one root");
        }
    }

    #[test]
    fn every_variable_has_at_most_two_accessor_processes() {
        // Structural check: each node's variable is accessed by its owner
        // and (if it has one) its parent's relay only.
        let tree = TreeSpec::build(13, 3);
        for v in 0..tree.num_nodes() {
            let mut accessors = 1; // the owner (port process or relay)
            if tree.parent(v).is_some() {
                accessors += 1; // the parent relay
            }
            assert!(accessors <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "leaf index")]
    fn leaf_var_bounds_checked() {
        let tree = TreeSpec::build(3, 2);
        let _ = tree.leaf_var(3);
    }

    #[test]
    fn relay_cycles_through_targets() {
        let mut relay = RelayProcess::new(vec![VarId::new(0), VarId::new(1), VarId::new(9)]);
        assert_eq!(relay.target(), VarId::new(0));
        let _ = relay.step(&Knowledge::new());
        assert_eq!(relay.target(), VarId::new(1));
        let _ = relay.step(&Knowledge::new());
        assert_eq!(relay.target(), VarId::new(9));
        let _ = relay.step(&Knowledge::new());
        assert_eq!(relay.target(), VarId::new(0));
        assert!(!relay.is_idle());
    }

    #[test]
    fn relay_joins_and_writes_back() {
        let mut relay = RelayProcess::new(vec![VarId::new(0)]);
        let input: Knowledge = [(ProcessId::new(3), 7)].into_iter().collect();
        let written = relay.step(&input);
        assert_eq!(written.get(ProcessId::new(3)), 7);
        assert_eq!(relay.knowledge().get(ProcessId::new(3)), 7);
    }

    /// A leaf process that announces its id once and then keeps reading,
    /// idling when it has heard from everyone.
    #[derive(Debug)]
    struct Announcer {
        id: ProcessId,
        var: VarId,
        n: usize,
        knowledge: Knowledge,
    }

    impl SmProcess<Knowledge> for Announcer {
        fn target(&self) -> VarId {
            self.var
        }

        fn step(&mut self, value: &Knowledge) -> Knowledge {
            self.knowledge.join(value);
            self.knowledge.announce(self.id, 1);
            self.knowledge.clone()
        }

        fn is_idle(&self) -> bool {
            self.knowledge
                .all_at_least((0..self.n).map(ProcessId::new), 1)
        }
    }

    /// End-to-end flood: n leaves announce; everyone hears everyone within
    /// the advertised round bound.
    #[test]
    fn flood_completes_within_bound() {
        for (n, b) in [(2, 2), (5, 2), (8, 3), (16, 5)] {
            let tree = TreeSpec::build(n, b);
            let num_vars = tree.num_nodes();
            let mut processes: Vec<Box<dyn SmProcess<Knowledge>>> = Vec::new();
            for i in 0..n {
                processes.push(Box::new(Announcer {
                    id: ProcessId::new(i),
                    var: tree.leaf_var(i),
                    n,
                    knowledge: Knowledge::new(),
                }));
            }
            for relay in tree.relay_processes() {
                processes.push(Box::new(relay));
            }
            let num_processes = processes.len();
            let mut engine =
                SmEngine::new(vec![Knowledge::new(); num_vars], processes, b, vec![]).unwrap();
            // Watch only the leaves: wrap by giving ports? Simpler: watch
            // defaults to all processes, but relays never idle, so script
            // rounds manually and check leaf idleness.
            let mut sched = FixedPeriods::uniform(num_processes, Dur::from_int(1)).unwrap();
            let bound_rounds = tree.flood_rounds_bound() + 2;
            let limit_steps = bound_rounds * num_processes as u64;
            let outcome = engine
                .run(&mut sched, RunLimits::default().with_max_steps(limit_steps))
                .unwrap();
            // Relays never idle, so the engine reports non-termination;
            // what matters is that every *leaf* went idle within the bound.
            let _ = outcome;
            for i in 0..n {
                assert!(
                    engine.process(ProcessId::new(i)).is_idle(),
                    "leaf {i} of n={n}, b={b} not idle within {bound_rounds} rounds"
                );
            }
        }
    }
}
