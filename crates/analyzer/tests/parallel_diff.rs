//! Differential harness: the parallel explorer must be *bit-identical*
//! to the serial one.
//!
//! `reduction_diff.rs` only demands code-set equality across reductions,
//! because a reduction may legitimately find a violation along a
//! different representative interleaving. The thread count is held to a
//! stricter standard: the parallel explorer re-derives its witnesses
//! through the serial DFS (see `parallel.rs` Phase B), so not just the
//! codes but the *witness roots, paths, messages, their order* and the
//! truncation flag must match the serial run exactly, at every thread
//! count, under every reduction combination.

use proptest::prelude::*;
use session_analyzer::explore::{explore_with_opts, Exploration};
use session_analyzer::{scoped_target_space, ExploreOpts, TARGET_NAMES};

const THREAD_COUNTS: [usize; 2] = [2, 8];

/// Every reduce= combination, serial; the thread sweep is layered on top.
const REDUCTIONS: [(&str, ExploreOpts); 4] = [
    (
        "none",
        ExploreOpts {
            por: false,
            symmetry: false,
            threads: 1,
        },
    ),
    (
        "por",
        ExploreOpts {
            por: true,
            symmetry: false,
            threads: 1,
        },
    ),
    (
        "symmetry",
        ExploreOpts {
            por: false,
            symmetry: true,
            threads: 1,
        },
    ),
    (
        "por+symmetry",
        ExploreOpts {
            por: true,
            symmetry: true,
            threads: 1,
        },
    ),
];

/// The full identity of every finding, in report order.
fn findings(exploration: &Exploration) -> Vec<(String, usize, Vec<usize>, String)> {
    exploration
        .violations
        .iter()
        .map(|v| {
            (
                v.code.code().to_owned(),
                v.root,
                v.path.clone(),
                v.message.clone(),
            )
        })
        .collect()
}

/// Explores `name` at `(n, s, depth)` serially and at every thread count,
/// asserting identical findings and truncation everywhere.
fn assert_thread_invariant(name: &str, n: usize, s: u64, depth: usize) {
    let space = scoped_target_space(name, n, s).expect("registered target");
    for (label, serial_opts) in REDUCTIONS {
        let serial = explore_with_opts(&space.roots, n, s, depth, serial_opts);
        let expected = findings(&serial);
        for threads in THREAD_COUNTS {
            let parallel = explore_with_opts(
                &space.roots,
                n,
                s,
                depth,
                ExploreOpts {
                    threads,
                    ..serial_opts
                },
            );
            assert_eq!(
                findings(&parallel),
                expected,
                "{name} n={n} s={s} depth={depth} reduce={label}: findings diverged at threads={threads}"
            );
            assert_eq!(
                parallel.truncated, serial.truncated,
                "{name} n={n} s={s} depth={depth} reduce={label}: truncation diverged at threads={threads}"
            );
        }
    }
}

/// A violating SM target, a violating MP target and a clean target of
/// each substrate, pinned at a scope where every reduction combination
/// still finishes quickly in a debug build.
#[test]
fn representative_targets_are_thread_invariant_at_small_scope() {
    for name in ["SyncSm", "NaivePeriodicSm", "SyncMp", "NaiveSporadicMp"] {
        assert_thread_invariant(name, 2, 2, 10);
    }
}

/// One deeper exhaustive run (full default depth) on a target whose
/// space is large enough for real work sharing to happen.
#[test]
fn periodic_mp_is_thread_invariant_at_full_depth() {
    let name = "PeriodicMp";
    let space = scoped_target_space(name, 2, 2).expect("registered target");
    let depth = space.scope.max_depth;
    for (label, serial_opts) in REDUCTIONS {
        let serial = explore_with_opts(&space.roots, 2, 2, depth, serial_opts);
        for threads in THREAD_COUNTS {
            let parallel = explore_with_opts(
                &space.roots,
                2,
                2,
                depth,
                ExploreOpts {
                    threads,
                    ..serial_opts
                },
            );
            assert_eq!(
                findings(&parallel),
                findings(&serial),
                "PeriodicMp reduce={label} threads={threads}"
            );
            assert_eq!(parallel.truncated, serial.truncated);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small scopes over every registered target: findings and
    /// truncation must be identical for threads in {1, 2, 8} under every
    /// reduce= combination.
    #[test]
    fn random_small_scopes_are_thread_invariant(
        target_idx in 0usize..TARGET_NAMES.len(),
        n in 1usize..=3,
        s in 1u64..=3,
        depth in 4usize..=12,
    ) {
        let name = TARGET_NAMES[target_idx];
        let space = scoped_target_space(name, n, s).expect("registered target");
        for (label, serial_opts) in REDUCTIONS {
            let serial = explore_with_opts(&space.roots, n, s, depth, serial_opts);
            let expected = findings(&serial);
            for threads in THREAD_COUNTS {
                let parallel = explore_with_opts(
                    &space.roots,
                    n,
                    s,
                    depth,
                    ExploreOpts { threads, ..serial_opts },
                );
                prop_assert_eq!(
                    findings(&parallel),
                    expected.clone(),
                    "{} at n={} s={} depth={} reduce={} threads={}",
                    name, n, s, depth, label, threads
                );
                prop_assert_eq!(parallel.truncated, serial.truncated);
            }
        }
    }
}
