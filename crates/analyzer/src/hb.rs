//! Happens-before analysis of recorded executions.
//!
//! The model checker in [`crate::explore`] proves properties of *all*
//! admissible schedules at a small scope; this module analyzes *one*
//! recorded execution — a JSONL event stream produced by
//! `session_obs::export::trace_jsonl` from either the simulator or the
//! real-clock runtime — at the causality level:
//!
//! * Vector clocks are rebuilt from the trace's own edges: program order
//!   per process, message edges (a broadcast step to each of its
//!   deliveries) and shared-variable edges (accesses of the same variable
//!   in serialization order).
//! * **`SA007` session-race**: two port steps counted into the same
//!   recomputed session where the serialization order contradicts strict
//!   happens-before — the later step causally precedes the earlier one.
//!   A trace whose timestamps respect causality can never trip this; a
//!   racy reporting pipeline (e.g. per-process logs merged on skewed
//!   clocks, a delivery recorded before its send) does.
//! * **`SA008` unordered-session-close**: a recorded session boundary not
//!   dominated by all `n` port clocks — the stream records more session
//!   closes than the port steps can justify, or records a close before
//!   the earliest instant at which the greedy counter can close it.
//! * **`SA009` model-mismatch**: the run claims a weak timing model but
//!   the trace exercises only a strictly stronger one — constant
//!   lock-step gaps under a non-synchronous claim, per-process constant
//!   gaps under a non-periodic claim, or a constant message delay where
//!   the claim leaves delay uncertainty. A conformance verdict obtained
//!   from such a run says less than it appears to (§3–§6 separate the
//!   models by exactly the behaviors such a trace never exhibits).
//!
//! Vector clocks are computed to a fixpoint, so the analysis stays
//! well-defined even on causally inconsistent inputs (which is precisely
//! when `SA007` fires).

use std::collections::{BTreeMap, BTreeSet};

use session_obs::json::{self, JsonValue};
use session_types::{Dur, Ratio, Time, TimingModel};

use crate::diag::{Diagnostic, LintCode, Report, TargetSummary};

/// The outcome of analyzing one recorded trace.
#[derive(Clone, Debug)]
pub struct HbAnalysis {
    /// Findings and the trace's summary row (states = events ingested).
    pub report: Report,
    /// Events ingested from the stream.
    pub events: u64,
    /// Sessions the greedy counter recomputes from the port steps.
    pub recomputed_sessions: u64,
    /// Session-close records present in the stream.
    pub recorded_sessions: u64,
}

/// One parsed event line.
struct Ev {
    time: Time,
    process: usize,
    /// The port this event covers, when it is a port step.
    port: Option<usize>,
    kind: EvKind,
    idle_after: bool,
}

enum EvKind {
    /// A shared-memory variable access.
    Access { var: usize },
    /// A message-passing process step.
    Step { broadcast: bool },
    /// A network delivery.
    Deliver { msg: u64 },
}

/// One parsed message record.
struct Msg {
    from: usize,
    sent_at: Time,
    delivered_at: Option<Time>,
}

/// The claimed timing model, with the delay bounds when known.
struct Claim {
    model: TimingModel,
    d1: Option<Dur>,
    d2: Option<Dur>,
}

/// Everything extracted from the stream.
struct TraceFacts {
    n: usize,
    events: Vec<Ev>,
    messages: BTreeMap<u64, Msg>,
    recorded_closes: Vec<Time>,
    claim: Option<Claim>,
}

/// Analyzes a JSONL trace stream (the `trace_jsonl` format): rebuilds
/// vector clocks and the greedy session structure, and reports `SA007`,
/// `SA008` and `SA009` findings against `source` (used as the report's
/// target name). `claim_override`, when given, replaces the stream's own
/// `model` claim for the `SA009` check (with unknown delay bounds).
///
/// # Errors
///
/// Returns a message naming the offending line for malformed JSON, a
/// missing `meta` header, or fields of the wrong shape.
pub fn analyze_trace_jsonl(
    text: &str,
    source: &str,
    claim_override: Option<TimingModel>,
) -> Result<HbAnalysis, String> {
    let mut facts = parse_stream(text)?;
    if let Some(model) = claim_override {
        facts.claim = Some(Claim {
            model,
            d1: None,
            d2: None,
        });
    }
    Ok(analyze_facts(&facts, source))
}

// ---------------------------------------------------------------------
// Stream parsing
// ---------------------------------------------------------------------

fn field<'v>(line: &'v JsonValue, key: &str, lineno: usize) -> Result<&'v JsonValue, String> {
    line.get(key)
        .ok_or_else(|| format!("line {lineno}: missing field {key:?}"))
}

fn field_usize(line: &JsonValue, key: &str, lineno: usize) -> Result<usize, String> {
    field(line, key, lineno)?
        .as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| format!("line {lineno}: field {key:?} must be a small whole number"))
}

fn field_time(line: &JsonValue, key: &str, lineno: usize) -> Result<Time, String> {
    let text = field(line, key, lineno)?
        .as_str()
        .ok_or_else(|| format!("line {lineno}: field {key:?} must be an exact time string"))?;
    parse_exact_time(text).map_err(|e| format!("line {lineno}: field {key:?}: {e}"))
}

/// Parses the exact rational time syntax the exporter writes: an integer
/// or `"num/den"`.
fn parse_exact_time(text: &str) -> Result<Time, String> {
    let (num, den) = match text.split_once('/') {
        Some((num, den)) => (num, den),
        None => (text, "1"),
    };
    let num: i128 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad rational {text:?}"))?;
    let den: i128 = den
        .trim()
        .parse()
        .map_err(|_| format!("bad rational {text:?}"))?;
    if den == 0 {
        return Err(format!("bad rational {text:?}"));
    }
    Ok(Time::from_ratio(Ratio::new(num, den)))
}

fn parse_model(name: &str) -> Result<TimingModel, String> {
    match name {
        "synchronous" => Ok(TimingModel::Synchronous),
        "periodic" => Ok(TimingModel::Periodic),
        "semi-synchronous" => Ok(TimingModel::SemiSynchronous),
        "sporadic" => Ok(TimingModel::Sporadic),
        "asynchronous" => Ok(TimingModel::Asynchronous),
        _ => Err(format!("unknown timing model {name:?}")),
    }
}

fn parse_event(line: &JsonValue, lineno: usize) -> Result<Ev, String> {
    let time = field_time(line, "t", lineno)?;
    let process = field_usize(line, "process", lineno)?;
    let idle_after = field(line, "idle_after", lineno)?
        .as_bool()
        .ok_or_else(|| format!("line {lineno}: idle_after must be a boolean"))?;
    let port = match line.get("port") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| format!("line {lineno}: port must be null or a small number"))?,
        ),
    };
    let kind = field(line, "kind", lineno)?
        .as_str()
        .ok_or_else(|| format!("line {lineno}: kind must be a string"))?;
    let kind = match kind {
        "access" => EvKind::Access {
            var: field_usize(line, "var", lineno)?,
        },
        "step" => EvKind::Step {
            broadcast: field(line, "broadcast", lineno)?
                .as_bool()
                .ok_or_else(|| format!("line {lineno}: broadcast must be a boolean"))?,
        },
        "deliver" => EvKind::Deliver {
            msg: field(line, "msg", lineno)?
                .as_u64()
                .ok_or_else(|| format!("line {lineno}: msg must be a number"))?,
        },
        other => return Err(format!("line {lineno}: unknown event kind {other:?}")),
    };
    Ok(Ev {
        time,
        process,
        port,
        kind,
        idle_after,
    })
}

fn parse_stream(text: &str) -> Result<TraceFacts, String> {
    let mut n = None;
    let mut claim = None;
    let mut events = Vec::new();
    let mut messages = BTreeMap::new();
    let mut recorded_closes = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let line = json::parse(raw).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = field(&line, "type", lineno)?
            .as_str()
            .ok_or_else(|| format!("line {lineno}: type must be a string"))?
            .to_owned();
        match kind.as_str() {
            "meta" => {
                n = Some(field_usize(&line, "num_processes", lineno)?);
                if let Some(model) = line.get("model") {
                    let model = model
                        .as_str()
                        .ok_or_else(|| format!("line {lineno}: model must be a string"))?;
                    let model = parse_model(model).map_err(|e| format!("line {lineno}: {e}"))?;
                    let bound = |key: &str| -> Result<Option<Dur>, String> {
                        match line.get(key) {
                            None | Some(JsonValue::Null) => Ok(None),
                            Some(v) => {
                                let text = v.as_str().ok_or_else(|| {
                                    format!("line {lineno}: {key} must be an exact time string")
                                })?;
                                let t = parse_exact_time(text)
                                    .map_err(|e| format!("line {lineno}: {key}: {e}"))?;
                                Ok(Some(t - Time::ZERO))
                            }
                        }
                    };
                    claim = Some(Claim {
                        model,
                        d1: bound("d1")?,
                        d2: bound("d2")?,
                    });
                }
            }
            "event" => events.push(parse_event(&line, lineno)?),
            "message" => {
                let msg = field(&line, "msg", lineno)?
                    .as_u64()
                    .ok_or_else(|| format!("line {lineno}: msg must be a number"))?;
                let delivered_at = match line.get("delivered_at") {
                    None | Some(JsonValue::Null) => None,
                    Some(_) => Some(field_time(&line, "delivered_at", lineno)?),
                };
                messages.insert(
                    msg,
                    Msg {
                        from: field_usize(&line, "from", lineno)?,
                        sent_at: field_time(&line, "sent_at", lineno)?,
                        delivered_at,
                    },
                );
            }
            "session" => recorded_closes.push(field_time(&line, "closed_at", lineno)?),
            // Unknown record types are skipped for forward compatibility.
            _ => {}
        }
    }
    let n = n.ok_or_else(|| "stream has no meta line".to_owned())?;
    if let Some(bad) = events.iter().find(|e| e.process >= n) {
        return Err(format!(
            "event names process {} but the meta line declares {n} processes",
            bad.process
        ));
    }
    Ok(TraceFacts {
        n,
        events,
        messages,
        recorded_closes,
        claim,
    })
}

// ---------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------

/// Per-event vector clocks, plus each event's 1-based index within its
/// own process (`own`): event `y` happens-before `x` iff
/// `vc[x][process(y)] >= own[y]` and `x != y`.
struct Clocks {
    vc: Vec<Vec<u64>>,
    own: Vec<u64>,
}

impl Clocks {
    fn happens_before(&self, y: usize, y_process: usize, x: usize) -> bool {
        x != y && self.vc[x][y_process] >= self.own[y]
    }
}

fn vector_clocks(facts: &TraceFacts) -> Clocks {
    let n = facts.n;
    let m = facts.events.len();
    let mut own = vec![0u64; m];
    let mut per_process = vec![0u64; n];
    // Broadcasting step of (process, time) — one per instant: gaps are
    // strictly positive in every model, so a process steps at most once
    // per instant.
    let mut send_at: BTreeMap<(usize, Time), usize> = BTreeMap::new();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut last_of: Vec<Option<usize>> = vec![None; n];
    for (i, e) in facts.events.iter().enumerate() {
        per_process[e.process] += 1;
        own[i] = per_process[e.process];
        if let Some(j) = last_of[e.process] {
            preds[i].push(j);
        }
        last_of[e.process] = Some(i);
        if let EvKind::Step { broadcast: true } = e.kind {
            send_at.insert((e.process, e.time), i);
        }
    }
    let mut last_var: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, e) in facts.events.iter().enumerate() {
        match &e.kind {
            EvKind::Deliver { msg } => {
                if let Some(record) = facts.messages.get(msg) {
                    if let Some(&send) = send_at.get(&(record.from, record.sent_at)) {
                        if send != i {
                            preds[i].push(send);
                        }
                    }
                }
            }
            EvKind::Access { var } => {
                if let Some(&j) = last_var.get(var) {
                    preds[i].push(j);
                }
                last_var.insert(*var, i);
            }
            EvKind::Step { .. } => {}
        }
    }
    let mut vc = vec![vec![0u64; n]; m];
    for i in 0..m {
        vc[i][facts.events[i].process] = own[i];
    }
    // Fixpoint: message edges can point backwards in serialization order
    // on causally inconsistent inputs, so one forward pass is not enough
    // in general. Each pass strictly grows some clock or terminates; the
    // clocks are bounded, so this terminates.
    loop {
        let mut changed = false;
        for i in 0..m {
            for &j in &preds[i] {
                let pred = vc[j].clone();
                for (mine, theirs) in vc[i].iter_mut().zip(pred) {
                    if theirs > *mine {
                        *mine = theirs;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Clocks { vc, own }
}

// ---------------------------------------------------------------------
// Session recomputation
// ---------------------------------------------------------------------

/// One recomputed session close: when it closed, and the covering port
/// step (event index) per port.
struct Close {
    time: Time,
    coverers: Vec<usize>,
}

/// Replays the greedy session counter over the event stream (the
/// `SessionCounter` semantics: only port steps are visible, the idling
/// step still covers, later steps of an idle process never do).
fn recompute_sessions(facts: &TraceFacts) -> Vec<Close> {
    let mut covered: BTreeMap<usize, usize> = BTreeMap::new();
    let mut idle: BTreeSet<usize> = BTreeSet::new();
    let mut closes = Vec::new();
    for (i, e) in facts.events.iter().enumerate() {
        let Some(port) = e.port else { continue };
        let was_idle = idle.contains(&e.process);
        if e.idle_after {
            idle.insert(e.process);
        }
        if was_idle {
            continue;
        }
        covered.insert(port, i);
        if covered.len() >= facts.n {
            closes.push(Close {
                time: e.time,
                coverers: covered.values().copied().collect(),
            });
            covered.clear();
        }
    }
    closes
}

// ---------------------------------------------------------------------
// The three detectors
// ---------------------------------------------------------------------

fn describe_event(facts: &TraceFacts, i: usize) -> String {
    let e = &facts.events[i];
    format!("event #{i} (process {} at t={})", e.process, e.time)
}

fn check_session_race(
    facts: &TraceFacts,
    clocks: &Clocks,
    closes: &[Close],
) -> Option<(String, String)> {
    for (k, close) in closes.iter().enumerate() {
        let mut order: Vec<usize> = close.coverers.clone();
        order.sort_unstable();
        for (a, &x) in order.iter().enumerate() {
            for &y in &order[a + 1..] {
                if clocks.happens_before(y, facts.events[y].process, x) {
                    let message = format!(
                        "session {} groups port steps whose serialization contradicts \
                         happens-before: {} precedes {} in the stream but causally follows it",
                        k + 1,
                        describe_event(facts, x),
                        describe_event(facts, y),
                    );
                    let witness = format!(
                        "serialized: {} then {}\ncausal:     the second reaches the first \
                         through recorded message/variable edges",
                        describe_event(facts, x),
                        describe_event(facts, y),
                    );
                    return Some((message, witness));
                }
            }
        }
    }
    None
}

fn check_unordered_close(facts: &TraceFacts, closes: &[Close]) -> Option<(String, String)> {
    let recorded = &facts.recorded_closes;
    if recorded.len() > closes.len() {
        return Some((
            format!(
                "stream records {} session closes but the port steps justify only {}",
                recorded.len(),
                closes.len()
            ),
            String::new(),
        ));
    }
    for (k, (&r, c)) in recorded.iter().zip(closes).enumerate() {
        if r < c.time {
            return Some((
                format!(
                    "session {} is recorded closed at t={r}, before all {} port clocks can \
                     reach it (earliest justified close: t={})",
                    k + 1,
                    facts.n,
                    c.time
                ),
                String::new(),
            ));
        }
    }
    None
}

fn check_model_mismatch(facts: &TraceFacts) -> Option<(String, String)> {
    let claim = facts.claim.as_ref()?;
    let mut step_times: Vec<Vec<Time>> = vec![Vec::new(); facts.n];
    for e in &facts.events {
        if !matches!(e.kind, EvKind::Deliver { .. }) {
            step_times[e.process].push(e.time);
        }
    }
    let gaps: Vec<Vec<Dur>> = step_times
        .iter()
        .map(|times| times.windows(2).map(|w| w[1] - w[0]).collect())
        .collect();
    let every_process_has_two = gaps.iter().all(|g| g.len() >= 2);
    // Rule A: a non-synchronous claim, but the whole system steps at one
    // global constant gap.
    if claim.model != TimingModel::Synchronous && facts.n >= 2 && every_process_has_two {
        let mut all: Vec<Dur> = gaps.iter().flatten().copied().collect();
        all.dedup();
        if all.len() == 1 {
            return Some((
                format!(
                    "run claims the {} model but every step gap is the constant {} — the \
                     trace only exercises the synchronous model",
                    claim.model, all[0]
                ),
                String::new(),
            ));
        }
    }
    // Rule B: a claim weaker than periodic, but every process keeps a
    // constant (per-process) gap.
    if !matches!(
        claim.model,
        TimingModel::Synchronous | TimingModel::Periodic
    ) && every_process_has_two
        && gaps.iter().all(|g| g.windows(2).all(|w| w[0] == w[1]))
    {
        return Some((
            format!(
                "run claims the {} model but each process steps at its own constant period \
                 — the trace only exercises the periodic model",
                claim.model
            ),
            String::new(),
        ));
    }
    // Rule C: the claim leaves message-delay uncertainty, but every
    // delivered message took the same delay.
    if matches!(
        claim.model,
        TimingModel::SemiSynchronous | TimingModel::Sporadic | TimingModel::Asynchronous
    ) {
        let uncertain = match (claim.d1, claim.d2) {
            (Some(d1), Some(d2)) => d1 != d2,
            _ => true,
        };
        if uncertain {
            let mut delays: Vec<Dur> = facts
                .messages
                .values()
                .filter_map(|m| m.delivered_at.map(|at| at - m.sent_at))
                .collect();
            if delays.len() >= 2 {
                delays.dedup();
                if delays.len() == 1 {
                    return Some((
                        format!(
                            "run claims the {} model (delay uncertainty unresolved) but all \
                             delivered messages took the constant delay {} — the delay \
                             spread the model allows is never exercised",
                            claim.model, delays[0]
                        ),
                        String::new(),
                    ));
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------

fn analyze_facts(facts: &TraceFacts, source: &str) -> HbAnalysis {
    let clocks = vector_clocks(facts);
    let closes = recompute_sessions(facts);
    let scope = format!(
        "trace: {} events, {} processes, {} messages",
        facts.events.len(),
        facts.n,
        facts.messages.len()
    );
    let mut report = Report::default();
    report
        .targets
        .push(TargetSummary::new(source, facts.events.len() as u64));
    let mut push = |code: LintCode, found: Option<(String, String)>| {
        if let Some((message, witness)) = found {
            report.findings.push(Diagnostic {
                code,
                target: source.to_string(),
                message,
                scope: scope.clone(),
                repro: source.to_string(),
                counterexample: witness,
            });
        }
    };
    push(
        LintCode::SessionRace,
        check_session_race(facts, &clocks, &closes),
    );
    push(
        LintCode::UnorderedSessionClose,
        check_unordered_close(facts, &closes),
    );
    push(LintCode::ModelMismatch, check_model_mismatch(facts));
    HbAnalysis {
        report,
        events: facts.events.len() as u64,
        recomputed_sessions: closes.len() as u64,
        recorded_sessions: facts.recorded_closes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n: usize) -> String {
        format!(r#"{{"type":"meta","title":"t","num_processes":{n},"events":0,"messages":0}}"#)
    }

    fn step(process: usize, t: &str, port: usize, broadcast: bool, idle: bool) -> String {
        format!(
            r#"{{"type":"event","seq":0,"t":"{t}","t_ms":0,"process":{process},"kind":"step","received":0,"broadcast":{broadcast},"port":{port},"idle_after":{idle}}}"#
        )
    }

    fn deliver(process: usize, t: &str, msg: u64) -> String {
        format!(
            r#"{{"type":"event","seq":0,"t":"{t}","t_ms":0,"process":{process},"kind":"deliver","msg":{msg},"idle_after":false}}"#
        )
    }

    fn message(msg: u64, from: usize, to: usize, sent: &str, delivered: &str) -> String {
        format!(
            r#"{{"type":"message","msg":{msg},"from":{from},"to":{to},"sent_at":"{sent}","delivered_at":"{delivered}"}}"#
        )
    }

    fn codes(analysis: &HbAnalysis) -> Vec<LintCode> {
        analysis.report.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn conformant_two_port_trace_is_clean() {
        let text = [
            meta(2),
            step(0, "1", 0, true, false),
            deliver(1, "2", 0),
            step(1, "2", 1, false, false),
            message(0, 0, 1, "1", "2"),
            r#"{"type":"session","index":1,"closed_at":"2","closed_at_ms":2}"#.to_owned(),
        ]
        .join("\n");
        let analysis = analyze_trace_jsonl(&text, "t", None).expect("parses");
        assert!(
            analysis.report.findings.is_empty(),
            "{:?}",
            codes(&analysis)
        );
        assert_eq!(analysis.events, 3);
        assert_eq!(analysis.recomputed_sessions, 1);
        assert_eq!(analysis.recorded_sessions, 1);
    }

    #[test]
    fn causally_inverted_serialization_fires_sa007() {
        // The delivery (and the subsequent port step of p0) appear in the
        // stream *before* the broadcasting step of p1 that caused them:
        // p1's step causally precedes p0's, yet serializes after it.
        let text = [
            meta(2),
            deliver(0, "1", 0),
            step(0, "2", 0, false, false),
            step(1, "3", 1, true, false),
            message(0, 1, 0, "3", "1"),
        ]
        .join("\n");
        let analysis = analyze_trace_jsonl(&text, "t", None).expect("parses");
        assert_eq!(codes(&analysis), vec![LintCode::SessionRace]);
    }

    #[test]
    fn premature_or_excess_session_records_fire_sa008() {
        // Recorded close at t=1 but the second port only covers at t=2.
        let early = [
            meta(2),
            step(0, "1", 0, false, false),
            step(1, "2", 1, false, false),
            r#"{"type":"session","index":1,"closed_at":"1","closed_at_ms":1}"#.to_owned(),
        ]
        .join("\n");
        let analysis = analyze_trace_jsonl(&early, "t", None).expect("parses");
        assert_eq!(codes(&analysis), vec![LintCode::UnorderedSessionClose]);

        // Two recorded sessions, one justified.
        let excess = [
            meta(2),
            step(0, "1", 0, false, false),
            step(1, "2", 1, false, false),
            r#"{"type":"session","index":1,"closed_at":"2","closed_at_ms":2}"#.to_owned(),
            r#"{"type":"session","index":2,"closed_at":"3","closed_at_ms":3}"#.to_owned(),
        ]
        .join("\n");
        let analysis = analyze_trace_jsonl(&excess, "t", None).expect("parses");
        assert_eq!(codes(&analysis), vec![LintCode::UnorderedSessionClose]);
    }

    #[test]
    fn lockstep_trace_under_async_claim_fires_sa009() {
        let mut lines = vec![
            r#"{"type":"meta","title":"t","num_processes":2,"events":6,"messages":0,"model":"asynchronous"}"#
                .to_owned(),
        ];
        for t in 1..=3 {
            lines.push(step(0, &t.to_string(), 0, false, false));
            lines.push(step(1, &t.to_string(), 1, false, false));
        }
        let analysis = analyze_trace_jsonl(&lines.join("\n"), "t", None).expect("parses");
        assert_eq!(codes(&analysis), vec![LintCode::ModelMismatch]);
        assert!(
            analysis.report.findings[0].message.contains("synchronous"),
            "{}",
            analysis.report.findings[0].message
        );
    }

    #[test]
    fn per_process_periods_under_sporadic_claim_fire_sa009() {
        let head = r#"{"type":"meta","title":"t","num_processes":2,"events":6,"messages":0,"model":"sporadic","d1":"0","d2":"0"}"#;
        // p0 at period 1, p1 at period 2 — periodic, not sporadic-general.
        // d1 == d2 keeps rule C out of the way.
        let text = [
            head.to_owned(),
            step(0, "1", 0, false, false),
            step(0, "2", 0, false, false),
            step(0, "3", 0, false, false),
            step(1, "2", 1, false, false),
            step(1, "4", 1, false, false),
            step(1, "6", 1, false, false),
        ]
        .join("\n");
        let analysis = analyze_trace_jsonl(&text, "t", None).expect("parses");
        assert_eq!(codes(&analysis), vec![LintCode::ModelMismatch]);
        assert!(
            analysis.report.findings[0].message.contains("periodic"),
            "{}",
            analysis.report.findings[0].message
        );
    }

    #[test]
    fn constant_delay_under_uncertain_claim_fires_rule_c() {
        let head = r#"{"type":"meta","title":"t","num_processes":2,"events":4,"messages":2,"model":"sporadic","d1":"0","d2":"2"}"#;
        // Varied gaps (so rules A/B stay silent), two messages, both at
        // delay exactly 1.
        let text = [
            head.to_owned(),
            step(0, "1", 0, true, false),
            step(1, "2", 1, true, false),
            step(0, "4", 0, false, false),
            step(1, "7", 1, false, false),
            message(0, 0, 1, "1", "2"),
            message(1, 1, 0, "2", "3"),
        ]
        .join("\n");
        let analysis = analyze_trace_jsonl(&text, "t", None).expect("parses");
        assert_eq!(codes(&analysis), vec![LintCode::ModelMismatch]);
        assert!(
            analysis.report.findings[0].message.contains("delay"),
            "{}",
            analysis.report.findings[0].message
        );
    }

    #[test]
    fn claim_override_replaces_the_stream_claim() {
        let mut lines = vec![meta(2)];
        for t in 1..=3 {
            lines.push(step(0, &t.to_string(), 0, false, false));
            lines.push(step(1, &t.to_string(), 1, false, false));
        }
        let text = lines.join("\n");
        // No claim in the stream: SA009 cannot fire.
        let plain = analyze_trace_jsonl(&text, "t", None).expect("parses");
        assert!(plain.report.findings.is_empty());
        // Overridden to asynchronous: the lockstep trace mismatches.
        let overridden =
            analyze_trace_jsonl(&text, "t", Some(TimingModel::Asynchronous)).expect("parses");
        assert_eq!(codes(&overridden), vec![LintCode::ModelMismatch]);
        // Overridden to synchronous: lockstep is exactly the claim.
        let sync = analyze_trace_jsonl(&text, "t", Some(TimingModel::Synchronous)).expect("parses");
        assert!(sync.report.findings.is_empty());
    }

    #[test]
    fn malformed_streams_are_rejected_with_line_numbers() {
        assert!(analyze_trace_jsonl("", "t", None)
            .unwrap_err()
            .contains("no meta line"));
        assert!(analyze_trace_jsonl("{not json}", "t", None)
            .unwrap_err()
            .contains("line 1"));
        let bad_process = [meta(1), step(3, "1", 0, false, false)].join("\n");
        assert!(analyze_trace_jsonl(&bad_process, "t", None)
            .unwrap_err()
            .contains("process 3"));
    }

    #[test]
    fn exact_rational_times_parse() {
        assert_eq!(
            parse_exact_time("7/2").unwrap(),
            Time::from_ratio(Ratio::new(7, 2))
        );
        assert_eq!(parse_exact_time("3").unwrap(), Time::from_int(3));
        assert!(parse_exact_time("1/0").is_err());
        assert!(parse_exact_time("x").is_err());
    }
}
