//! The shared-variable store with `b`-bound enforcement.

use std::collections::BTreeSet;

use session_types::{Error, ProcessId, Result, VarId};

/// The set `X` of shared variables of a shared-memory system, together with
/// the dynamic enforcement of the fan-in bound `b`: at most `b` *distinct*
/// processes may ever access any single variable (§2.1.1).
///
/// The bound is enforced at access time rather than at wiring time so that
/// even dynamically misbehaving algorithms (e.g. a process that suddenly
/// targets a foreign variable) are caught — this is the substrate's
/// failure-injection surface, exercised by negative tests.
///
/// # Examples
///
/// ```
/// use session_smm::SharedMemory;
/// use session_types::{ProcessId, VarId};
///
/// # fn main() -> Result<(), session_types::Error> {
/// let mut mem = SharedMemory::new(vec![0u32, 10], 2);
/// let x0 = VarId::new(0);
/// mem.access(ProcessId::new(0), x0, |v| *v += 1)?;
/// mem.access(ProcessId::new(1), x0, |v| *v += 1)?;
/// assert_eq!(mem.value(x0), &2);
/// // A third distinct accessor violates b = 2:
/// assert!(mem.access(ProcessId::new(2), x0, |_| ()).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SharedMemory<V> {
    values: Vec<V>,
    accessors: Vec<BTreeSet<ProcessId>>,
    b: usize,
}

impl<V> SharedMemory<V> {
    /// Creates a store with the given initial values and fan-in bound `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b < 2`; with fewer than two accessors per variable no two
    /// processes could ever communicate.
    pub fn new(initial_values: Vec<V>, b: usize) -> SharedMemory<V> {
        assert!(b >= 2, "shared memory requires b >= 2");
        let accessors = initial_values.iter().map(|_| BTreeSet::new()).collect();
        SharedMemory {
            values: initial_values,
            accessors,
            b,
        }
    }

    /// The number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the store has no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The fan-in bound `b`.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The current value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: VarId) -> &V {
        &self.values[var.index()]
    }

    /// All current values, in variable order.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The set of processes that have accessed `var` so far.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn accessors(&self, var: VarId) -> &BTreeSet<ProcessId> {
        &self.accessors[var.index()]
    }

    /// Performs one atomic read-modify-write of `var` by `process`.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownId`] if `var` does not exist.
    /// * [`Error::BBoundViolation`] if `process` would become the
    ///   `(b + 1)`-th distinct accessor of `var`; the variable is not
    ///   modified in that case.
    pub fn access<F>(&mut self, process: ProcessId, var: VarId, f: F) -> Result<()>
    where
        F: FnOnce(&mut V),
    {
        let idx = var.index();
        if idx >= self.values.len() {
            return Err(Error::unknown_id(format!("variable {var}")));
        }
        let accessors = &mut self.accessors[idx];
        if !accessors.contains(&process) {
            if accessors.len() >= self.b {
                return Err(Error::BBoundViolation {
                    var,
                    bound: self.b,
                    process,
                });
            }
            accessors.insert(process);
        }
        f(&mut self.values[idx]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn read_modify_write_is_atomic_per_call() {
        let mut mem = SharedMemory::new(vec![1u64], 2);
        mem.access(p(0), VarId::new(0), |v| *v = *v * 10 + 3)
            .unwrap();
        assert_eq!(mem.value(VarId::new(0)), &13);
    }

    #[test]
    fn b_bound_counts_distinct_processes_only() {
        let mut mem = SharedMemory::new(vec![0u8], 2);
        let x = VarId::new(0);
        for _ in 0..5 {
            mem.access(p(0), x, |v| *v += 1).unwrap(); // repeats are fine
        }
        mem.access(p(1), x, |v| *v += 1).unwrap();
        let err = mem.access(p(2), x, |v| *v += 1).unwrap_err();
        assert!(matches!(err, Error::BBoundViolation { bound: 2, .. }));
        // The rejected access must not have modified the value.
        assert_eq!(mem.value(x), &6);
        assert_eq!(mem.accessors(x).len(), 2);
    }

    #[test]
    fn larger_b_allows_more_accessors() {
        let mut mem = SharedMemory::new(vec![0u8], 3);
        let x = VarId::new(0);
        for i in 0..3 {
            mem.access(p(i), x, |v| *v += 1).unwrap();
        }
        assert!(mem.access(p(3), x, |v| *v += 1).is_err());
        assert_eq!(mem.b(), 3);
    }

    #[test]
    fn unknown_variable_is_reported() {
        let mut mem = SharedMemory::new(vec![0u8], 2);
        let err = mem.access(p(0), VarId::new(5), |_| ()).unwrap_err();
        assert!(matches!(err, Error::UnknownId { .. }));
    }

    #[test]
    #[should_panic(expected = "b >= 2")]
    fn b_below_two_panics() {
        let _ = SharedMemory::new(vec![0u8], 1);
    }

    #[test]
    fn len_and_values() {
        let mem = SharedMemory::new(vec![7u8, 8, 9], 2);
        assert_eq!(mem.len(), 3);
        assert!(!mem.is_empty());
        assert_eq!(mem.values(), &[7, 8, 9]);
        let empty: SharedMemory<u8> = SharedMemory::new(vec![], 2);
        assert!(empty.is_empty());
    }
}
