//! Positive: a raw wall-clock read outside any allowlisted module.
use std::time::Instant;

fn main() {
    let started = Instant::now();
    let _ = started;
}
