//! Adversarial-peer tests: the isolation invariant under real sockets.
//!
//! The invariant (DESIGN.md §16): a misbehaving or slow client must
//! never stall an honest session. Each test runs an honest client and
//! an offender against one service on loopback and asserts both sides —
//! the honest session closes within its Table 1 bound, and the offender
//! is throttled, then banned.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use session_core::bounds::periodic_mp_upper;
use session_serve::wire::MAX_PAYLOAD;
use session_serve::{
    ClientFrame, ConformanceVerdict, RejectCode, ServeClient, ServeConfig, Server, ServerFrame,
};
use session_types::{Dur, TimingModel};

const FRAME_TIMEOUT: Duration = Duration::from_secs(15);

/// The service's Table 1 close bound for a periodic `(s, ·)` session,
/// in microseconds: `s·c2 + d2` nominal units (service constants
/// `c2 = 2`, `d2 = 4`), plus one `c2` step of grace for the final
/// quiescence-observing step.
fn periodic_bound_us(s: u64, unit_us: u32) -> u64 {
    let bound = periodic_mp_upper(s, Dur::from_int(2), Dur::from_int(4)) + Dur::from_int(2);
    (bound.to_f64() * f64::from(unit_us)).ceil() as u64
}

/// Reads one server frame from a raw stream (no client machinery).
fn read_raw_frame(stream: &mut TcpStream, timeout: Duration) -> Option<ServerFrame> {
    stream.set_read_timeout(Some(timeout)).unwrap();
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).ok()?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > MAX_PAYLOAD {
        return None;
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    ServerFrame::decode(&payload).ok()
}

/// Polls until a fresh connection from this (banned) address is greeted
/// with `Bye{Banned}`.
fn wait_for_ban(server: &Server, deadline: Duration) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if let Ok(mut probe) = TcpStream::connect(server.addr()) {
            if let Some(ServerFrame::Bye { code }) =
                read_raw_frame(&mut probe, Duration::from_millis(500))
            {
                if code == RejectCode::Banned {
                    return true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// Opens one periodic session on `client` and asserts it closes within
/// its nominal Table 1 bound (and a generous wall-clock envelope).
fn close_honest_session(client: &mut ServeClient, req: u64, unit_us: u32) {
    client
        .open(req, TimingModel::Periodic, 2, 2, unit_us, 0xF00D + req)
        .unwrap();
    client.flush().unwrap();
    let bound_us = periodic_bound_us(2, unit_us);
    let deadline = Instant::now() + FRAME_TIMEOUT;
    loop {
        assert!(Instant::now() < deadline, "honest session never closed");
        match client.recv_timeout(FRAME_TIMEOUT) {
            Some(ServerFrame::Opened { .. }) => {}
            Some(ServerFrame::Closed {
                sessions,
                conformance,
                nominal_close_us,
                elapsed_us,
                ..
            }) => {
                assert_eq!(conformance, ConformanceVerdict::Pass);
                assert!(sessions >= 2);
                assert!(
                    nominal_close_us <= bound_us,
                    "nominal close {nominal_close_us}us exceeds Table 1 bound {bound_us}us"
                );
                // Wall-clock liveness: scheduling slack on a loaded
                // host, but nowhere near a stall.
                assert!(
                    elapsed_us <= bound_us + 5_000_000,
                    "honest close took {elapsed_us}us (bound {bound_us}us + 5s slack)"
                );
                return;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

#[test]
fn readless_peer_is_banned_and_honest_sessions_close_in_bound() {
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        shards: 1,
        max_sessions_per_shard: 64,
        sample_every: 1,
        egress_capacity: 8,
        ban_threshold: 8,
        tick_us: 500,
        ..ServeConfig::default()
    })
    .unwrap();

    // The honest client connects before the offender poisons the shared
    // loopback address (bans are per-IP, existing connections survive).
    let mut honest = ServeClient::connect(server.addr()).unwrap();
    honest.hello(0, Duration::from_secs(5)).unwrap();

    // The offender authenticates, then floods Pings without ever
    // reading. Once the kernel buffers fill, its writer stalls, its
    // bounded egress queue overflows, and the drops score it past the
    // ban threshold — all without any shard blocking.
    let addr = server.addr();
    let flooder = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        let hello = ClientFrame::Hello { token: 0 }.encode();
        bytes.extend_from_slice(&(hello.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&hello);
        for nonce in 0..40_000u64 {
            let ping = ClientFrame::Ping { nonce }.encode();
            bytes.extend_from_slice(&(ping.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&ping);
        }
        // The write itself may die mid-stream once the server cuts the
        // banned connection; that is the expected outcome.
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
        stream
    });

    // While the flood is in progress, honest sessions keep closing
    // within their model bound.
    close_honest_session(&mut honest, 1, 20_000);
    let _offender_stream = flooder.join().unwrap();
    assert!(
        wait_for_ban(&server, Duration::from_secs(20)),
        "readless peer was never banned"
    );
    // Still true after the ban.
    close_honest_session(&mut honest, 2, 20_000);

    drop(honest);
    let report = server.shutdown();
    let m = &report.metrics;
    assert!(
        m.counter("serve.frames_dropped") > 0,
        "egress never overflowed"
    );
    assert!(m.counter("serve.peers_banned") >= 1);
    assert_eq!(m.counter("serve.conformance_failures"), 0);
    assert_eq!(m.counter("serve.sessions_closed"), 2);
}

#[test]
fn open_rate_violator_is_throttled_then_banned() {
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        shards: 1,
        max_sessions_per_shard: 64,
        sample_every: 1,
        open_rate: 1.0,
        open_burst: 3.0,
        ban_threshold: 6,
        tick_us: 500,
        ..ServeConfig::default()
    })
    .unwrap();

    let mut honest = ServeClient::connect(server.addr()).unwrap();
    honest.hello(0, Duration::from_secs(5)).unwrap();

    // The offender burns its 3-token burst, then keeps going: each
    // rate-limited Open scores 2 points, so the 3rd violation (score 6)
    // bans the address.
    let mut offender = ServeClient::connect(server.addr()).unwrap();
    offender.hello(0, Duration::from_secs(5)).unwrap();
    for req in 0..10u64 {
        offender
            .open(req, TimingModel::Periodic, 2, 2, 1000, req)
            .unwrap();
    }
    offender.flush().unwrap();
    let mut rate_limited = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match offender.recv_timeout(Duration::from_millis(500)) {
            Some(ServerFrame::Reject {
                code: RejectCode::RateLimited,
                ..
            }) => {
                rate_limited += 1;
            }
            Some(_) => {}
            // Channel drained and the connection was cut by the ban.
            None => break,
        }
    }
    assert!(
        rate_limited >= 1,
        "offender was never throttled before the ban"
    );
    assert!(
        wait_for_ban(&server, Duration::from_secs(10)),
        "rate violator was never banned"
    );

    // The honest client's existing connection is unaffected.
    close_honest_session(&mut honest, 100, 20_000);

    drop(honest);
    drop(offender);
    let report = server.shutdown();
    let m = &report.metrics;
    assert!(m.counter("serve.rate_limited") >= 2);
    assert!(m.counter("serve.peers_banned") >= 1);
    assert_eq!(m.counter("serve.conformance_failures"), 0);
    assert!(m.counter("serve.sessions_closed") >= 1);
}
