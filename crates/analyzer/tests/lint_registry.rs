//! The lint-code registry gate's test bed: every stable `SAxxx` code has
//! at least one *positive* test (an input that provably produces the
//! code) and one *negative* test (a near-miss input that provably does
//! not) in this file, under the greppable naming convention
//! `saXXX_positive_*` / `saXXX_negative_*`. `scripts/static-analysis.sh`
//! verifies the convention covers the whole registry, so a new code
//! cannot land without both directions demonstrated.
//!
//! Positives use the cheapest honest route to each code: whole-target
//! analysis where a registry witness exists (`SA001`, `SA003`), a
//! hand-built machine where the registry is deliberately clean of the
//! code (`SA002`, `SA005`), the public edge predicate for conditions
//! real algorithms cannot exhibit (`SA004`'s un-idle rule is closed out
//! by construction in every shipped port), trace fixtures for the
//! happens-before codes (`SA007`–`SA009`), and the symbolic layer's
//! public entry points for `SA010`–`SA012`.

use session_analyzer::diag::ALL_CODES;
use session_analyzer::explore::{check_step, explore, AnyMachine, SessionCounter};
use session_analyzer::machine::{GapMode, MpAlgo, MpMachine, SmAlgo, SmMachine, StepInfo};
use session_analyzer::zones::{analyze_symbolic, coverage_finding, dead_branch_findings};
use session_analyzer::{
    analyze_target, analyze_target_symbolic, check_timing, hb::analyze_trace_jsonl, target_space,
    LintCode, Report, Scope, TimingParams,
};
use session_core::algorithms::{SporadicMpPort, SyncSmPort};
use session_smm::RelayProcess;
use session_types::{Dur, KnownBounds, ProcessId, Time, TimingModel, VarId};

fn d(v: i128) -> Dur {
    Dur::from_int(v)
}

fn report_codes(report: &Report) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = report.findings.iter().map(|f| f.code.code()).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

// ---------------------------------------------------------------- SA001

#[test]
fn sa001_positive_naive_witness_reaches_quiescence_short() {
    let report = analyze_target("NaivePeriodicSm").expect("registry target");
    assert_eq!(report_codes(&report), ["SA001"]);
}

#[test]
fn sa001_negative_periodic_algorithm_delivers_every_session() {
    let report = analyze_target("PeriodicSm").expect("registry target");
    assert_eq!(report_codes(&report), Vec::<&str>::new());
}

// ---------------------------------------------------------------- SA002

/// Two synchronous ports aimed at the *same* shared variable: the second
/// accessor exceeds `b = 1`.
fn shared_variable_machine(b: usize) -> AnyMachine {
    let algos = vec![
        SmAlgo::Sync(SyncSmPort::new(VarId::new(0), 1)),
        SmAlgo::Sync(SyncSmPort::new(VarId::new(0), 1)),
    ];
    AnyMachine::Sm(SmMachine::new(
        algos,
        1,
        b,
        2,
        GapMode::PerStep(vec![d(1)]),
        vec![Time::ZERO + d(1), Time::ZERO + d(1)],
    ))
}

#[test]
fn sa002_positive_second_accessor_breaks_the_b_bound() {
    let exploration = explore(&[shared_variable_machine(1)], 2, 1, 12);
    assert!(
        exploration
            .violations
            .iter()
            .any(|v| v.code == LintCode::BBoundViolation),
        "{:?}",
        exploration.violations
    );
}

#[test]
fn sa002_negative_fan_in_within_b_is_clean() {
    let exploration = explore(&[shared_variable_machine(2)], 2, 1, 12);
    assert!(
        !exploration
            .violations
            .iter()
            .any(|v| v.code == LintCode::BBoundViolation),
        "{:?}",
        exploration.violations
    );
}

// ---------------------------------------------------------------- SA003

/// The erratum scope of `paper_verbatim.rs`, reduced to its cheapest
/// shape: `u = 0` so `B = 1`, one fast process among three, a single
/// admissible delay.
fn sporadic_roots(verbatim: bool) -> Vec<AnyMachine> {
    let (n, s) = (3, 3);
    let make = |i: usize| {
        let (p, c1, dd) = (ProcessId::new(i), d(1), d(2));
        if verbatim {
            SporadicMpPort::paper_verbatim(p, s, n, c1, dd, dd)
        } else {
            SporadicMpPort::new(p, s, n, c1, dd, dd)
        }
        .expect("valid sporadic parameters")
    };
    let algos: Vec<MpAlgo> = (0..n).map(|i| MpAlgo::Sporadic(make(i))).collect();
    let first_steps = vec![Time::ZERO + d(1); n];
    [vec![d(1), d(6), d(6)], vec![d(6), d(6), d(6)]]
        .into_iter()
        .map(|assignment| {
            AnyMachine::Mp(MpMachine::new(
                algos.clone(),
                GapMode::FixedPerProcess(assignment),
                vec![d(2)],
                first_steps.clone(),
            ))
        })
        .collect()
}

#[test]
fn sa003_positive_paper_verbatim_sporadic_claims_stale_sessions() {
    let exploration = explore(&sporadic_roots(true), 3, 3, 96);
    assert!(
        exploration
            .violations
            .iter()
            .any(|v| v.code == LintCode::StaleEvidence),
        "{:?}",
        exploration.violations
    );
}

#[test]
fn sa003_negative_corrected_sporadic_never_overclaims() {
    let exploration = explore(&sporadic_roots(false), 3, 3, 96);
    assert!(
        exploration.violations.is_empty(),
        "{:?}",
        exploration.violations
    );
}

// ---------------------------------------------------------------- SA004

/// A hand-made edge, because every shipped port keeps its idle states
/// closed under steps by construction: the registry cannot exhibit the
/// un-idle rule, so the public edge predicate is tested directly.
fn idle_edge(was_idle: bool, idle_after: bool) -> Option<(LintCode, String)> {
    let info = StepInfo {
        time: Time::ZERO + d(1),
        process: ProcessId::new(0),
        port: None,
        was_idle,
        idle_after,
        is_process_step: true,
        b_violation: None,
    };
    let machine = shared_variable_machine(2);
    let counter = SessionCounter::new(2, 1);
    check_step(&info, &machine, &counter)
}

#[test]
fn sa004_positive_un_idled_process_is_inadmissible() {
    let (code, message) = idle_edge(true, false).expect("un-idle must be flagged");
    assert_eq!(code, LintCode::InadmissibleStep);
    assert!(message.contains("un-idled"), "{message}");
}

#[test]
fn sa004_negative_idle_preserving_steps_are_admissible() {
    assert_eq!(idle_edge(true, true), None);
    assert_eq!(idle_edge(false, false), None);
    assert_eq!(idle_edge(false, true), None);
}

// ---------------------------------------------------------------- SA005

/// A relay hosted as the only "port": relays never idle, so the machine
/// can never quiesce, and with nothing new to flood its normalized state
/// repeats after one cycle — the admissible lasso `SA005` names.
fn relay_loop_machine() -> AnyMachine {
    let algos = vec![SmAlgo::Relay(RelayProcess::new(vec![VarId::new(0)]))];
    AnyMachine::Sm(SmMachine::new(
        algos,
        1,
        1,
        1,
        GapMode::PerStep(vec![d(1)]),
        vec![Time::ZERO + d(1)],
    ))
}

#[test]
fn sa005_positive_never_idle_relay_loops_without_quiescing() {
    let exploration = explore(&[relay_loop_machine()], 1, 1, 12);
    assert!(
        exploration
            .violations
            .iter()
            .any(|v| v.code == LintCode::NonTermination),
        "{:?}",
        exploration.violations
    );
}

#[test]
fn sa005_negative_terminating_algorithm_has_no_lasso() {
    let report = analyze_target("SyncSm").expect("registry target");
    assert!(
        !report_codes(&report).contains(&"SA005"),
        "{:?}",
        report_codes(&report)
    );
}

// ---------------------------------------------------------------- SA006

#[test]
fn sa006_positive_inverted_windows_are_infeasible() {
    let params = TimingParams {
        model: TimingModel::SemiSynchronous,
        c1: d(4),
        c2: d(1),
        d1: d(5),
        d2: d(2),
    };
    let findings = check_timing(&params);
    assert_eq!(findings.len(), 2);
    assert!(findings
        .iter()
        .all(|f| f.code == LintCode::InfeasibleTiming));
}

#[test]
fn sa006_negative_width_zero_windows_are_feasible() {
    let params = TimingParams {
        model: TimingModel::SemiSynchronous,
        c1: d(2),
        c2: d(2),
        d1: d(3),
        d2: d(3),
    };
    assert!(check_timing(&params).is_empty());
}

// ------------------------------------------------- SA007/SA008/SA009

fn meta(n: usize, model: Option<&str>) -> String {
    let model = model.map_or(String::new(), |m| format!(r#","model":"{m}""#));
    format!(r#"{{"type":"meta","title":"t","num_processes":{n},"events":0,"messages":0{model}}}"#)
}

fn step(process: usize, t: &str, port: usize, broadcast: bool) -> String {
    format!(
        r#"{{"type":"event","seq":0,"t":"{t}","t_ms":0,"process":{process},"kind":"step","received":0,"broadcast":{broadcast},"port":{port},"idle_after":false}}"#
    )
}

fn deliver(process: usize, t: &str, msg: u64) -> String {
    format!(
        r#"{{"type":"event","seq":0,"t":"{t}","t_ms":0,"process":{process},"kind":"deliver","msg":{msg},"idle_after":false}}"#
    )
}

fn message(msg: u64, from: usize, to: usize, sent: &str, delivered: &str) -> String {
    format!(
        r#"{{"type":"message","msg":{msg},"from":{from},"to":{to},"sent_at":"{sent}","delivered_at":"{delivered}"}}"#
    )
}

/// A two-process trace whose recorded order agrees with causality and
/// whose session close is covered by both port clocks — clean under all
/// three happens-before rules.
fn conformant_trace() -> String {
    [
        meta(2, None),
        step(0, "1", 0, true),
        deliver(1, "2", 0),
        step(1, "2", 1, false),
        message(0, 0, 1, "1", "2"),
        r#"{"type":"session","index":1,"closed_at":"2","closed_at_ms":2}"#.to_owned(),
    ]
    .join("\n")
}

fn trace_codes(text: &str) -> Vec<&'static str> {
    let analysis = analyze_trace_jsonl(text, "t", None).expect("parses");
    report_codes(&analysis.report)
}

#[test]
fn sa007_positive_causally_inverted_serialization_races() {
    // The delivery serializes *before* the broadcast that caused it.
    let text = [
        meta(2, None),
        deliver(0, "1", 0),
        step(0, "2", 0, false),
        step(1, "3", 1, true),
        message(0, 1, 0, "3", "1"),
    ]
    .join("\n");
    assert_eq!(trace_codes(&text), ["SA007"]);
}

#[test]
fn sa007_negative_causal_serialization_is_clean() {
    assert_eq!(trace_codes(&conformant_trace()), Vec::<&str>::new());
}

#[test]
fn sa008_positive_close_before_full_port_cover() {
    let text = [
        meta(2, None),
        step(0, "1", 0, false),
        step(1, "2", 1, false),
        r#"{"type":"session","index":1,"closed_at":"1","closed_at_ms":1}"#.to_owned(),
    ]
    .join("\n");
    assert_eq!(trace_codes(&text), ["SA008"]);
}

#[test]
fn sa008_negative_dominated_close_is_clean() {
    assert_eq!(trace_codes(&conformant_trace()), Vec::<&str>::new());
}

#[test]
fn sa009_positive_lockstep_gaps_refute_an_async_claim() {
    let mut lines = vec![meta(2, Some("asynchronous"))];
    for t in 1..=3 {
        lines.push(step(0, &t.to_string(), 0, false));
        lines.push(step(1, &t.to_string(), 1, false));
    }
    assert_eq!(trace_codes(&lines.join("\n")), ["SA009"]);
}

#[test]
fn sa009_negative_lockstep_gaps_match_a_synchronous_claim() {
    let mut lines = vec![meta(2, Some("synchronous"))];
    for t in 1..=3 {
        lines.push(step(0, &t.to_string(), 0, false));
        lines.push(step(1, &t.to_string(), 1, false));
    }
    assert_eq!(trace_codes(&lines.join("\n")), Vec::<&str>::new());
}

// ---------------------------------------------------------------- SA010

fn semisync_scope(gaps: Vec<Dur>, delays: Vec<Dur>) -> Scope {
    Scope {
        n: 2,
        s: 2,
        b: 2,
        model: TimingModel::SemiSynchronous,
        gaps,
        delays,
        max_depth: 24,
    }
}

#[test]
fn sa010_positive_menu_entry_outside_the_model_window_is_dead() {
    // Step window [1, 2] but the menu promises a gap of 5: registry
    // scopes are SA010-clean by construction, so a dead branch has to be
    // planted by hand.
    let bounds = KnownBounds::semi_synchronous(d(1), d(2), d(1)).expect("valid bounds");
    let scope = semisync_scope(vec![d(1), d(5)], vec![Dur::ZERO, d(1)]);
    let findings = dead_branch_findings(&scope, &bounds);
    assert!(
        findings
            .iter()
            .any(|(code, message)| *code == LintCode::DeadTimingBranch
                && message.contains("gap menu entry 5")),
        "{findings:?}"
    );
}

#[test]
fn sa010_negative_in_window_menus_are_alive() {
    let bounds = KnownBounds::semi_synchronous(d(1), d(2), d(1)).expect("valid bounds");
    let scope = semisync_scope(vec![d(1), d(2)], vec![Dur::ZERO, d(1)]);
    assert!(dead_branch_findings(&scope, &bounds).is_empty());
    // And the registry's own scopes stay alive end to end.
    let space = target_space("SemiSyncSm").expect("registry target");
    let analysis = analyze_symbolic(&space.roots, &space.scope, &space.bounds, None);
    assert!(
        !analysis
            .findings
            .iter()
            .any(|(code, _)| *code == LintCode::DeadTimingBranch),
        "{:?}",
        analysis.findings
    );
}

// ---------------------------------------------------------------- SA011

#[test]
fn sa011_positive_worst_close_over_a_tight_bound() {
    // A(syn)'s true worst close is c2·s = 3; demand 1 and it must fire.
    let space = target_space("SyncMp").expect("registry target");
    let analysis = analyze_symbolic(
        &space.roots,
        &space.scope,
        &space.bounds,
        Some((d(1), "1".to_owned())),
    );
    let sa011 = analysis
        .findings
        .iter()
        .find(|(code, _)| *code == LintCode::SymbolicBoundExceeded);
    let (_, message) = sa011.expect("bound of 1 must be exceeded");
    assert!(message.contains("Table 1 bound"), "{message}");
}

#[test]
fn sa011_negative_table1_bound_is_met() {
    let report = analyze_target_symbolic("SyncMp").expect("registry target");
    assert_eq!(report_codes(&report), Vec::<&str>::new());
}

// ---------------------------------------------------------------- SA012

#[test]
fn sa012_positive_uncovered_explicit_control_diverges() {
    let zone = [1u64, 2].into_iter().collect();
    let explicit = [1u64, 2, 3].into_iter().collect();
    let (code, message) = coverage_finding(&zone, &explicit).expect("3 is uncovered");
    assert_eq!(code, LintCode::SymbolicDivergence);
    assert!(message.contains("1 control states"), "{message}");
}

#[test]
fn sa012_negative_hull_superset_is_legitimate_over_approximation() {
    // Zone-only controls are the hull exceeding the sampled menus — not
    // a divergence. Equality is clean too.
    let zone = [1u64, 2, 3, 4].into_iter().collect();
    let explicit = [1u64, 2].into_iter().collect();
    assert_eq!(coverage_finding(&zone, &explicit), None);
    assert_eq!(coverage_finding(&explicit, &explicit), None);
}

// -------------------------------------------------------------- closure

/// The registry itself: every stable code has a positive and a negative
/// test above; a new `LintCode` variant fails this match until its tests
/// and the naming convention are extended.
#[test]
fn every_lint_code_has_positive_and_negative_coverage_here() {
    for code in ALL_CODES {
        match code {
            LintCode::SessionDeficit
            | LintCode::BBoundViolation
            | LintCode::StaleEvidence
            | LintCode::InadmissibleStep
            | LintCode::NonTermination
            | LintCode::InfeasibleTiming
            | LintCode::SessionRace
            | LintCode::UnorderedSessionClose
            | LintCode::ModelMismatch
            | LintCode::DeadTimingBranch
            | LintCode::SymbolicBoundExceeded
            | LintCode::SymbolicDivergence => {}
        }
    }
}
