//! Lint codes, severities, per-rule configuration and report rendering.
//!
//! Every finding the checker can produce carries one of six stable codes
//! (`SA001`–`SA006`). Codes never change meaning; new rules get new codes.
//! Reports render as GitHub-flavored markdown tables (the same dialect as
//! `session-bench`'s experiment reports) or as CSV.

use std::fmt;

/// The stable lint codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `SA001 session-deficit`: an admissible schedule reaches quiescence
    /// with fewer than `s` sessions.
    SessionDeficit,
    /// `SA002 b-bound-violation`: more than `b` distinct processes access
    /// one shared variable.
    BBoundViolation,
    /// `SA003 stale-evidence`: a process's claimed session count exceeds
    /// the number of sessions that actually happened (phantom
    /// certification from stale freshness evidence).
    StaleEvidence,
    /// `SA004 inadmissible-step`: the execution violates the timing
    /// model's admissibility conditions, un-idles an idle process, or
    /// diverges from the reference engine under replay.
    InadmissibleStep,
    /// `SA005 non-termination`: an admissible schedule loops without ever
    /// reaching quiescence (a lasso), or exploration exhausts its depth
    /// budget before quiescence.
    NonTermination,
    /// `SA006 infeasible-timing`: an MP configuration's `[c1, c2]` /
    /// `[d1, d2]` parameters admit no real-clock pacing — `d2 < d1`,
    /// `c2 < c1`, or a zero-width sporadic minimum separation. Shared by
    /// the simulator CLI and the `session-net` config validation.
    InfeasibleTiming,
}

/// All codes, in code order.
pub const ALL_CODES: [LintCode; 6] = [
    LintCode::SessionDeficit,
    LintCode::BBoundViolation,
    LintCode::StaleEvidence,
    LintCode::InadmissibleStep,
    LintCode::NonTermination,
    LintCode::InfeasibleTiming,
];

impl LintCode {
    /// The stable `SAxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::SessionDeficit => "SA001",
            LintCode::BBoundViolation => "SA002",
            LintCode::StaleEvidence => "SA003",
            LintCode::InadmissibleStep => "SA004",
            LintCode::NonTermination => "SA005",
            LintCode::InfeasibleTiming => "SA006",
        }
    }

    /// The short kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::SessionDeficit => "session-deficit",
            LintCode::BBoundViolation => "b-bound-violation",
            LintCode::StaleEvidence => "stale-evidence",
            LintCode::InadmissibleStep => "inadmissible-step",
            LintCode::NonTermination => "non-termination",
            LintCode::InfeasibleTiming => "infeasible-timing",
        }
    }

    /// The default severity: every rule denies by default — each one
    /// witnesses a violated theorem, not a style preference.
    pub fn default_severity(self) -> Severity {
        Severity::Deny
    }

    /// Parses `"SA001"` or `"session-deficit"` (case-insensitive).
    pub fn parse(text: &str) -> Option<LintCode> {
        let lower = text.to_ascii_lowercase();
        ALL_CODES
            .into_iter()
            .find(|c| c.code().to_ascii_lowercase() == lower || c.name() == lower)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// How a finding is treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed entirely: not reported, does not affect the exit status.
    Allow,
    /// Reported, but does not make the run fail.
    Warn,
    /// Reported and makes the run fail.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Per-rule severity overrides.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    overrides: Vec<(LintCode, Severity)>,
}

impl LintConfig {
    /// The default configuration (every rule at its default severity).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Sets `code` to `severity`, replacing any earlier override.
    pub fn set(&mut self, code: LintCode, severity: Severity) {
        self.overrides.retain(|(c, _)| *c != code);
        self.overrides.push((code, severity));
    }

    /// The effective severity of `code`.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .iter()
            .find(|(c, _)| *c == code)
            .map_or_else(|| code.default_severity(), |&(_, sev)| sev)
    }
}

/// One finding: a rule fired against a target at a scope, with a
/// deterministic reproduction.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: LintCode,
    /// The analysis target (e.g. `"NaivePeriodicSm"`).
    pub target: String,
    /// One-line description of the violation.
    pub message: String,
    /// The scope line (`n`, `s`, `b`, menus) the violation was found at.
    pub scope: String,
    /// Deterministic reproduction: the branch-choice path from the initial
    /// state, so the exact counterexample can be replayed.
    pub repro: String,
    /// The counterexample rendered as a timeline (empty when the rule has
    /// no trace to show).
    pub counterexample: String,
}

/// The outcome of analyzing one or more targets.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Targets analyzed, in order, with the number of states each
    /// exploration visited.
    pub targets: Vec<(String, u64)>,
    /// Findings, in discovery order.
    pub findings: Vec<Diagnostic>,
}

impl Report {
    /// Appends another report.
    pub fn merge(&mut self, other: Report) {
        self.targets.extend(other.targets);
        self.findings.extend(other.findings);
    }

    /// Findings at the given severity or above under `config`, counting
    /// only rules that are not allowed.
    pub fn reported<'a>(&'a self, config: &'a LintConfig) -> impl Iterator<Item = &'a Diagnostic> {
        self.findings
            .iter()
            .filter(|d| config.severity(d.code) != Severity::Allow)
    }

    /// Returns `true` if any reported finding is deny-severity.
    pub fn has_denials(&self, config: &LintConfig) -> bool {
        self.findings
            .iter()
            .any(|d| config.severity(d.code) == Severity::Deny)
    }

    /// Renders the report as GitHub-flavored markdown (the bench-report
    /// dialect: `## section`, `| a | b |` tables).
    pub fn to_markdown(&self, config: &LintConfig) -> String {
        let mut out = String::from("## Analyzer report\n\n");
        out.push_str("| target | states explored | findings |\n|---|---|---|\n");
        for (target, states) in &self.targets {
            let count = self
                .reported(config)
                .filter(|d| &d.target == target)
                .count();
            out.push_str(&format!("| {target} | {states} | {count} |\n"));
        }
        let reported: Vec<&Diagnostic> = self.reported(config).collect();
        if reported.is_empty() {
            out.push_str("\nNo findings.\n");
            return out;
        }
        out.push_str("\n## Findings\n\n");
        out.push_str("| code | severity | target | message |\n|---|---|---|---|\n");
        for d in &reported {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                d.code,
                config.severity(d.code),
                d.target,
                d.message
            ));
        }
        for d in &reported {
            out.push_str(&format!(
                "\n### {} on {}\n\n{}\n\nScope: {}\n\nRepro (branch choices from the initial state): `{}`\n",
                d.code, d.target, d.message, d.scope, d.repro
            ));
            if !d.counterexample.is_empty() {
                out.push_str(&format!("\n```text\n{}\n```\n", d.counterexample));
            }
        }
        out
    }

    /// Renders the findings as CSV (`code,severity,target,scope,message`).
    pub fn to_csv(&self, config: &LintConfig) -> String {
        let mut out = String::from("code,severity,target,scope,message\n");
        for d in self.reported(config) {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                d.code.code(),
                config.severity(d.code),
                d.target,
                csv_escape(&d.scope),
                csv_escape(&d.message)
            ));
        }
        out
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_parse() {
        for code in ALL_CODES {
            assert_eq!(LintCode::parse(code.code()), Some(code));
            assert_eq!(LintCode::parse(code.name()), Some(code));
            assert_eq!(LintCode::parse(&code.code().to_lowercase()), Some(code));
        }
        assert_eq!(LintCode::parse("SA999"), None);
    }

    #[test]
    fn config_overrides_win() {
        let mut config = LintConfig::new();
        assert_eq!(config.severity(LintCode::SessionDeficit), Severity::Deny);
        config.set(LintCode::SessionDeficit, Severity::Allow);
        assert_eq!(config.severity(LintCode::SessionDeficit), Severity::Allow);
        config.set(LintCode::SessionDeficit, Severity::Warn);
        assert_eq!(config.severity(LintCode::SessionDeficit), Severity::Warn);
    }

    fn sample_report() -> Report {
        Report {
            targets: vec![("T".to_string(), 42)],
            findings: vec![Diagnostic {
                code: LintCode::SessionDeficit,
                target: "T".to_string(),
                message: "only 1 of 2 sessions".to_string(),
                scope: "n=2 s=2".to_string(),
                repro: "0.1.0".to_string(),
                counterexample: "p0 | x".to_string(),
            }],
        }
    }

    #[test]
    fn allow_suppresses_findings_and_exit() {
        let report = sample_report();
        let mut config = LintConfig::new();
        assert!(report.has_denials(&config));
        config.set(LintCode::SessionDeficit, Severity::Allow);
        assert!(!report.has_denials(&config));
        assert_eq!(report.reported(&config).count(), 0);
        assert!(report.to_markdown(&config).contains("No findings."));
    }

    #[test]
    fn warn_reports_without_denying() {
        let report = sample_report();
        let mut config = LintConfig::new();
        config.set(LintCode::SessionDeficit, Severity::Warn);
        assert!(!report.has_denials(&config));
        assert_eq!(report.reported(&config).count(), 1);
    }

    #[test]
    fn markdown_includes_tables_and_counterexample() {
        let report = sample_report();
        let config = LintConfig::new();
        let md = report.to_markdown(&config);
        assert!(md.contains("| target | states explored | findings |"));
        assert!(md.contains("| SA001 session-deficit | deny | T | only 1 of 2 sessions |"));
        assert!(md.contains("```text\np0 | x\n```"));
        assert!(md.contains("Repro (branch choices from the initial state): `0.1.0`"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut report = sample_report();
        report.findings[0].message = "a, \"b\"".to_string();
        let csv = report.to_csv(&LintConfig::new());
        assert!(csv.contains("SA001,deny,T,n=2 s=2,\"a, \"\"b\"\"\""));
    }
}
