//! The pacer: realizes a timing model's step schedule on the real clock.
//!
//! Each process thread owns one [`Pacer`]. Per step it (1) advances a
//! *nominal* logical clock ([`session_pacing::NominalClock`]) by a gap
//! drawn from the model's rule — constant `c2` for synchronous, a
//! per-process constant period for periodic, a fresh sample from
//! `[c1, c2]` for semi-synchronous, a gap script or `>= c1` sample for
//! sporadic, the configured window for asynchronous — and (2) sleeps
//! until the wall-clock instant that nominal time maps to
//! (`origin + nominal * unit`).
//!
//! The gap rules and the nominal clock are transport-agnostic and live in
//! `session-pacing` (the serve time wheel drives the same clock without
//! any sleeping thread); this module adds only what is specific to the
//! thread-per-process runtime: the [`RealConfig`] adapter
//! ([`rule_for_process`]) and the wall-clock sleep.
//!
//! The *nominal* times are what the run records and what the conformance
//! harness verifies: they are admissible by construction (every gap is
//! drawn inside the model's window), while the physical wake-up jitter is
//! reported separately as pacer lag. Recording measured wake-up times
//! instead would be unverifiable — the periodic model's admissibility
//! check demands exactly constant gaps, which no OS scheduler delivers.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use session_pacing::{GapRule, NominalClock};
use session_types::{KnownBounds, Time};

use crate::config::RealConfig;

/// The rule `config` prescribes for process `index` under `bounds`.
///
/// `rng` is consumed only by the periodic model, which samples each
/// process's constant period from the configured `[c1, c2]` window once,
/// here.
pub fn rule_for_process(
    config: &RealConfig,
    bounds: &KnownBounds,
    index: usize,
    rng: &mut StdRng,
) -> GapRule {
    let script = config
        .sporadic_gaps
        .as_ref()
        .and_then(|g| g.get(&session_types::ProcessId::new(index)))
        .map(Vec::as_slice);
    GapRule::for_model(config.model, bounds, (config.c1, config.c2), script, rng)
}

/// One process's step clock: nominal logical times plus the mapping onto
/// wall-clock instants.
#[derive(Debug)]
pub struct Pacer {
    clock: NominalClock,
    unit: Duration,
    origin: Instant,
}

impl Pacer {
    /// Creates a pacer at nominal time 0 whose wall clock starts at
    /// `origin`.
    pub fn new(rule: GapRule, unit: Duration, origin: Instant) -> Pacer {
        Pacer {
            clock: NominalClock::new(rule),
            unit,
            origin,
        }
    }

    /// Advances the nominal clock to the next step time and returns it.
    /// The first step's gap is measured from time 0, matching the
    /// admissibility checker.
    pub fn next_time(&mut self, rng: &mut StdRng) -> Time {
        self.clock.next(rng)
    }

    /// Sleeps until the wall-clock instant nominal time `t` maps to, and
    /// returns the pacer lag — how far past the target the thread actually
    /// woke — in milliseconds.
    pub fn sleep_until(&self, t: Time) -> f64 {
        let target = self.origin + Duration::from_secs_f64(t.to_f64() * self.unit.as_secs_f64());
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        Instant::now()
            .saturating_duration_since(target)
            .as_secs_f64()
            * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use session_sim::seeded_rng;
    use session_types::{Dur, SessionSpec, TimingModel};

    fn config(model: TimingModel) -> RealConfig {
        RealConfig::new(model, SessionSpec::new(2, 2, 2).unwrap())
    }

    #[test]
    fn constant_rule_paces_exactly() {
        let mut pacer = Pacer::new(
            GapRule::Constant(Dur::from_int(2)),
            Duration::from_micros(10),
            Instant::now(),
        );
        let mut rng = seeded_rng(1);
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(2));
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(4));
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(6));
    }

    #[test]
    fn window_rule_stays_in_bounds() {
        let lo = Dur::ONE;
        let hi = Dur::from_int(3);
        let mut pacer = Pacer::new(
            GapRule::Window { lo, hi },
            Duration::from_micros(10),
            Instant::now(),
        );
        let mut rng = seeded_rng(7);
        let mut prev = Time::ZERO;
        for _ in 0..50 {
            let t = pacer.next_time(&mut rng);
            let gap = t - prev;
            assert!(gap >= lo && gap <= hi, "gap {gap} outside [{lo}, {hi}]");
            prev = t;
        }
    }

    #[test]
    fn script_rule_replays_then_repeats_the_tail() {
        let mut pacer = Pacer::new(
            GapRule::Script(vec![Dur::from_int(3), Dur::ONE]),
            Duration::from_micros(10),
            Instant::now(),
        );
        let mut rng = seeded_rng(1);
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(3));
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(4));
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(5));
        assert_eq!(pacer.next_time(&mut rng), Time::from_int(6));
    }

    #[test]
    fn periodic_rule_is_constant_per_process_within_the_window() {
        let cfg = config(TimingModel::Periodic);
        let bounds = cfg.bounds().unwrap();
        let mut rng = seeded_rng(3);
        for index in 0..4 {
            let rule = rule_for_process(&cfg, &bounds, index, &mut rng);
            let GapRule::Constant(period) = rule else {
                panic!("periodic rule must be constant");
            };
            assert!(period >= cfg.c1 && period <= cfg.c2);
        }
    }

    #[test]
    fn synchronous_rule_pins_the_gap_to_c2() {
        let cfg = config(TimingModel::Synchronous);
        let bounds = cfg.bounds().unwrap();
        let mut rng = seeded_rng(3);
        let rule = rule_for_process(&cfg, &bounds, 0, &mut rng);
        let GapRule::Constant(gap) = rule else {
            panic!("synchronous rule must be constant");
        };
        assert_eq!(gap, cfg.c2);
    }

    #[test]
    fn sporadic_gap_script_is_picked_up_per_process() {
        let mut cfg = config(TimingModel::Sporadic);
        let mut gaps = std::collections::BTreeMap::new();
        gaps.insert(
            session_types::ProcessId::new(0),
            vec![Dur::from_int(3), Dur::from_int(2)],
        );
        cfg.sporadic_gaps = Some(gaps);
        let bounds = cfg.bounds().unwrap();
        let mut rng = seeded_rng(3);
        let GapRule::Script(script) = rule_for_process(&cfg, &bounds, 0, &mut rng) else {
            panic!("scripted process must replay its script");
        };
        assert_eq!(script, vec![Dur::from_int(3), Dur::from_int(2)]);
        // The unscripted process falls back to the `>= c1` window.
        assert!(matches!(
            rule_for_process(&cfg, &bounds, 1, &mut rng),
            GapRule::Window { .. }
        ));
    }

    #[test]
    fn sleep_until_reaches_the_target() {
        let origin = Instant::now();
        let pacer = Pacer::new(
            GapRule::Constant(Dur::ONE),
            Duration::from_millis(1),
            origin,
        );
        let lag = pacer.sleep_until(Time::from_int(5));
        assert!(origin.elapsed() >= Duration::from_millis(5));
        assert!(lag >= 0.0);
    }
}
