#!/usr/bin/env bash
# Regenerates every experiment artifact recorded in EXPERIMENTS.md.
# Usage: scripts/regen-experiments.sh [output-dir]
#
# Hardened against stale output: `set -euo pipefail` aborts on the first
# failing step (including a failure on the left side of a `| tee`), all
# artifacts are generated into a temporary staging directory, and the
# staging directory is moved into place only after every generator
# succeeded. A failed run therefore leaves any previous artifacts exactly
# as they were instead of silently mixing fresh and stale tables.
set -Eeuo pipefail # -E so the ERR trap fires inside run_step
out="${1:-experiments-out}"
stage="$(mktemp -d "${TMPDIR:-/tmp}/regen-experiments.XXXXXX")"

current_step="(startup)"
on_err() {
    echo "regen-experiments: FAILED during: $current_step" >&2
    echo "regen-experiments: $out/ left untouched (partial output discarded: $stage)" >&2
}
trap on_err ERR
trap 'rm -rf "$stage"' EXIT

run_step() {
    current_step="$1"
    local bin="$2"
    local artifact="$3"
    echo "== $current_step =="
    cargo run -q -p session-bench --bin "$bin" | tee "$stage/$artifact"
}

run_step "Table 1"                                  table1                 table1.md
run_step "FIG-A: semi-synchronous crossover"        crossover              crossover.md
run_step "FIG-B: sporadic interpolation"            sporadic_sweep         sporadic_sweep.md
run_step "FIG-C: periodic vs semi-synchronous"      periodic_vs_semisync   periodic_vs_semisync.md
run_step "Lemma 4.4: contamination growth"          contamination_growth   contamination_growth.md
run_step "EXT-DIAM: point-to-point diameter factor" diameter_sweep         diameter_sweep.md
run_step "REAL: real-clock runs vs upper bounds"    realclock              realclock.md

current_step="moving artifacts into place"
mkdir -p "$out"
for f in "$stage"/*.md; do
    mv "$f" "$out/$(basename "$f")"
done

echo
echo "Artifacts written to $out/"
