//! FIG-B: the sporadic model interpolates between synchronous and
//! asynchronous behaviour as the delay window narrows.
//!
//! With `d2` fixed, sweep `d1` from 0 to `d2`. §1: "As the message delay
//! approaches a constant (d1 → d2), the per-session time becomes c1 … As
//! the message delay fluctuates within a bigger interval (d1 → 0), the
//! per-session time becomes d2".
//!
//! ```text
//! cargo run -p session-bench --bin sporadic_sweep
//! cargo run -p session-bench --bin sporadic_sweep -- --json   # BENCH_sporadic_sweep.json
//! ```

use session_bench::format::{section, Row};
use session_bench::json_report::{json_flag, JsonReport};
use session_bench::sweeps::sporadic_interpolation;
use session_types::{Dur, SessionSpec};

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_sporadic_sweep.json");
    println!("# FIG-B — Sporadic delay-uncertainty interpolation\n");
    let d2 = 48i128;
    let d1_values = [0, 8, 16, 24, 32, 40, 48];
    let headers = [
        "d1",
        "u = d2-d1",
        "lower bound",
        "measured A(sp)",
        "max per-session",
        "upper bound",
    ];
    let mut report = JsonReport::new("FIG-B — Sporadic delay-uncertainty interpolation");
    for (s, n) in [(4u64, 3usize), (8, 4)] {
        let spec = SessionSpec::new(s, n, 2).expect("valid spec");
        match sporadic_interpolation(&spec, Dur::from_int(1), Dur::from_int(d2), &d1_values) {
            Ok(points) => {
                let rows: Vec<Row> = points
                    .iter()
                    .map(|p| {
                        Row::new([
                            p.d1.to_string(),
                            p.u.to_string(),
                            p.lower.to_string(),
                            p.measured.to_string(),
                            p.max_session_gap.to_string(),
                            p.upper.to_string(),
                        ])
                    })
                    .collect();
                let title = format!("s = {s}, n = {n}, c1 = 1, d2 = {d2}");
                report.section(&title, &headers, &rows);
                print!("{}", section(&title, &headers, &rows));
            }
            Err(err) => {
                eprintln!("sporadic sweep failed for s={s}, n={n}: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
