//! The simulator-conformance harness.
//!
//! A real-clock run is only evidence if it is *the same object* the paper
//! reasons about: an admissible timed computation achieving `s` sessions.
//! This module replays a [`RealRunOutcome`]'s reconstructed trace through
//! exactly the verification stack the simulator uses —
//! [`session_core::verify::check_admissible`] for the timing model,
//! [`session_core::verify::count_sessions`] for the session count,
//! [`session_core::verify::count_rounds`] and the trace's quiescence time
//! for the paper's cost measures — and reports the verdict.
//!
//! Because the runtime records *nominal* pacer and delay times (all drawn
//! inside the model's windows), a completed run is admissible by
//! construction; the harness proves it rather than assumes it, so any
//! runtime or merge bug surfaces as an inadmissibility here.

use session_analyzer::analyze_trace_jsonl;
use session_core::system::{port_of, port_processes};
use session_core::verify::{check_admissible, count_rounds, count_sessions};
use session_obs::export::{trace_jsonl, ExportMeta};
use session_types::{Dur, KnownBounds, ProcessId, SessionSpec, Time};

use crate::runtime::RealRunOutcome;

/// The harness's verdict on one real run.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// `true` if the reconstructed trace satisfies the timing model's
    /// admissibility conditions.
    pub admissible: bool,
    /// The first admissibility violation, if any.
    pub violation: Option<String>,
    /// Sessions the run achieved (§2.1: disjoint minimal session blocks).
    pub sessions: u64,
    /// Sessions the spec requires.
    pub required_sessions: u64,
    /// Rounds in the run.
    pub rounds: u64,
    /// Running time: when every port process had reached an idle state
    /// (`None` if the run did not quiesce).
    pub running_time: Option<Time>,
    /// Largest observed message delay.
    pub gamma: Dur,
    /// `true` if the run terminated, is admissible, and achieved at least
    /// `s` sessions: a verified solution of the `(s, n)`-session problem.
    pub solved: bool,
    /// `true` when the happens-before analyzer found no causality lint
    /// (`SA007`–`SA009`) on the exported trace. Advisory: a second,
    /// independent check of the run, not part of [`Self::solved`].
    pub causally_clean: bool,
    /// The causality findings, as `CODE name: message` lines (empty when
    /// [`Self::causally_clean`]).
    pub causality_findings: Vec<String>,
}

impl ConformanceReport {
    /// Renders the verdict as aligned `key = value` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("admissible    = {}\n", self.admissible));
        if let Some(v) = &self.violation {
            out.push_str(&format!("violation     = {v}\n"));
        }
        out.push_str(&format!(
            "sessions      = {} (required {})\n",
            self.sessions, self.required_sessions
        ));
        out.push_str(&format!("rounds        = {}\n", self.rounds));
        match self.running_time {
            Some(t) => out.push_str(&format!("running_time  = {t}\n")),
            None => out.push_str("running_time  = (did not quiesce)\n"),
        }
        out.push_str(&format!("gamma         = {}\n", self.gamma));
        out.push_str(&format!("solved        = {}\n", self.solved));
        if self.causally_clean {
            out.push_str("causality     = clean\n");
        } else {
            out.push_str(&format!(
                "causality     = {} finding(s)\n",
                self.causality_findings.len()
            ));
            for finding in &self.causality_findings {
                out.push_str(&format!("  {finding}\n"));
            }
        }
        out
    }
}

/// Verifies `outcome` against `spec` under `bounds`.
pub fn verify_conformance(
    outcome: &RealRunOutcome,
    spec: &SessionSpec,
    bounds: &KnownBounds,
) -> ConformanceReport {
    let trace = &outcome.trace;
    let (admissible, violation) = match check_admissible(trace, bounds) {
        Ok(()) => (true, None),
        Err(e) => (false, Some(e.to_string())),
    };
    let sessions = count_sessions(trace, spec.n(), port_of(spec));
    let rounds = count_rounds(trace, spec.n());
    let running_time = trace.all_idle_time(port_processes(spec));

    // Second, independent verdict: export the trace (with the claimed
    // bounds on the meta line) and run the happens-before analyzer over
    // it, exactly as `session-cli analyze trace=` would.
    let closes = session_core::analysis::analyze(trace, spec.n(), port_of(spec));
    let ports = (0..trace.num_processes())
        .map(|i| port_of(spec)(ProcessId::new(i)))
        .collect();
    let meta = ExportMeta::new("conformance")
        .with_ports(ports)
        .with_sessions(closes.session_close_times)
        .with_claim(*bounds);
    let causality_findings = match analyze_trace_jsonl(&trace_jsonl(trace, &meta), "real run", None)
    {
        Ok(analysis) => analysis
            .report
            .findings
            .iter()
            .map(|d| format!("{} {}: {}", d.code.code(), d.code.name(), d.message))
            .collect(),
        Err(e) => vec![format!("trace export did not parse: {e}")],
    };

    ConformanceReport {
        admissible,
        violation,
        sessions,
        required_sessions: spec.s(),
        rounds,
        running_time,
        gamma: trace.gamma(),
        solved: outcome.terminated && admissible && sessions >= spec.s(),
        causally_clean: causality_findings.is_empty(),
        causality_findings,
    }
}
