//! UDP-loopback transport: real datagrams through `127.0.0.1`.
//!
//! Each process binds its own socket on an ephemeral loopback port; the
//! transport hands every endpoint the full address table. Packets are
//! encoded in a fixed 80-byte big-endian frame carrying the exact rational
//! timestamps (numerator/denominator as `i128`), so nominal times survive
//! the wire bit-exactly — the conformance harness depends on that.
//!
//! UDP may drop or reorder datagrams. Reordering is harmless (delivery
//! order is decided by the nominal `deliver_at`, not arrival order); loss
//! on loopback is rare but possible under buffer pressure, so UDP runs are
//! smoke-tested rather than used for the deterministic conformance suite.

use std::net::{SocketAddr, UdpSocket};

use session_types::{Error, ProcessId, Ratio, Result, Time};

use crate::transport::{Endpoint, Packet, Transport};

/// Size of one encoded [`Packet`] on the wire.
pub const FRAME_LEN: usize = 80;

/// Encodes `packet` into the fixed wire frame.
pub fn encode(packet: &Packet) -> [u8; FRAME_LEN] {
    let mut buf = [0u8; FRAME_LEN];
    buf[0..8].copy_from_slice(&(packet.from.index() as u64).to_be_bytes());
    buf[8..16].copy_from_slice(&packet.value.to_be_bytes());
    encode_time(&mut buf[16..48], packet.sent_at);
    encode_time(&mut buf[48..80], packet.deliver_at);
    buf
}

fn encode_time(buf: &mut [u8], t: Time) {
    let r = t.as_ratio();
    buf[0..16].copy_from_slice(&r.numer().to_be_bytes());
    buf[16..32].copy_from_slice(&r.denom().to_be_bytes());
}

/// Decodes one wire frame back into a [`Packet`].
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if the frame is truncated or encodes a
/// zero denominator.
pub fn decode(buf: &[u8]) -> Result<Packet> {
    if buf.len() < FRAME_LEN {
        return Err(Error::invalid_params(format!(
            "short UDP frame: {} bytes, need {FRAME_LEN}",
            buf.len()
        )));
    }
    let from = u64::from_be_bytes(buf[0..8].try_into().expect("slice length")); // wslint: allow(ws004): length guarded by the FRAME_LEN check above
    let value = u64::from_be_bytes(buf[8..16].try_into().expect("slice length")); // wslint: allow(ws004): length guarded by the FRAME_LEN check above
    Ok(Packet {
        from: ProcessId::new(
            usize::try_from(from).map_err(|_| {
                Error::invalid_params(format!("process index {from} overflows usize"))
            })?,
        ),
        value,
        sent_at: decode_time(&buf[16..48])?,
        deliver_at: decode_time(&buf[48..80])?,
    })
}

fn decode_time(buf: &[u8]) -> Result<Time> {
    let numer = i128::from_be_bytes(buf[0..16].try_into().expect("slice length")); // wslint: allow(ws004): callers pass exactly 32 bytes
    let denom = i128::from_be_bytes(buf[16..32].try_into().expect("slice length")); // wslint: allow(ws004): callers pass exactly 32 bytes
    if denom == 0 {
        return Err(Error::invalid_params(
            "zero denominator in UDP timestamp".to_string(),
        ));
    }
    Ok(Time::from_ratio(Ratio::new(numer, denom)))
}

/// The UDP-loopback transport.
#[derive(Debug, Default)]
pub struct UdpTransport;

impl UdpTransport {
    /// Creates the transport.
    pub fn new() -> UdpTransport {
        UdpTransport
    }
}

#[derive(Debug)]
struct UdpEndpoint {
    socket: UdpSocket,
    addrs: Vec<SocketAddr>,
}

impl Endpoint for UdpEndpoint {
    fn send(&mut self, to: ProcessId, packet: &Packet) -> Result<()> {
        let addr = self
            .addrs
            .get(to.index())
            .ok_or_else(|| Error::invalid_params(format!("no UDP address for process {to}")))?;
        let frame = encode(packet);
        match self.socket.send_to(&frame, addr) {
            Ok(_) => Ok(()),
            // A full socket buffer shows up as WouldBlock on a nonblocking
            // socket: treat it as datagram loss, which UDP permits anyway.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(Error::invalid_params(format!("udp send failed: {e}"))),
        }
    }

    fn drain(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut buf = [0u8; FRAME_LEN];
        while let Ok((len, _)) = self.socket.recv_from(&mut buf) {
            if let Ok(packet) = decode(&buf[..len]) {
                out.push(packet);
            }
        }
        out
    }
}

impl Transport for UdpTransport {
    fn endpoints(&mut self, n: usize) -> Result<Vec<Box<dyn Endpoint>>> {
        let mut sockets = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let socket = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| {
                Error::invalid_params(format!("binding UDP socket for process {i}: {e}"))
            })?;
            socket.set_nonblocking(true).map_err(|e| {
                Error::invalid_params(format!("setting nonblocking on socket {i}: {e}"))
            })?;
            addrs.push(socket.local_addr().map_err(|e| {
                Error::invalid_params(format!("reading local addr of socket {i}: {e}"))
            })?);
            sockets.push(socket);
        }
        Ok(sockets
            .into_iter()
            .map(|socket| {
                Box::new(UdpEndpoint {
                    socket,
                    addrs: addrs.clone(),
                }) as Box<dyn Endpoint>
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Packet {
        Packet {
            from: ProcessId::new(3),
            value: 17,
            sent_at: Time::from_ratio(Ratio::new(7, 4)),
            deliver_at: Time::from_ratio(Ratio::new(11, 2)),
        }
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        let p = packet();
        let frame = encode(&p);
        assert_eq!(decode(&frame).unwrap(), p);
    }

    #[test]
    fn short_frames_are_rejected() {
        let frame = encode(&packet());
        assert!(decode(&frame[..FRAME_LEN - 1]).is_err());
    }

    #[test]
    fn zero_denominator_is_rejected() {
        let mut frame = encode(&packet());
        frame[32..48].copy_from_slice(&0i128.to_be_bytes());
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn udp_endpoints_route_on_loopback() {
        let mut transport = UdpTransport::new();
        let mut eps = transport.endpoints(2).unwrap();
        let p = packet();
        eps[0].send(ProcessId::new(1), &p).unwrap();
        // Nonblocking receive: poll briefly for the kernel to move the
        // datagram across loopback.
        let mut got = Vec::new();
        for _ in 0..100 {
            got = eps[1].drain();
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(got, vec![p]);
    }
}
