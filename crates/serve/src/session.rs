//! One multiplexed `(s, n)`-session instance.
//!
//! An instance holds the same pieces a `crates/net` run holds — `n`
//! algorithm state machines, per-process nominal clocks, in-flight
//! message copies — but owns no thread and no socket. The shard's time
//! wheel calls [`SessionInstance::fire`] when a process's nominal step
//! time maps to "now"; the step consumes every pending copy whose
//! nominal delivery time has arrived, runs the machine through the same
//! `step_process` the simulator uses, and broadcasts with delays drawn
//! from the model's `[d1, d2]` window. Per-session state is strictly
//! bounded: `n` machines, `n` clocks, the pending copies (≤ `n` per
//! in-flight broadcast), and — only for sampled instances — the full
//! `ProcessLog` vectors the conformance harness replays.
//!
//! Nominal bookkeeping is identical to `crates/net`: recorded step and
//! delivery times are drawn inside the model's windows, so a completed
//! instance is admissible by construction, and `verify_conformance`
//! (run on a 1-in-k sample) proves it end to end.

use std::time::Instant;

use rand::rngs::StdRng;
use session_core::{system::build_mp_processes, SessionMsg};
use session_mpm::{step_process, Envelope, MpProcess};
use session_net::{outcome_from_logs, verify_conformance, ProcessLog, SendRecord, StepRecord};
use session_pacing::{sample, GapRule, NominalClock};
use session_sim::seeded_rng;
use session_types::{Dur, KnownBounds, ProcessId, Result, SessionSpec, Time, TimingModel};

use crate::peer::PeerHandle;
use crate::wire::ConformanceVerdict;

/// The service's fixed timing constants, mirroring `RealConfig`'s
/// defaults: steps in `[1, 2]` nominal units, delays in `[0, 4]`.
pub const C1: i128 = 1;
/// Upper step bound (see [`C1`]).
pub const C2: i128 = 2;
/// Lower delay bound.
pub const D1: i128 = 0;
/// Upper delay bound.
pub const D2: i128 = 4;

/// The known bounds the service realizes for `model`.
///
/// # Errors
///
/// Never fails for the service's fixed constants; the `Result` is the
/// bounds constructors' signature.
pub fn bounds_for(model: TimingModel) -> Result<KnownBounds> {
    let c1 = Dur::from_int(C1);
    let c2 = Dur::from_int(C2);
    let d1 = Dur::from_int(D1);
    let d2 = Dur::from_int(D2);
    match model {
        TimingModel::Synchronous => KnownBounds::synchronous(c2, d2),
        TimingModel::Periodic => KnownBounds::periodic(d2),
        TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(c1, c2, d2),
        TimingModel::Sporadic => KnownBounds::sporadic(c1, d1, d2),
        TimingModel::Asynchronous => Ok(KnownBounds::asynchronous()),
    }
}

/// An undelivered message copy: nominal delivery time, sender, payload.
#[derive(Clone, Copy, Debug)]
struct PendingCopy {
    deliver_at: Time,
    from: ProcessId,
    value: u64,
}

#[derive(Debug)]
struct ProcState {
    machine: Box<dyn MpProcess<SessionMsg>>,
    clock: NominalClock,
    pending: Vec<PendingCopy>,
    idle: bool,
}

/// What a fired step asks the shard to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FireOutcome {
    /// Schedule the same process again at the given wall-clock offset
    /// (microseconds from the session's open).
    Reschedule(u64),
    /// The process idled; nothing to schedule for it.
    ProcIdle,
    /// All processes idled — the session is closed.
    Closed,
    /// The step-count watchdog fired; the shard should abort the
    /// instance.
    Watchdog,
    /// The owning peer is gone; the shard should abort the instance.
    Orphaned,
}

/// One live session instance, driven by the shard's time wheel.
#[derive(Debug)]
pub struct SessionInstance {
    /// Server-assigned id, echoed to the peer in `Closed`.
    pub id: u64,
    /// The peer that opened the instance.
    pub peer: PeerHandle,
    /// The client's request id (for the `Opened` echo).
    pub req: u64,
    spec: SessionSpec,
    bounds: KnownBounds,
    unit_us: f64,
    /// Wall-clock instant of open; nominal time 0 maps here.
    pub opened: Instant,
    rng: StdRng,
    delay_window: (Dur, Dur),
    procs: Vec<ProcState>,
    live_procs: usize,
    steps: u64,
    max_steps: u64,
    broadcasts: u64,
    deliveries: u64,
    logs: Option<Vec<ProcessLog>>,
}

impl SessionInstance {
    /// Builds an instance for `model`/`spec`, with `sampled` selecting
    /// full conformance logging.
    ///
    /// # Errors
    ///
    /// Propagates invalid specs from the algorithm builders.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        req: u64,
        peer: PeerHandle,
        model: TimingModel,
        spec: SessionSpec,
        unit_us: u32,
        seed: u64,
        max_steps: u64,
        sampled: bool,
        opened: Instant,
    ) -> Result<SessionInstance> {
        let bounds = bounds_for(model)?;
        let machines = build_mp_processes(&spec, &bounds)?;
        let n = spec.n();
        let mut rng = seeded_rng(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let window = (Dur::from_int(C1), Dur::from_int(C2));
        let procs: Vec<ProcState> = machines
            .into_iter()
            .map(|machine| ProcState {
                machine,
                clock: NominalClock::new(GapRule::for_model(
                    model, &bounds, window, None, &mut rng,
                )),
                pending: Vec::new(),
                idle: false,
            })
            .collect();
        let delay_window = (
            bounds.d1().unwrap_or(Dur::from_int(D1)),
            bounds.d2().unwrap_or(Dur::from_int(D2)),
        );
        Ok(SessionInstance {
            id,
            peer,
            req,
            spec,
            bounds,
            unit_us: f64::from(unit_us),
            opened,
            rng,
            delay_window,
            procs,
            live_procs: n,
            steps: 0,
            max_steps,
            broadcasts: 0,
            deliveries: 0,
            logs: sampled.then(|| (0..n).map(|_| ProcessLog::default()).collect()),
        })
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Total algorithm steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Broadcasts performed so far.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Message copies consumed so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// `true` if this instance records full conformance logs.
    pub fn sampled(&self) -> bool {
        self.logs.is_some()
    }

    /// Maps nominal time `t` to microseconds after the open.
    fn to_us(&self, t: Time) -> u64 {
        let us = t.to_f64() * self.unit_us;
        if us <= 0.0 {
            0
        } else {
            us.round() as u64
        }
    }

    /// The first step times of all processes, as `(proc, offset_us)`
    /// pairs for the shard to schedule.
    pub fn initial_schedule(&mut self) -> Vec<(u32, u64)> {
        (0..self.procs.len())
            .map(|i| {
                let t = self.procs[i].clock.next(&mut self.rng);
                (u32::try_from(i).expect("n fits in u32"), self.to_us(t)) // wslint: allow(ws004): spec caps n at max_spec_n, far below u32::MAX
            })
            .collect()
    }

    /// Fires process `index`'s due step. `t` is the process's current
    /// nominal time (already advanced when the step was scheduled).
    pub fn fire(&mut self, index: usize) -> FireOutcome {
        if self.peer.is_dead() {
            return FireOutcome::Orphaned;
        }
        let t = self.procs[index].clock.now();
        // Consume every copy whose nominal delivery time has arrived, in
        // (deliver_at, sender) order — the simulator's FIFO tie-break.
        let mut inbox_copies: Vec<PendingCopy> = Vec::new();
        self.procs[index].pending.retain(|c| {
            if c.deliver_at <= t {
                inbox_copies.push(*c);
                false
            } else {
                true
            }
        });
        inbox_copies.sort_by_key(|c| (c.deliver_at, c.from.index()));
        let inbox: Vec<Envelope<SessionMsg>> = inbox_copies
            .iter()
            .map(|c| Envelope::new(c.from, SessionMsg::new(c.value)))
            .collect();
        let result = step_process(self.procs[index].machine.as_mut(), inbox);
        self.steps += 1;
        self.deliveries += result.received as u64;
        if let Some(logs) = &mut self.logs {
            logs[index].steps.push(StepRecord {
                time: t,
                received: result.received,
                broadcast: result.broadcast.is_some(),
                idle_after: result.idle_after,
            });
        }
        if let Some(payload) = result.broadcast {
            self.broadcasts += 1;
            let me = ProcessId::new(index);
            for q in 0..self.procs.len() {
                let delay = sample(&mut self.rng, self.delay_window.0, self.delay_window.1);
                let deliver_at = t + delay;
                self.procs[q].pending.push(PendingCopy {
                    deliver_at,
                    from: me,
                    value: payload.value,
                });
                if let Some(logs) = &mut self.logs {
                    logs[index].sends.push(SendRecord {
                        from: me,
                        to: ProcessId::new(q),
                        sent_at: t,
                        deliver_at,
                    });
                }
            }
        }
        if result.idle_after {
            if !self.procs[index].idle {
                self.procs[index].idle = true;
                self.live_procs -= 1;
            }
            if self.live_procs == 0 {
                FireOutcome::Closed
            } else {
                FireOutcome::ProcIdle
            }
        } else if self.steps >= self.max_steps {
            FireOutcome::Watchdog
        } else {
            let next = self.procs[index].clock.next(&mut self.rng);
            FireOutcome::Reschedule(self.to_us(next))
        }
    }

    /// The largest nominal time any process reached, in microseconds
    /// after the open — the instance's nominal close time.
    pub fn nominal_close_us(&self) -> u64 {
        let close = self
            .procs
            .iter()
            .map(|p| p.clock.now())
            .max()
            .unwrap_or(Time::ZERO);
        self.to_us(close)
    }

    /// Replays a sampled instance through the conformance harness.
    /// Returns `NotSampled` for unsampled instances; `Pass`/`Fail`
    /// carries `verify_conformance`'s verdict on the recorded nominal
    /// trace.
    pub fn verify(&self, wall_clock: std::time::Duration) -> (ConformanceVerdict, u32) {
        let Some(logs) = &self.logs else {
            let s = u32::try_from(self.spec.s()).unwrap_or(u32::MAX);
            return (ConformanceVerdict::NotSampled, s);
        };
        let outcome = outcome_from_logs(self.procs.len(), logs, true, wall_clock);
        let report = verify_conformance(&outcome, &self.spec, &self.bounds);
        let sessions = u32::try_from(report.sessions).unwrap_or(u32::MAX);
        if report.solved {
            (ConformanceVerdict::Pass, sessions)
        } else {
            (ConformanceVerdict::Fail, sessions)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;
    use std::time::Duration;

    fn peer() -> PeerHandle {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        PeerHandle::new(addr, 64, None).0
    }

    /// Drives one instance to completion the way a shard would, using a
    /// logical event queue instead of a wall clock.
    fn drive(mut session: SessionInstance) -> (SessionInstance, FireOutcome, u64) {
        let mut queue: Vec<(u64, u32)> = session
            .initial_schedule()
            .into_iter()
            .map(|(p, at)| (at, p))
            .collect();
        let mut fires = 0u64;
        loop {
            queue.sort_by_key(|&(at, p)| (at, p));
            let (_, index) = queue.remove(0);
            fires += 1;
            match session.fire(index as usize) {
                FireOutcome::Reschedule(at) => queue.push((at, index)),
                FireOutcome::ProcIdle => {
                    assert!(!queue.is_empty(), "idle proc left an empty queue");
                }
                outcome => return (session, outcome, fires),
            }
            assert!(fires < 10_000, "instance failed to quiesce");
        }
    }

    fn instance(model: TimingModel, sampled: bool, seed: u64) -> SessionInstance {
        SessionInstance::new(
            1,
            1,
            peer(),
            model,
            SessionSpec::new(2, 2, 2).unwrap(),
            1000,
            seed,
            4096,
            sampled,
            Instant::now(),
        )
        .unwrap()
    }

    #[test]
    fn periodic_instance_closes_and_passes_conformance() {
        let (session, outcome, _) = drive(instance(TimingModel::Periodic, true, 7));
        assert_eq!(outcome, FireOutcome::Closed);
        assert!(session.broadcasts() >= 2, "each proc announces once");
        let (verdict, sessions) = session.verify(Duration::from_millis(1));
        assert_eq!(verdict, ConformanceVerdict::Pass);
        assert!(sessions >= 2);
        assert!(session.nominal_close_us() > 0);
    }

    #[test]
    fn every_model_closes_and_sampled_runs_pass() {
        for (i, model) in TimingModel::ALL.into_iter().enumerate() {
            let (session, outcome, _) = drive(instance(model, true, 100 + i as u64));
            assert_eq!(outcome, FireOutcome::Closed, "{model}");
            let (verdict, _) = session.verify(Duration::from_millis(1));
            assert_eq!(verdict, ConformanceVerdict::Pass, "{model}");
        }
    }

    #[test]
    fn unsampled_instances_keep_no_logs() {
        let (session, outcome, _) = drive(instance(TimingModel::Periodic, false, 9));
        assert_eq!(outcome, FireOutcome::Closed);
        assert!(!session.sampled());
        let (verdict, sessions) = session.verify(Duration::from_millis(1));
        assert_eq!(verdict, ConformanceVerdict::NotSampled);
        assert_eq!(sessions, 2);
    }

    #[test]
    fn dead_peer_orphans_the_instance() {
        let mut session = instance(TimingModel::Periodic, false, 11);
        let _ = session.initial_schedule();
        session.peer.kill(crate::wire::RejectCode::Protocol);
        assert_eq!(session.fire(0), FireOutcome::Orphaned);
    }

    #[test]
    fn watchdog_fires_instead_of_spinning_forever() {
        let mut session = SessionInstance::new(
            1,
            1,
            peer(),
            TimingModel::Periodic,
            SessionSpec::new(2, 2, 2).unwrap(),
            1000,
            3,
            4, // absurdly low step budget
            false,
            Instant::now(),
        )
        .unwrap();
        let mut queue: Vec<(u64, u32)> = session
            .initial_schedule()
            .into_iter()
            .map(|(p, at)| (at, p))
            .collect();
        loop {
            queue.sort_by_key(|&(at, p)| (at, p));
            let (_, index) = queue.remove(0);
            match session.fire(index as usize) {
                FireOutcome::Reschedule(at) => queue.push((at, index)),
                FireOutcome::ProcIdle => {}
                FireOutcome::Watchdog => break,
                other => panic!("expected watchdog, got {other:?}"),
            }
        }
        assert_eq!(session.steps(), 4);
    }
}
