//! Regenerates the paper's Table 1: every (model × substrate × L/U) cell,
//! paper bound vs measured, with the lower bounds demonstrated by the
//! executable adversaries.
//!
//! ```text
//! cargo run -p session-bench --bin table1
//! cargo run -p session-bench --bin table1 -- --json            # BENCH_table1.json
//! cargo run -p session-bench --bin table1 -- --json out.json
//! ```

use session_bench::json_report::{json_flag, table1_json};
use session_bench::measure::{full_table1, table1_markdown_of};

fn main() {
    let json_path = json_flag(std::env::args().skip(1), "BENCH_table1.json");
    println!("# Table 1 — Bounds for the Session Problem (reproduction)\n");
    println!(
        "Upper bounds (U): the paper's algorithm under a worst-case-oriented\n\
         admissible schedule; measured simulated running time vs the closed-form\n\
         bound. Lower bounds (L): the executable adversary defeats a witness\n\
         algorithm that beats the bound, while the paper's algorithm survives\n\
         the same adversary.\n"
    );
    let rows = match full_table1() {
        Ok(rows) => rows,
        Err(err) => {
            eprintln!("table generation failed: {err}");
            std::process::exit(1);
        }
    };
    println!("{}", table1_markdown_of(&rows));
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, table1_json(&rows)) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}
