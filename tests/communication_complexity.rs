//! The paper's communication hierarchy, measured in messages.
//!
//! §1: "no communication is needed at all in the synchronous case, but it
//! is needed for every session in the asynchronous case", and the periodic
//! model "requires one communication", falling "in between the synchronous
//! and asynchronous models, which require no and s−1 communications
//! respectively." Broadcast counts in the message-passing substrate make
//! this hierarchy directly observable.

use session_problem::core::report::{run_mp, MpConfig};
use session_problem::sim::{ConstantDelay, FixedPeriods, RunLimits, StepKind};
use session_problem::types::{Dur, KnownBounds, SessionSpec, TimingModel};

fn d(x: i128) -> Dur {
    Dur::from_int(x)
}

/// Runs a model and returns the number of broadcasting steps.
fn broadcasts(model: TimingModel, s: u64, n: usize, c2: Dur, d2: Dur) -> usize {
    let spec = SessionSpec::new(s, n, 2).unwrap();
    let bounds = match model {
        TimingModel::Synchronous => KnownBounds::synchronous(c2, d2).unwrap(),
        TimingModel::Periodic => KnownBounds::periodic(d2).unwrap(),
        TimingModel::SemiSynchronous => KnownBounds::semi_synchronous(d(1), c2, d2).unwrap(),
        TimingModel::Sporadic => KnownBounds::sporadic(d(1), Dur::ZERO, d2).unwrap(),
        TimingModel::Asynchronous => KnownBounds::asynchronous(),
    };
    let mut sched = FixedPeriods::uniform(n, c2).unwrap();
    let mut delays = ConstantDelay::new(d2).unwrap();
    let report = run_mp(
        MpConfig {
            model,
            spec,
            bounds,
        },
        &mut sched,
        &mut delays,
        RunLimits::default(),
    )
    .unwrap();
    assert!(report.solves(&spec), "{model} failed");
    report
        .trace
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                StepKind::MpStep {
                    broadcast: true,
                    ..
                }
            )
        })
        .count()
}

#[test]
fn synchronous_needs_zero_communications() {
    assert_eq!(broadcasts(TimingModel::Synchronous, 6, 5, d(2), d(3)), 0);
}

#[test]
fn periodic_needs_exactly_one_communication_per_process() {
    // A(p) broadcasts once per process — at the (s-1)-th step — regardless
    // of s.
    for s in [2u64, 4, 9] {
        let n = 5;
        assert_eq!(
            broadcasts(TimingModel::Periodic, s, n, d(2), d(3)),
            n,
            "A(p) must broadcast exactly once per process at s = {s}"
        );
    }
}

#[test]
fn semisync_step_counting_arm_is_silent() {
    // With c2/c1 small the chooser picks step counting: zero messages.
    assert_eq!(
        broadcasts(TimingModel::SemiSynchronous, 5, 5, d(2), d(50)),
        0
    );
}

#[test]
fn asynchronous_needs_one_communication_per_session_per_process() {
    // The wave protocol broadcasts exactly once per committed wave: n·s
    // broadcasting steps in total.
    for (s, n) in [(2u64, 3usize), (5, 4)] {
        assert_eq!(
            broadcasts(TimingModel::Asynchronous, s, n, d(2), d(3)),
            n * s as usize,
            "one broadcast per wave per process"
        );
    }
}

#[test]
fn the_hierarchy_is_strict() {
    // 0 (synchronous) < n (periodic) < n·s (asynchronous), and A(sp)
    // broadcasts every step (the price of having no step-time upper bound).
    let (s, n) = (4u64, 4usize);
    let sync = broadcasts(TimingModel::Synchronous, s, n, d(2), d(3));
    let periodic = broadcasts(TimingModel::Periodic, s, n, d(2), d(3));
    let asynchronous = broadcasts(TimingModel::Asynchronous, s, n, d(2), d(3));
    let sporadic = broadcasts(TimingModel::Sporadic, s, n, d(2), d(3));
    assert!(sync < periodic, "{sync} < {periodic}");
    assert!(periodic < asynchronous, "{periodic} < {asynchronous}");
    assert!(
        asynchronous <= sporadic,
        "A(sp) broadcasts at every step: {asynchronous} <= {sporadic}"
    );
}
